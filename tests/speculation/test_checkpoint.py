"""Checkpoint/recovery manager and the DDT cross-check harness."""

import pytest

from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind
from repro.speculation.checkpoint import (
    CrossCheckedDDT,
    DDTCrossCheckError,
    RecoveryManager,
)
from tests.conftest import build_memory_loop

FIGURE1_PROGRAM = [
    (1, (2,)),
    (4, (1, 3)),
    (5, (4, 1)),
    (6, (5, 4)),
    (7, (1,)),
    (8, (4, 7)),
]


class TestCrossCheckedDDT:
    def build(self):
        ddt = CrossCheckedDDT(num_regs=10, num_entries=9)
        tokens = [ddt.allocate(dest, srcs) for dest, srcs in FIGURE1_PROGRAM]
        return ddt, tokens

    def test_mirrors_allocate_and_queries(self):
        ddt, tokens = self.build()
        assert ddt.chain_tokens(8) == {tokens[0], tokens[1], tokens[4],
                                       tokens[5]}
        assert ddt.in_flight == 6
        assert ddt.next_token == tokens[-1] + 1
        assert ddt.oldest_chain_token(8) == tokens[0]
        ddt.verify_chains()

    def test_mirrors_commit_and_rollback(self):
        ddt, tokens = self.build()
        assert ddt.commit_oldest() == tokens[0]
        squashed = ddt.rollback_to(tokens[2])
        assert squashed == [tokens[5], tokens[4], tokens[3]]
        assert ddt.rollback_checks == 1
        # Allocation continues cleanly after a checked rollback.
        token = ddt.allocate(6, (5,))
        assert token in ddt.chain_tokens(6)
        ddt.verify_chains()

    def test_divergence_is_detected(self):
        ddt, tokens = self.build()
        # Sabotage the reference: silently drop a valid bit.
        ddt.reference.valid &= ~1
        with pytest.raises(DDTCrossCheckError):
            ddt.verify_chains()

    def test_rollback_squash_mismatch_is_detected(self):
        ddt, tokens = self.build()
        ddt.reference.rollback_to(tokens[3])  # reference secretly ahead
        with pytest.raises(DDTCrossCheckError):
            ddt.rollback_to(tokens[2])


def build_engine(speculation="wrongpath"):
    config = machine_for_depth(20, speculation=speculation)
    predictor = build_predictor(LevelTwoKind.HYBRID, config)
    return PipelineEngine(build_memory_loop(8), config, predictor)


class TestRecoveryManager:
    def test_capture_restore_round_trip(self):
        engine = build_engine()
        manager = RecoveryManager()
        branch_token = engine.ddt.next_token - 1

        checkpoint = manager.capture(engine, branch_token)
        before_map = engine.rename.snapshot()
        before_free = engine.rename.free_count
        before_shadow = engine.shadow_map.snapshot()
        before_history = engine.predictor.history_state()
        before_in_flight = engine.ddt.in_flight

        # Fake a wrong-path episode: rename, shadow-record and insert
        # three speculative instructions, corrupting predictor history.
        wp_tokens = []
        for logical in (8, 9, 10):
            preg, _displaced = engine.rename.rename_dest(logical)
            checkpoint.wrong_path_pregs.append(preg)
            engine.shadow_map.record(preg, logical)
            token = engine.ddt.allocate(preg, (preg,))
            engine.chains.insert(token, preg, (preg,), is_load=False)
            wp_tokens.append(token)
        engine.predictor.speculate(0x40, True)
        assert engine.ddt.in_flight == before_in_flight + 3
        assert engine.predictor.history_state() != before_history

        squashed = manager.restore(engine, checkpoint)
        assert squashed == sorted(wp_tokens, reverse=True)
        assert engine.ddt.in_flight == before_in_flight
        assert engine.rename.snapshot() == before_map
        assert engine.rename.free_count == before_free
        assert engine.shadow_map.snapshot() == before_shadow
        assert engine.predictor.history_state() == before_history
        for token in wp_tokens:
            with pytest.raises(KeyError):
                engine.chains.info(token)
        assert manager.rollbacks == 1
        assert manager.squashed_tokens == 3

    def test_restore_with_no_episode_is_a_clean_noop(self):
        engine = build_engine()
        manager = RecoveryManager()
        checkpoint = manager.capture(engine, engine.ddt.next_token - 1)
        before_map = engine.rename.snapshot()
        assert manager.restore(engine, checkpoint) == []
        assert engine.rename.snapshot() == before_map

    def test_redirect_engine_has_no_recovery_manager(self):
        assert build_engine("redirect").recovery is None
        assert build_engine("wrongpath").recovery is not None
