"""Wrong-path synthesis: COW views and the speculative fetch source."""

import pytest

from repro.isa import AsmBuilder, nez
from repro.isa.regs import s0, t0, t1, t2, zero
from repro.pipeline.functional import ExecutionError, FunctionalCore
from repro.speculation.wrongpath import CowMemory, CowRegisters, WrongPathCore


class TestCowRegisters:
    def test_reads_through_to_base(self):
        base = list(range(32))
        view = CowRegisters(base)
        assert view[7] == 7

    def test_writes_stay_in_overlay(self):
        base = list(range(32))
        view = CowRegisters(base)
        view[7] = 99
        assert view[7] == 99
        assert base[7] == 7
        assert view.dirty_count == 1


class TestCowMemory:
    def test_word_read_through_and_overlay(self):
        base = bytearray(64)
        base[8:12] = (0x11223344).to_bytes(4, "little")
        view = CowMemory(base)
        assert view.load_word(8) == 0x11223344
        view.store_word(8, 0xDEADBEEF)
        assert view.load_word(8) == 0xDEADBEEF
        assert base[8:12] == (0x11223344).to_bytes(4, "little")

    def test_byte_overlay_mixes_into_word_read(self):
        base = bytearray(64)
        base[4:8] = (0xAABBCCDD).to_bytes(4, "little")
        view = CowMemory(base)
        view.store_byte(5, 0x00)
        assert view.load_word(4) == 0xAABB00DD
        assert view.load_byte(5, signed=False) == 0
        assert view.dirty_bytes == 1

    def test_signed_byte_semantics_match_core(self):
        base = bytearray(8)
        base[3] = 0x80
        view = CowMemory(base)
        assert view.load_byte(3, signed=True) == -128
        assert view.load_byte(3, signed=False) == 0x80

    def test_bounds_and_alignment_fault(self):
        view = CowMemory(bytearray(16))
        with pytest.raises(ExecutionError):
            view.load_word(16)
        with pytest.raises(ExecutionError):
            view.load_word(2)
        with pytest.raises(ExecutionError):
            view.store_word(-4, 1)


def wrong_path_core(builder, start_pc, predict=lambda pc: False):
    program = builder.build()
    core = FunctionalCore(program)
    return WrongPathCore(program, core.registers, core.memory,
                         start_pc, predict), core


class TestWrongPathCore:
    def test_streams_instructions_from_wrong_target(self):
        b = AsmBuilder("wp")
        b.label("main")
        b.addi(t0, zero, 1)
        b.addi(t1, zero, 2)
        b.addi(t2, zero, 3)
        b.halt()
        wp, _core = wrong_path_core(b, start_pc=1)
        first = wp.step()
        second = wp.step()
        assert [first.pc, second.pc] == [1, 2]
        assert wp.step() is None  # HALT stops speculative fetch
        assert wp.fetched == 2

    def test_architectural_state_never_mutates(self):
        b = AsmBuilder("wp-store")
        b.data_space("buf", 4)
        b.label("main")
        b.la(s0, "buf")
        b.addi(t0, zero, 77)
        b.sw(t0, s0, 0)
        b.lw(t1, s0, 0)
        b.halt()
        program = b.build()
        core = FunctionalCore(program)
        core.step()  # execute `la` so s0 holds the buffer address
        snapshot_regs = list(core.registers)
        snapshot_mem = bytes(core.memory)
        wp = WrongPathCore(program, core.registers, core.memory,
                           core.pc, lambda pc: False)
        stream = []
        while True:
            dyn = wp.step()
            if dyn is None:
                break
            stream.append(dyn)
        # The wrong-path store forwarded to the wrong-path load...
        load = next(dyn for dyn in stream if dyn.is_load)
        assert load.result == 77
        # ...but architectural state is untouched.
        assert core.registers == snapshot_regs
        assert bytes(core.memory) == snapshot_mem

    def test_branches_follow_the_prediction_not_the_data(self):
        b = AsmBuilder("wp-branch")
        b.label("main")
        b.addi(t0, zero, 1)       # t0 != 0: the branch is data-taken
        with b.while_(nez(t0)):
            b.addi(t0, t0, -1)
        b.addi(t1, zero, 9)
        b.halt()
        program = b.build()
        core = FunctionalCore(program)
        core.run_to_completion()

        branch_pc = next(pc for pc, inst in enumerate(program.instructions)
                         if inst.is_cond_branch)
        asked = []

        def predict(pc):
            asked.append(pc)
            return False  # predict not-taken regardless of the data

        wp = WrongPathCore(program, [1] * 32, core.memory, branch_pc, predict)
        dyn = wp.step()
        assert asked == [branch_pc]
        assert dyn.next_pc == branch_pc + 1  # fell through as predicted
        assert wp.pc == branch_pc + 1

    def test_fault_ends_the_stream(self):
        b = AsmBuilder("wp-fault")
        b.label("main")
        b.lui(t0, 0x7FFF)         # t0 = huge address
        b.lw(t1, t0, 0)           # faults: out of memory range
        b.addi(t2, zero, 1)
        b.halt()
        wp, _ = wrong_path_core(b, start_pc=0)
        assert wp.step() is not None   # lui
        assert wp.step() is None       # faulting load ends the wrong path
        assert wp.faulted
        assert wp.step() is None       # and it stays ended

    def test_pc_leaving_program_ends_the_stream(self):
        b = AsmBuilder("wp-end")
        b.label("main")
        b.addi(t0, zero, 1)
        b.halt()
        wp, _ = wrong_path_core(b, start_pc=500)
        assert wp.step() is None
