"""Tests for the Section 3 applications of dependence tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.chain_length import (
    ChainLengthObserver,
    ChainLengthStats,
    TrailingDependentsCounter,
)
from repro.applications.criticality import CriticalityObserver
from repro.applications.decoupled import BexExtractor
from repro.applications.scheduling import (
    DagNode,
    compare_policies,
    random_dag,
    simulate_issue,
    trailing_dependents,
)
from repro.applications.smt_fetch import ThreadModel, simulate_smt
from repro.applications.smt_fetch import compare_policies as smt_compare
from repro.applications.value_pred import (
    LastValuePredictor,
    run_selective_value_prediction,
)
from repro.core.ddt import FastDDT
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind
from tests.conftest import build_memory_loop


class TestTrailingDependentsCounter:
    def test_counts_direct_and_transitive_dependents(self):
        ddt = FastDDT(8, 8)
        counter = TrailingDependentsCounter(ddt)
        t_a = ddt.allocate(1, ())
        counter.on_allocate(t_a, 1, ())
        t_b = ddt.allocate(2, (1,))
        counter.on_allocate(t_b, 2, (1,))
        t_c = ddt.allocate(3, (2,))
        counter.on_allocate(t_c, 3, (2,))
        assert counter.dependents(t_a) == 2   # b and c (transitively)
        assert counter.dependents(t_b) == 1
        assert counter.dependents(t_c) == 0

    def test_retire_removes(self):
        ddt = FastDDT(8, 8)
        counter = TrailingDependentsCounter(ddt)
        token = ddt.allocate(1, ())
        counter.on_allocate(token, 1, ())
        assert counter.on_retire(token) == 0
        assert counter.dependents(token) == 0

    def test_longest_chains_ranking(self):
        ddt = FastDDT(8, 8)
        counter = TrailingDependentsCounter(ddt)
        tokens = []
        # Serial chain through register 1: first instruction has the most
        # trailing dependents.
        for _ in range(4):
            token = ddt.allocate(1, (1,))
            counter.on_allocate(token, 1, (1,))
            tokens.append(token)
        ranked = counter.longest_chains(top=2)
        assert ranked[0][0] == tokens[0]
        assert ranked[0][1] == 3


class TestChainLengthStats:
    def test_mean_and_percentile(self):
        stats = ChainLengthStats()
        for length in (0, 2, 2, 4):
            stats.record(length, is_load=False, is_branch=False)
        assert stats.mean() == 2.0
        assert stats.percentile(0.5) == 2
        assert stats.percentile(1.0) == 4

    def test_class_histograms(self):
        stats = ChainLengthStats()
        stats.record(3, is_load=True, is_branch=False)
        stats.record(5, is_load=False, is_branch=True)
        assert stats.mean_for(stats.load_histogram) == 3
        assert stats.mean_for(stats.branch_histogram) == 5

    def test_observer_collects_from_engine(self, tiny_machine):
        observer = ChainLengthObserver()
        predictor = build_predictor(LevelTwoKind.HYBRID, tiny_machine)
        PipelineEngine(build_memory_loop(32), tiny_machine, predictor,
                       observers=[observer]).run()
        assert observer.stats.samples > 100
        assert observer.stats.mean() >= 0


class TestScheduling:
    def test_trailing_dependents_simple_chain(self):
        nodes = [DagNode(0, ()), DagNode(1, (0,)), DagNode(2, (1,))]
        assert trailing_dependents(nodes) == [2, 1, 0]

    def test_diamond(self):
        nodes = [DagNode(0, ()), DagNode(1, (0,)), DagNode(2, (0,)),
                 DagNode(3, (1, 2))]
        assert trailing_dependents(nodes) == [3, 1, 1, 0]

    def test_simulate_issue_serial_chain(self):
        nodes = [DagNode(0, (), 2), DagNode(1, (0,), 2), DagNode(2, (1,), 2)]
        result = simulate_issue(nodes, width=4)
        assert result.makespan == 6  # fully serial

    def test_all_parallel_bounded_by_width(self):
        nodes = [DagNode(i, (), 1) for i in range(8)]
        result = simulate_issue(nodes, width=2)
        # 8 ops at 2 per cycle: last pair issues at cycle 3, finishes at 4.
        assert result.makespan == 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate_issue([DagNode(0, ())], policy="magic")

    def test_chain_priority_not_worse_on_skewed_dags(self):
        wins = ties = losses = 0
        for seed in range(8):
            makespans = compare_policies(size=150, width=2, seed=seed)
            if makespans["chain-priority"] < makespans["oldest-first"]:
                wins += 1
            elif makespans["chain-priority"] == makespans["oldest-first"]:
                ties += 1
            else:
                losses += 1
        assert wins + ties >= losses

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_all_policies_complete_all_nodes(self, seed):
        nodes = random_dag(60, seed=seed)
        for policy in ("oldest-first", "chain-priority", "random"):
            result = simulate_issue(nodes, policy=policy, seed=seed)
            assert sorted(result.issue_order) == list(range(60))


class TestSMTFetch:
    def test_policies_run(self):
        throughputs = smt_compare(cycles=500)
        assert set(throughputs) == {"round-robin", "icount", "chain"}
        assert all(v > 0 for v in throughputs.values())

    def test_serialness_validated(self):
        with pytest.raises(ValueError):
            ThreadModel("bad", serialness=1.5)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate_smt([ThreadModel("a", 0.5)], policy="magic")

    def test_chain_policy_prefers_parallel_threads(self):
        threads = [ThreadModel("serial", serialness=0.95),
                   ThreadModel("parallel", serialness=0.05)]
        result = simulate_smt(threads, cycles=1500, policy="chain", seed=3)
        assert (result.per_thread_completed["parallel"]
                > result.per_thread_completed["serial"])


class TestValuePrediction:
    def test_last_value_predictor(self):
        predictor = LastValuePredictor()
        assert predictor.predict_and_train(1, 5) is False
        assert predictor.predict_and_train(1, 5) is True
        assert predictor.predict_and_train(1, 6) is False
        assert predictor.accuracy == pytest.approx(1 / 3)

    def test_selection_report(self):
        report = run_selective_value_prediction(
            build_memory_loop(32), threshold=2, max_instructions=20_000)
        assert 0 < report.selected_sites <= report.total_sites
        assert 0 < report.coverage <= 1.0
        assert 0 <= report.selected_accuracy <= 1.0

    def test_higher_threshold_selects_fewer(self):
        program = build_memory_loop(32)
        low = run_selective_value_prediction(program, threshold=1)
        high = run_selective_value_prediction(program, threshold=6)
        assert high.selected_sites <= low.selected_sites


class TestCriticalityAndBex:
    def test_criticality_observer(self, tiny_machine):
        observer = CriticalityObserver(slack_threshold=2, chain_threshold=4)
        predictor = build_predictor(LevelTwoKind.HYBRID, tiny_machine)
        PipelineEngine(build_memory_loop(64), tiny_machine, predictor,
                       observers=[observer]).run()
        stats = observer.stats
        assert stats.records > 100
        assert 0 <= stats.precision <= 1
        assert 0 <= stats.recall <= 1
        assert "critical" in observer.report()

    def test_bex_extractor(self, tiny_machine):
        extractor = BexExtractor(max_chain=8)
        predictor = build_predictor(LevelTwoKind.HYBRID, tiny_machine)
        PipelineEngine(build_memory_loop(64), tiny_machine, predictor,
                       observers=[extractor]).run()
        report = extractor.report
        assert report.branches > 0
        assert 0 <= report.decoupleable_fraction <= 1
        assert report.mean_chain_length() >= 0
