"""Workload correctness tests: halting, determinism, branch character."""

import pytest

from repro.isa.instructions import COND_BRANCH_OPS
from repro.pipeline.functional import FunctionalCore
from repro.workloads import BENCHMARKS, get_program, get_spec, table3_rows
from repro.workloads.common import scaled, skewed_bytes, rng_for

SMALL = 0.1


def run_stream(name, scale=SMALL, seed=1, limit=500_000):
    program = get_spec(name).instantiate(scale=scale, seed=seed)
    core = FunctionalCore(program)
    branches = total = taken = 0
    checksum = 0
    for dyn in core.run(limit):
        total += 1
        if dyn.is_cond_branch:
            branches += 1
            taken += bool(dyn.taken)
        if dyn.result is not None:
            checksum = (checksum * 31 + dyn.result) & 0xFFFFFFFF
    return core, total, branches, taken, checksum


class TestAllWorkloads:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_halts(self, name):
        core, total, *_ = run_stream(name)
        assert core.halted, f"{name} did not halt"
        assert total > 1000

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_deterministic(self, name):
        _, total1, _, _, checksum1 = run_stream(name)
        _, total2, _, _, checksum2 = run_stream(name)
        assert total1 == total2
        assert checksum1 == checksum2

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_seed_changes_behaviour(self, name):
        _, _, _, _, checksum1 = run_stream(name, seed=1)
        _, _, _, _, checksum2 = run_stream(name, seed=2)
        assert checksum1 != checksum2

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_branch_fraction_realistic(self, name):
        """SPECint-like kernels: 5%..35% conditional branches."""
        _, total, branches, _, _ = run_stream(name)
        fraction = branches / total
        assert 0.05 < fraction < 0.35, f"{name}: {fraction:.3f}"

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_branches_not_monotone(self, name):
        """Both directions must occur (no degenerate branch behaviour)."""
        _, _, branches, taken, _ = run_stream(name)
        assert 0 < taken < branches

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_scale_controls_length(self, name):
        _, small, *_ = run_stream(name, scale=SMALL)
        _, large, *_ = run_stream(name, scale=1.0, limit=1_000_000)
        assert large > small * 1.5


class TestRegistry:
    def test_all_eight_benchmarks(self):
        assert set(BENCHMARKS) == {
            "gcc", "compress", "go", "ijpeg", "li", "m88ksim", "perl",
            "vortex",
        }

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_spec("doom")

    def test_program_caching(self):
        first = get_program("li", scale=SMALL)
        second = get_program("li", scale=SMALL)
        assert first is second

    def test_table3_rows(self):
        rows = table3_rows()
        assert len(rows) == 8
        names = [row[0] for row in rows]
        assert "m88ksim" in names
        window = dict((row[0], row[2]) for row in rows)
        assert window["compress"] == "3000M-3100M"  # paper Table 3


class TestCommonHelpers:
    def test_scaled_minimum(self):
        assert scaled(10, 0.0) == 1
        assert scaled(10, 2.0) == 20

    def test_skewed_bytes_properties(self):
        data = skewed_bytes(rng_for(1, "test"), 500)
        assert len(data) == 500
        assert all(1 <= byte <= 26 for byte in data)
        # Phrase repetition: distinct values well below stream length.
        assert len(set(data)) < 60

    def test_rng_streams_independent(self):
        a = rng_for(1, "a").random()
        b = rng_for(1, "b").random()
        assert a != b


class TestM88ksimStructure:
    def test_walk_branch_labels_exist(self):
        program = get_program("m88ksim", scale=SMALL)
        assert "walk" in program.labels
        assert "lookupdisasm" in program.labels

    def test_value_determined_exits(self):
        """Same key must always walk the same number of iterations."""
        program = get_spec("m88ksim").instantiate(scale=SMALL, seed=1)
        core = FunctionalCore(program)
        walk_pc = program.labels["walk"]
        key_iters: dict[int, set[int]] = {}
        current_key = None
        iters = 0
        for dyn in core.run(300_000):
            if dyn.pc == program.labels["lookupdisasm"]:
                current_key = dyn.sval1  # andi reads the key in a0
                iters = 0
            if dyn.pc == walk_pc:
                iters += 1
            if dyn.inst.op.name == "JR" and current_key is not None:
                key_iters.setdefault(current_key, set()).add(iters)
                current_key = None
        assert key_iters
        for key, counts in key_iters.items():
            assert len(counts) == 1, f"key {key} varied: {counts}"
