"""Tests for the related-work predictors (local two-level, Bi-Mode)."""

import random

import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.local import LocalHistoryPredictor


def accuracy_on(predictor, stream):
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


class TestLocalHistory:
    def test_learns_per_branch_period(self):
        """A period-3 loop branch is a local-history specialty."""
        stream = [(10, (i % 3) != 2) for i in range(600)]
        assert accuracy_on(LocalHistoryPredictor(), stream) > 0.95

    def test_separates_interleaved_branches(self):
        """Two branches with different periods, interleaved: global
        history mixes them while local history keeps them apart."""
        stream = []
        for i in range(500):
            stream.append((10, (i % 2) == 0))      # period 2
            stream.append((20, (i % 5) != 4))      # period 5
        local_acc = accuracy_on(LocalHistoryPredictor(), stream)
        assert local_acc > 0.9

    def test_beats_bimodal_on_patterns(self):
        stream = [(10, (i % 4) != 3) for i in range(800)]
        local = accuracy_on(LocalHistoryPredictor(), stream)
        bimodal = accuracy_on(BimodalPredictor(), stream)
        assert local > bimodal + 0.15

    def test_storage(self):
        predictor = LocalHistoryPredictor(history_entries=1024,
                                          history_bits=10)
        assert predictor.storage_bits == 1024 * 10 + (1 << 10) * 2

    def test_invalid_history_bits(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_bits=0)


class TestBiMode:
    def test_learns_biased_branches(self):
        rng = random.Random(0)
        stream = [(10, rng.random() < 0.9) for _ in range(600)]
        assert accuracy_on(BiModePredictor(256), stream) > 0.8

    def test_opposite_bias_aliasing_resistance(self):
        """Two branches aliasing to the same direction-table entries but
        with opposite biases: the choice table separates them."""
        stream = []
        for i in range(800):
            stream.append((0, True))            # strongly taken
            stream.append((4096, False))        # aliases in a 4096 table
        bimode = accuracy_on(BiModePredictor(4096), stream)
        assert bimode > 0.95

    def test_history_patterns_learned(self):
        stream = [(10, (i % 4) != 3) for i in range(800)]
        assert accuracy_on(BiModePredictor(1024), stream) > 0.85

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BiModePredictor(1000)

    def test_storage(self):
        predictor = BiModePredictor(4096, 4096)
        # two direction tables + choice table (2-bit each) + history.
        assert predictor.storage_bits >= 3 * 4096 * 2


class TestCrossPredictorSanity:
    @pytest.mark.parametrize("factory", [
        lambda: BimodalPredictor(1024),
        lambda: GsharePredictor(1024),
        lambda: LocalHistoryPredictor(),
        lambda: BiModePredictor(1024),
    ])
    def test_all_learn_constant_branch(self, factory):
        stream = [(42, True)] * 100
        assert accuracy_on(factory(), stream) > 0.9

    @pytest.mark.parametrize("factory", [
        lambda: BimodalPredictor(1024),
        lambda: GsharePredictor(1024),
        lambda: LocalHistoryPredictor(),
        lambda: BiModePredictor(1024),
    ])
    def test_random_stream_near_half(self, factory):
        rng = random.Random(7)
        stream = [(rng.randrange(64), rng.random() < 0.5)
                  for _ in range(2000)]
        accuracy = accuracy_on(factory(), stream)
        assert 0.35 < accuracy < 0.65
