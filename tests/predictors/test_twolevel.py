"""Two-level overriding composite tests."""

import pytest

from repro.core.arvi import (
    ARVIConfig,
    ARVIPredictor,
    ARVIRequest,
    RegisterView,
)
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.gskew import TwoBcGskew
from repro.predictors.statics import AlwaysNotTaken, AlwaysTaken
from repro.predictors.twolevel import LevelTwoKind, TwoLevelPredictor
from repro.predictors.ras import ReturnAddressStack


def arvi_request(value=3):
    return ARVIRequest(
        pc=10,
        regset=[RegisterView(preg=1, logical=1, available=True, value=value)],
        branch_token=20, oldest_chain_token=18)


class TestConstruction:
    def test_hybrid_requires_level2(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(AlwaysTaken(), LevelTwoKind.HYBRID)

    def test_arvi_requires_components(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(AlwaysTaken(), LevelTwoKind.ARVI)


class TestNoneKind:
    def test_level1_passthrough(self):
        composite = TwoLevelPredictor(AlwaysTaken(), LevelTwoKind.NONE)
        decision = composite.decide(5)
        assert decision.final_pred is True
        assert not decision.used_l2
        assert not decision.override


class TestHybridKind:
    def test_l2_overrides_on_disagreement(self):
        composite = TwoLevelPredictor(
            AlwaysTaken(), LevelTwoKind.HYBRID,
            level2_hybrid=AlwaysNotTaken(), latency=2)
        decision = composite.decide(5)
        assert decision.l1_pred is True
        assert decision.l2_pred is False
        assert decision.final_pred is False
        assert decision.override

    def test_no_override_on_agreement(self):
        composite = TwoLevelPredictor(
            AlwaysTaken(), LevelTwoKind.HYBRID,
            level2_hybrid=AlwaysTaken())
        decision = composite.decide(5)
        assert not decision.override

    def test_training_updates_both_levels(self):
        l1 = TwoBcGskew(64)
        l2 = TwoBcGskew(256)
        composite = TwoLevelPredictor(l1, LevelTwoKind.HYBRID,
                                      level2_hybrid=l2)
        for _ in range(6):
            decision = composite.decide(5)
            composite.train(5, decision, taken=False)
        assert l1.predict(5) is False
        assert l2.predict(5) is False


class TestArviKind:
    def build(self, threshold=2):
        return TwoLevelPredictor(
            AlwaysTaken(), LevelTwoKind.ARVI,
            arvi=ARVIPredictor(ARVIConfig(allocate_only_hard=False)),
            confidence=ConfidenceEstimator(entries=1, history_bits=1,
                                           threshold=threshold),
            latency=6)

    def test_requires_request(self):
        composite = self.build()
        with pytest.raises(ValueError):
            composite.decide(5)

    def test_arvi_used_when_unconfident_and_hit(self):
        composite = self.build()
        # Train the ARVI entry (value=3 -> not taken).
        for _ in range(3):
            decision = composite.decide(10, arvi_request())
            composite.train(10, decision, taken=False)
        decision = composite.decide(10, arvi_request())
        assert decision.l2_pred is False
        assert decision.used_l2
        assert decision.final_pred is False
        assert decision.override        # L1 says taken

    def test_arvi_not_used_when_confident(self):
        composite = self.build(threshold=2)
        # L1 (always-taken) is correct repeatedly -> confidence builds;
        # ARVI entry also trains toward taken.
        for _ in range(5):
            decision = composite.decide(10, arvi_request())
            composite.train(10, decision, taken=True)
        decision = composite.decide(10, arvi_request())
        assert decision.confident
        assert not decision.used_l2

    def test_bvit_miss_falls_back_to_l1(self):
        composite = self.build()
        decision = composite.decide(10, arvi_request())
        assert decision.arvi is not None and not decision.arvi.hit
        assert decision.final_pred is True  # L1


class TestStatsBookkeeping:
    def test_override_accounting(self):
        composite = TwoLevelPredictor(
            AlwaysTaken(), LevelTwoKind.HYBRID,
            level2_hybrid=AlwaysNotTaken())
        decision = composite.decide(5)
        composite.train(5, decision, taken=False)   # helpful override
        decision = composite.decide(5)
        composite.train(5, decision, taken=True)    # harmful override
        stats = composite.stats
        assert stats.overrides == 2
        assert stats.overrides_helpful == 1
        assert stats.overrides_harmful == 1
        assert stats.branches == 2
        assert stats.final_accuracy == 0.5
        assert stats.l1_accuracy == 0.5


class TestReturnAddressStack:
    def test_push_pop_matching(self):
        ras = ReturnAddressStack(4)
        ras.push(100)
        ras.push(200)
        assert ras.pop(200)
        assert ras.pop(100)
        assert ras.accuracy == 1.0

    def test_underflow_counts_as_wrong(self):
        ras = ReturnAddressStack(4)
        assert not ras.pop(5)
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)       # evicts 1
        assert ras.overflows == 1
        assert ras.pop(3)
        assert ras.pop(2)
        assert not ras.pop(1)

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
