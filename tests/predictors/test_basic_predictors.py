"""Tests for bimodal, gshare, static and perfect predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import (
    GlobalHistory,
    PredictorStats,
    SaturatingCounterTable,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.statics import AlwaysNotTaken, AlwaysTaken, BackwardTaken


class TestSaturatingCounterTable:
    def test_initializes_weakly(self):
        table = SaturatingCounterTable(4, 2)
        assert table[0] == 2  # weakly taken

    def test_nudge_saturates(self):
        table = SaturatingCounterTable(4, 2)
        for _ in range(10):
            table.nudge(0, up=True)
        assert table[0] == 3
        for _ in range(10):
            table.nudge(0, up=False)
        assert table[0] == 0

    def test_is_high_threshold(self):
        table = SaturatingCounterTable(4, 2, initial=1)
        assert not table.is_high(0)
        table.nudge(0, up=True)
        assert table.is_high(0)

    def test_index_wraps(self):
        table = SaturatingCounterTable(4, 2)
        table.nudge(5, up=True)
        assert table[1] == 3 - 0  # same slot as index 5

    def test_reset(self):
        table = SaturatingCounterTable(4, 4)
        table.reset(2, 0)
        assert table[2] == 0

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(0, 2)


class TestGlobalHistory:
    def test_shifts_in_outcomes(self):
        history = GlobalHistory(4)
        for taken in (True, False, True, True):
            history.push(taken)
        assert history.value == 0b1011

    def test_bounded_width(self):
        history = GlobalHistory(3)
        for _ in range(10):
            history.push(True)
        assert history.value == 0b111

    def test_low_bits(self):
        history = GlobalHistory(8)
        for taken in (True, True, False):
            history.push(taken)
        assert history.low(2) == 0b10


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(10, True)
        assert predictor.predict(10) is True
        for _ in range(4):
            predictor.update(10, False)
        assert predictor.predict(10) is False

    def test_hysteresis(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(10, True)
        predictor.update(10, False)      # one blip
        assert predictor.predict(10) is True

    def test_cannot_learn_alternation(self):
        """The classic bimodal failure mode: T/N alternation."""
        predictor = BimodalPredictor(64)
        correct = 0
        outcome = True
        for _ in range(100):
            if predictor.predict(10) == outcome:
                correct += 1
            predictor.update(10, outcome)
            outcome = not outcome
        assert correct <= 60

    def test_storage(self):
        assert BimodalPredictor(4096).storage_bits == 8192


class TestGshare:
    def test_learns_alternation_via_history(self):
        predictor = GsharePredictor(256)
        outcome = True
        correct = 0
        for i in range(200):
            if predictor.predict(10) == outcome:
                correct += 1
            predictor.update(10, outcome)
            outcome = not outcome
        # After warm-up, history disambiguates the two contexts.
        assert correct > 150

    def test_learns_short_loop_pattern(self):
        """Period-4 loop: 3 taken, 1 not-taken."""
        predictor = GsharePredictor(1024)
        pattern = [True, True, True, False]
        correct = 0
        for i in range(400):
            outcome = pattern[i % 4]
            if predictor.predict(20) == outcome:
                correct += 1
            predictor.update(20, outcome)
        assert correct / 400 > 0.9

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            GsharePredictor(1000)


class TestStatics:
    def test_always_taken(self):
        predictor = AlwaysTaken()
        assert predictor.predict(1) is True
        predictor.update(1, False)  # no-op
        assert predictor.predict(1) is True

    def test_always_not_taken(self):
        assert AlwaysNotTaken().predict(1) is False

    def test_backward_taken_uses_target(self):
        predictor = BackwardTaken()
        predictor.set_target(pc=10, target=2)    # backward
        predictor.set_target(pc=20, target=30)   # forward
        assert predictor.predict(10) is True
        assert predictor.predict(20) is False
        assert predictor.predict(99) is False    # unseen


class TestPerfect:
    def test_follows_oracle(self):
        predictor = PerfectPredictor()
        predictor.set_outcome(True)
        assert predictor.predict(0) is True
        predictor.set_outcome(False)
        assert predictor.predict(0) is False


class TestPredictorStats:
    def test_accuracy(self):
        stats = PredictorStats()
        stats.record(True)
        stats.record(False)
        stats.record(True)
        assert stats.predictions == 3
        assert stats.correct == 2
        assert stats.mispredictions == 1
        assert stats.accuracy == pytest.approx(2 / 3)

    @given(st.lists(st.booleans(), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_counts_consistent(self, outcomes):
        stats = PredictorStats()
        for outcome in outcomes:
            stats.record(outcome)
        assert stats.correct + stats.mispredictions == stats.predictions
