"""Tests for the 2Bc-gskew hybrid (EV8-style) predictor."""

import random

import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gskew import TwoBcGskew, level1_gskew, level2_gskew


def accuracy_on(predictor, stream):
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


def biased_stream(n=400, pc=10, bias=0.95, seed=0):
    rng = random.Random(seed)
    return [(pc, rng.random() < bias) for _ in range(n)]


def loop_stream(n=600, pc=10, period=5):
    return [(pc, (i % period) != period - 1) for i in range(n)]


class TestPrediction:
    def test_learns_biased_branch(self):
        assert accuracy_on(TwoBcGskew(256), biased_stream()) > 0.85

    def test_learns_loop_pattern(self):
        assert accuracy_on(TwoBcGskew(1024), loop_stream()) > 0.9

    def test_beats_bimodal_on_history_patterns(self):
        stream = loop_stream(n=800, period=4)
        gskew_acc = accuracy_on(TwoBcGskew(1024), stream)
        bimodal_acc = accuracy_on(BimodalPredictor(1024), stream)
        assert gskew_acc > bimodal_acc + 0.1

    def test_component_predictions_structure(self):
        predictor = TwoBcGskew(256)
        bim, eskew, use_eskew, final = predictor.component_predictions(10)
        assert final == (eskew if use_eskew else bim)

    def test_mixed_pc_streams(self):
        """Several branches with independent biases at once."""
        rng = random.Random(1)
        stream = []
        for _ in range(1200):
            pc = rng.choice([10, 33, 71])
            bias = {10: 0.9, 33: 0.1, 71: 0.8}[pc]
            stream.append((pc, rng.random() < bias))
        assert accuracy_on(TwoBcGskew(1024), stream) > 0.75


class TestUpdateRule:
    def test_meta_trains_only_on_disagreement(self):
        predictor = TwoBcGskew(64)
        meta_before = list(predictor.meta._counters)
        # Force agreement: everything initialized weakly-taken agrees.
        predictor.update(5, True)
        # bim == eskew == taken: meta untouched.
        assert predictor.meta._counters == meta_before

    def test_misprediction_retrains_all_banks(self):
        predictor = TwoBcGskew(64)
        bim_idx, g0_idx, g1_idx, _ = predictor._indices(5)
        before = (predictor.bim[bim_idx], predictor.g0[g0_idx],
                  predictor.g1[g1_idx])
        predictor.update(5, False)   # initial prediction is weakly taken
        after = (predictor.bim[bim_idx], predictor.g0[g0_idx],
                 predictor.g1[g1_idx])
        assert all(a < b for a, b in zip(after, before))


class TestConfigurations:
    def test_paper_sizes(self):
        # 1 KB per bank = 4096 two-bit counters; 8 KB = 32768.
        assert level1_gskew().bank_entries == 4096
        assert level2_gskew().bank_entries == 32768
        # Total storage ~4x bank size (plus the history register).
        assert level1_gskew().storage_bits // 8192 == 4
        assert level2_gskew().storage_bits // 8192 == 32

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            TwoBcGskew(1000)

    def test_distinct_bank_indices(self):
        """The skewing hashes must decorrelate the banks."""
        predictor = TwoBcGskew(4096)
        for taken in (True, False, True, True, False, True):
            predictor.update(123, taken)
        collisions = 0
        for pc in range(50):
            bim, g0, g1, _ = predictor._indices(pc * 97)
            if bim == g0 or g0 == g1 or bim == g1:
                collisions += 1
        assert collisions < 25
