"""Confidence estimator tests."""

import pytest

from repro.predictors.confidence import ConfidenceEstimator


class TestConfidence:
    def test_fresh_estimator_is_unconfident(self):
        estimator = ConfidenceEstimator(threshold=4)
        assert not estimator.is_confident(10)

    def test_streak_builds_confidence(self):
        estimator = ConfidenceEstimator(entries=1, history_bits=1,
                                        threshold=4)
        for _ in range(4):
            estimator.update(10, level1_correct=True, taken=True)
        assert estimator.is_confident(10)

    def test_mispredict_resets(self):
        estimator = ConfidenceEstimator(entries=1, history_bits=1,
                                        threshold=4)
        for _ in range(6):
            estimator.update(10, level1_correct=True, taken=True)
        estimator.update(10, level1_correct=False, taken=True)
        assert not estimator.is_confident(10)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(counter_bits=2, threshold=10)

    def test_query_statistics(self):
        estimator = ConfidenceEstimator(entries=1, history_bits=1,
                                        threshold=2)
        estimator.is_confident(5)
        for _ in range(3):
            estimator.update(5, level1_correct=True, taken=False)
        estimator.is_confident(5)
        assert estimator.queries == 2
        assert estimator.confident_queries == 1

    def test_contexts_are_history_dependent(self):
        """The same PC under different histories is tracked separately.

        With a 1-bit history and constant outcomes, the context stabilizes
        after the first update, so confidence accumulates there; flipping
        the history moves the same PC to a fresh, unconfident counter.
        """
        estimator = ConfidenceEstimator(entries=256, history_bits=1,
                                        threshold=2)
        for _ in range(4):
            estimator.update(10, level1_correct=True, taken=True)
        assert estimator.is_confident(10)
        # Flip the global history: same PC, different context.
        estimator.update(99, level1_correct=True, taken=False)
        assert not estimator.is_confident(10)
