"""Hash unit tests: BVIT index, register-set tag, depth key."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import bvit_index, depth_key, register_set_tag


class TestBvitIndex:
    def test_pc_only(self):
        assert bvit_index(0x555, []) == 0x555 & 0x7FF

    def test_xor_of_values(self):
        assert bvit_index(0, [0b101, 0b011]) == 0b110

    def test_masked_to_index_bits(self):
        assert bvit_index(0xFFFF, [0x1FFF], index_bits=8) < 256

    def test_order_independent(self):
        assert bvit_index(7, [1, 2, 3]) == bvit_index(7, [3, 1, 2])

    @given(st.integers(0, 1 << 20),
           st.lists(st.integers(0, 0xFFFFFFFF), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_range_property(self, pc, values):
        assert 0 <= bvit_index(pc, values) < 2048

    def test_value_changes_index(self):
        """Different low-order register values reach different entries."""
        assert bvit_index(0, [5]) != bvit_index(0, [6])


class TestRegisterSetTag:
    def test_simple_sum(self):
        assert register_set_tag([1, 2, 3]) == 6

    def test_modulo_width(self):
        assert register_set_tag([7, 7]) == (7 + 7) % 8

    def test_low_bits_of_ids(self):
        # id 9 contributes 9 & 7 = 1.
        assert register_set_tag([9]) == 1

    def test_empty_set(self):
        assert register_set_tag([]) == 0

    @given(st.lists(st.integers(0, 31), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_range(self, ids):
        assert 0 <= register_set_tag(ids) < 8


class TestDepthKey:
    def test_no_chain_is_zero(self):
        assert depth_key(100, None) == 0

    def test_span(self):
        assert depth_key(10, 4) == 6

    def test_saturates_at_31(self):
        assert depth_key(100, 0) == 31
        assert depth_key(33, 0) == 31
        assert depth_key(31, 0) == 31

    def test_below_saturation_exact(self):
        assert depth_key(30, 0) == 30

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            depth_key(3, 5)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_range_property(self, branch, back):
        if back > branch:
            branch, back = back, branch
        assert 0 <= depth_key(branch, back) <= 31
