"""RSE tests, including the paper's Figure 3 worked example."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ddt import DDT
from repro.core.rse import ChainInfoTable, RSEArray

# Paper Figure 3 program (same as Figure 1, with load marking):
#   entry 0: load p1 <- (p2)      loads mark nothing
#   entry 1: add  p4 <- p1 + p3
#   entry 2: or   p5 <- p4 or p1
#   entry 3: sub  p6 <- p5 - p4
#   entry 4: add  p7 <- p1 + 1
#   entry 5: add  p8 <- p4 + p7
FIGURE3_PROGRAM = [
    (1, (2,), True),
    (4, (1, 3), False),
    (5, (4, 1), False),
    (6, (5, 4), False),
    (7, (1,), False),
    (8, (4, 7), False),
]


def figure3_state():
    ddt = DDT(num_regs=10, num_entries=9)
    rse = RSEArray(num_regs=10, num_entries=9)
    chains = ChainInfoTable()
    for dest, srcs, is_load in FIGURE3_PROGRAM:
        token = ddt.allocate(dest, srcs)
        entry = ddt.entry_of_token(token)
        rse.insert(entry, dest, srcs, is_load=is_load)
        chains.insert(token, dest, srcs, is_load=is_load)
    return ddt, rse, chains


class TestPaperFigure3:
    def test_register_set_is_p1_p3(self):
        """The branch ``beq p8, 0`` resolves to the leaf set {p1, p3}."""
        ddt, rse, _ = figure3_state()
        enable = ddt.chain_mask(8)
        assert rse.extract(enable, branch_srcs=(8,)) == {1, 3}

    def test_chain_info_table_agrees(self):
        ddt, _, chains = figure3_state()
        tokens = ddt.chain_tokens(8)
        assert chains.extract(tokens, branch_srcs=(8,)) == {1, 3}

    def test_intermediate_registers_eliminated(self):
        """p4 and p7 are excluded: their values derive from p1 and p3."""
        ddt, rse, _ = figure3_state()
        result = rse.extract(ddt.chain_mask(8), branch_srcs=(8,))
        assert 4 not in result
        assert 7 not in result
        assert 8 not in result

    def test_cell_markings(self):
        _, rse, _ = figure3_state()
        # Load entry (0) is intentionally unmarked.
        for reg in range(10):
            assert rse.cell(reg, 0) == ""
        # add p4 <- p1 + p3 at entry 1.
        assert rse.cell(1, 1) == "S"
        assert rse.cell(3, 1) == "S"
        assert rse.cell(4, 1) == "T"

    def test_storage_sizing(self):
        rse = RSEArray(num_regs=72, num_entries=80)
        assert rse.storage_bits == 2 * 72 * 80


class TestRSESemantics:
    def test_committed_operand_is_its_own_leaf(self):
        """A branch whose operand chain is empty uses the operand itself."""
        rse = RSEArray(4, 4)
        assert rse.extract(0, branch_srcs=(2,)) == {2}

    def test_pending_load_dest_stays_in_set(self):
        """A load's destination is a leaf: chains terminate at loads."""
        ddt = DDT(8, 8)
        rse = RSEArray(8, 8)
        t_load = ddt.allocate(1, (2,))
        rse.insert(ddt.entry_of_token(t_load), 1, (2,), is_load=True)
        t_add = ddt.allocate(3, (1,))
        rse.insert(ddt.entry_of_token(t_add), 3, (1,), is_load=False)
        result = rse.extract(ddt.chain_mask(3), branch_srcs=(3,))
        assert result == {1}  # the load's dest; 3 is produced in-chain

    def test_load_address_register_not_included(self):
        """Loads mark no sources: the base-address register is excluded."""
        ddt = DDT(8, 8)
        rse = RSEArray(8, 8)
        token = ddt.allocate(1, (2,))
        rse.insert(ddt.entry_of_token(token), 1, (2,), is_load=True)
        result = rse.extract(ddt.chain_mask(1), branch_srcs=(1,))
        assert 2 not in result
        assert result == {1}

    def test_entry_reuse_clears_marks(self):
        rse = RSEArray(4, 2)
        rse.insert(0, 1, (2,), is_load=False)
        rse.insert(0, 3, (1,), is_load=False)  # reuse entry 0
        assert rse.cell(2, 0) == ""
        assert rse.cell(1, 0) == "S"
        assert rse.cell(3, 0) == "T"


class TestChainInfoTable:
    def test_discard_removes_metadata(self):
        chains = ChainInfoTable()
        chains.insert(0, 1, (2,), is_load=False)
        assert len(chains) == 1
        chains.discard(0)
        assert len(chains) == 0
        chains.discard(0)  # idempotent

    def test_info_roundtrip(self):
        chains = ChainInfoTable()
        chains.insert(5, 1, (2, 3), is_load=True)
        assert chains.info(5) == (1, (2, 3), True)


# -- Equivalence: bit-plane RSE vs token-keyed table ----------------------


@st.composite
def rse_programs(draw):
    num_regs = draw(st.integers(3, 8))
    length = draw(st.integers(1, 12))
    program = []
    for _ in range(length):
        dest = draw(st.one_of(st.none(), st.integers(1, num_regs - 1)))
        srcs = tuple(draw(st.lists(
            st.integers(0, num_regs - 1), max_size=2)))
        is_load = draw(st.booleans())
        program.append((dest, srcs, is_load))
    branch_srcs = tuple(draw(st.lists(
        st.integers(0, num_regs - 1), min_size=1, max_size=2)))
    return num_regs, program, branch_srcs


class TestEquivalence:
    @given(rse_programs())
    @settings(max_examples=150, deadline=None)
    def test_array_matches_table(self, case):
        num_regs, program, branch_srcs = case
        ddt = DDT(num_regs, len(program) + 1)
        rse = RSEArray(num_regs, len(program) + 1)
        chains = ChainInfoTable()
        for dest, srcs, is_load in program:
            token = ddt.allocate(dest, srcs)
            rse.insert(ddt.entry_of_token(token), dest, srcs, is_load=is_load)
            chains.insert(token, dest, srcs, is_load=is_load)
        mask = ddt.chain_mask(*branch_srcs)
        tokens = ddt.chain_tokens(*branch_srcs)
        assert (rse.extract(mask, branch_srcs)
                == chains.extract(tokens, branch_srcs))
