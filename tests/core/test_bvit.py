"""BVIT tests: tag matching, training, Heil-style replacement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bvit import BVIT


class TestLookupAndUpdate:
    def test_miss_returns_none(self):
        assert BVIT(16, 2).lookup(3, 1, 1) is None

    def test_allocate_then_hit(self):
        bvit = BVIT(16, 2)
        bvit.update(3, id_tag=1, depth_tag=2, taken=True)
        assert bvit.lookup(3, 1, 2) is True

    def test_tags_must_both_match(self):
        bvit = BVIT(16, 2)
        bvit.update(3, id_tag=1, depth_tag=2, taken=True)
        assert bvit.lookup(3, 1, 3) is None   # depth differs
        assert bvit.lookup(3, 2, 2) is None   # id differs

    def test_counter_trains_toward_outcome(self):
        bvit = BVIT(16, 2)
        bvit.update(0, 0, 0, taken=True)      # counter = 2
        bvit.update(0, 0, 0, taken=False)     # counter = 1
        assert bvit.lookup(0, 0, 0) is False
        bvit.update(0, 0, 0, taken=True)
        assert bvit.lookup(0, 0, 0) is True

    def test_counter_saturates(self):
        bvit = BVIT(16, 2)
        for _ in range(10):
            bvit.update(0, 0, 0, taken=True)
        # A single not-taken cannot flip a saturated counter.
        bvit.update(0, 0, 0, taken=False)
        assert bvit.lookup(0, 0, 0) is True

    def test_index_wraps_modulo_sets(self):
        bvit = BVIT(16, 2)
        bvit.update(16 + 3, 0, 0, taken=True)
        assert bvit.lookup(3, 0, 0) is True

    def test_allocate_gating(self):
        bvit = BVIT(16, 2)
        bvit.update(0, 0, 0, taken=True, allocate=False)
        assert bvit.lookup(0, 0, 0) is None
        assert bvit.stats.allocations == 0

    def test_update_existing_even_without_allocate(self):
        bvit = BVIT(16, 2)
        bvit.update(0, 0, 0, taken=False)
        bvit.update(0, 0, 0, taken=False, allocate=False)
        assert bvit.lookup(0, 0, 0) is False


class TestReplacement:
    def test_set_fills_all_ways(self):
        bvit = BVIT(sets=4, ways=2)
        bvit.update(0, 1, 0, taken=True)
        bvit.update(0, 2, 0, taken=True)
        assert bvit.occupancy() == 2
        assert bvit.lookup(0, 1, 0) is True
        assert bvit.lookup(0, 2, 0) is True

    def test_low_performance_entry_evicted_first(self):
        bvit = BVIT(sets=1, ways=2)
        bvit.update(0, 1, 0, taken=True)
        bvit.update(0, 2, 0, taken=True)
        # Entry (1,0) predicts well; entry (2,0) mispredicts repeatedly.
        for _ in range(4):
            bvit.update(0, 1, 0, taken=True)       # correct -> perf up
            bvit.update(0, 2, 0, taken=False)      # counter swings -> perf down
            bvit.update(0, 2, 0, taken=True)
        # A new entry must displace the low-perf one.
        bvit.update(0, 3, 0, taken=True)
        assert bvit.lookup(0, 1, 0) is True         # survivor
        assert bvit.lookup(0, 3, 0) is True         # newcomer
        assert bvit.lookup(0, 2, 0) is None         # victim
        assert bvit.stats.evictions == 1

    def test_eviction_only_within_set(self):
        bvit = BVIT(sets=2, ways=1)
        bvit.update(0, 1, 0, taken=True)
        bvit.update(1, 1, 0, taken=True)   # different set
        assert bvit.occupancy() == 2
        assert bvit.stats.evictions == 0


class TestStatsAndSizing:
    def test_hit_rate(self):
        bvit = BVIT(16, 2)
        bvit.update(0, 0, 0, taken=True)
        bvit.lookup(0, 0, 0)
        bvit.lookup(1, 0, 0)
        assert bvit.stats.lookups == 2
        assert bvit.stats.hits == 1
        assert bvit.stats.hit_rate == 0.5

    def test_entry_bits(self):
        bvit = BVIT(2048, 4)
        assert bvit.entry_bits == 3 + 5 + 3 + 2
        assert bvit.storage_bits == 2048 * 4 * 13

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BVIT(0, 4)
        with pytest.raises(ValueError):
            BVIT(4, 0)


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                              st.integers(0, 31), st.booleans()),
                    max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, updates):
        bvit = BVIT(sets=4, ways=2)
        for index, id_tag, depth, taken in updates:
            bvit.update(index, id_tag, depth, taken)
        assert bvit.occupancy() <= 4 * 2
        for bucket in bvit._table:
            assert len(bucket) <= 2

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_prediction_follows_majority_after_training(self, outcomes):
        bvit = BVIT(4, 1)
        for taken in outcomes:
            bvit.update(0, 0, 0, taken)
        # After a long uniform tail the counter must match it.
        for taken in [outcomes[-1]] * 3:
            bvit.update(0, 0, 0, taken)
        assert bvit.lookup(0, 0, 0) is outcomes[-1]
