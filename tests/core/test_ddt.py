"""DDT tests, including the paper's Figure 1 worked example and the
hardware-faithful vs fast implementation equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ddt import DDT, DDTError, FastDDT

# Paper Figure 1 instruction sequence (1-indexed physical registers):
#   1: load p1 <- (p2)
#   2: add  p4 <- p1 + p3
#   3: or   p5 <- p4 or p1
#   4: sub  p6 <- p5 - p4
#   5: add  p7 <- p1 + 1
#   6: add  p8 <- p4 + p7
FIGURE1_PROGRAM = [
    (1, (2,)),
    (4, (1, 3)),
    (5, (4, 1)),
    (6, (5, 4)),
    (7, (1,)),
    (8, (4, 7)),
]


def figure1_ddt(cls=DDT):
    ddt = cls(num_regs=10, num_entries=9)
    tokens = [ddt.allocate(dest, srcs) for dest, srcs in FIGURE1_PROGRAM]
    return ddt, tokens


class TestPaperFigure1:
    """Bit-for-bit reproduction of the DDT update example."""

    def test_state_before_insertion(self):
        ddt = DDT(num_regs=10, num_entries=9)
        for dest, srcs in FIGURE1_PROGRAM[:5]:
            ddt.allocate(dest, srcs)
        # Upper table of Figure 1 (entries are 0-indexed here).
        assert ddt.row_bits(1)[:5] == (1, 0, 0, 0, 0)
        assert ddt.row_bits(4)[:5] == (1, 1, 0, 0, 0)
        assert ddt.row_bits(5)[:5] == (1, 1, 1, 0, 0)
        assert ddt.row_bits(6)[:5] == (1, 1, 1, 1, 0)
        assert ddt.row_bits(7)[:5] == (1, 0, 0, 0, 1)
        assert ddt.valid == 0b11111

    def test_state_after_insertion(self):
        ddt, tokens = figure1_ddt()
        # DDT[p8] = (DDT[p4] | DDT[p7]) & valid | own bit = {1,2,5,6}.
        assert ddt.row_bits(8) == (1, 1, 0, 0, 1, 1, 0, 0, 0)
        assert ddt.valid == 0b111111
        assert ddt.chain_tokens(8) == {tokens[0], tokens[1], tokens[4],
                                       tokens[5]}

    def test_register_trivially_depends_on_own_instruction(self):
        ddt, tokens = figure1_ddt()
        assert ddt.depends_on(5, tokens[2])

    def test_paper_sizing(self):
        """Section 2: 80 ROB entries x 72 physical registers = 5760 bits."""
        ddt = DDT(num_regs=72, num_entries=80)
        assert ddt.storage_bits == 5760
        assert ddt.storage_bytes == 720  # the paper rounds this to ~730 B

    def test_commit_removes_from_all_chains(self):
        ddt, tokens = figure1_ddt()
        committed = ddt.commit_oldest()  # the load (instruction 1)
        assert committed == tokens[0]
        for reg in range(10):
            assert tokens[0] not in ddt.chain_tokens(reg)
        # p8 chain shrinks but keeps the rest.
        assert ddt.chain_tokens(8) == {tokens[1], tokens[4], tokens[5]}


class TestDDTStructure:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            DDT(0, 4)
        with pytest.raises(ValueError):
            FastDDT(4, 0)

    def test_overflow_raises(self):
        ddt = DDT(num_regs=4, num_entries=2)
        ddt.allocate(1, ())
        ddt.allocate(2, ())
        with pytest.raises(DDTError):
            ddt.allocate(3, ())

    def test_commit_empty_raises(self):
        with pytest.raises(DDTError):
            DDT(4, 4).commit_oldest()
        with pytest.raises(DDTError):
            FastDDT(4, 4).commit_oldest()

    def test_entry_reuse_clears_column(self):
        ddt = DDT(num_regs=4, num_entries=2)
        t0 = ddt.allocate(1, ())
        ddt.allocate(2, (1,))
        ddt.commit_oldest()
        # Entry 0 is reused; register 1's old bit must not leak into the
        # new instruction's chain.
        t2 = ddt.allocate(3, ())
        assert ddt.chain_tokens(3) == {t2}
        assert not ddt.depends_on(3, t0)

    def test_dest_none_occupies_column_without_row_update(self):
        ddt = DDT(num_regs=4, num_entries=4)
        ddt.allocate(1, ())
        token = ddt.allocate(None, (1,))   # store/branch
        assert ddt.in_flight == 2
        for reg in range(4):
            assert token not in ddt.chain_tokens(reg)

    def test_rollback_squashes_young_instructions(self):
        ddt, tokens = figure1_ddt()
        squashed = ddt.rollback_to(tokens[2])
        assert squashed == [tokens[5], tokens[4], tokens[3]]
        assert ddt.in_flight == 3
        assert ddt.chain_tokens(5) == {tokens[0], tokens[1], tokens[2]}
        # Entries can be reallocated after the rollback.
        token = ddt.allocate(6, (5,))
        assert ddt.chain_tokens(6) == {tokens[0], tokens[1], tokens[2], token}

    def test_rollback_to_newest_is_noop(self):
        ddt, tokens = figure1_ddt()
        assert ddt.rollback_to(tokens[-1]) == []
        assert ddt.in_flight == 6

    def test_wraparound_allocation(self):
        ddt = DDT(num_regs=4, num_entries=3)
        for _ in range(10):
            ddt.allocate(1, (1,))
            ddt.commit_oldest()
        assert ddt.in_flight == 0

    def test_chain_length(self):
        ddt, tokens = figure1_ddt()
        assert ddt.chain_length(8) == 4
        assert ddt.chain_length(6) == 4
        assert ddt.chain_length(2) == 0


class TestFastDDT:
    def test_figure1_chains_match(self):
        ddt, tokens = figure1_ddt(FastDDT)
        assert ddt.chain_tokens(8) == {tokens[0], tokens[1], tokens[4],
                                       tokens[5]}

    def test_oldest_chain_token(self):
        ddt, tokens = figure1_ddt(FastDDT)
        assert ddt.oldest_chain_token(8) == tokens[0]
        assert ddt.oldest_chain_token(2) is None
        ddt.commit_oldest()
        assert ddt.oldest_chain_token(8) == tokens[1]

    def test_next_token_is_monotone(self):
        ddt = FastDDT(4, 4)
        first = ddt.next_token
        token = ddt.allocate(1, ())
        assert token == first
        assert ddt.next_token == first + 1

    def test_renormalization_preserves_chains(self):
        ddt = FastDDT(4, 8)
        ddt._RENORM_INTERVAL = 16  # force frequent renormalization
        last_token = None
        for i in range(200):
            if ddt.in_flight >= 4:
                ddt.commit_oldest()
            last_token = ddt.allocate(1 + (i % 3), (1 + ((i + 1) % 3),))
        assert last_token in ddt.chain_tokens(1 + (199 % 3))


# -- Equivalence: hardware-faithful vs fast implementation ----------------


@st.composite
def ddt_operations(draw):
    """Random allocate/commit/read scripts over a small register file."""
    num_regs = draw(st.integers(3, 8))
    num_entries = draw(st.integers(2, 6))
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["alloc", "commit"]),
        st.integers(0, num_regs - 1),
        st.lists(st.integers(0, num_regs - 1), max_size=2),
        st.booleans(),
    ), max_size=60))
    return num_regs, num_entries, ops


@st.composite
def ddt_scripts_with_rollback(draw):
    """Random allocate/commit/rollback scripts (rollbacks interleaved).

    The fifth tuple element picks the rollback target among the tokens
    allocated so far at script-execution time.
    """
    num_regs = draw(st.integers(3, 8))
    num_entries = draw(st.integers(2, 6))
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["alloc", "alloc", "commit", "rollback"]),
        st.integers(0, num_regs - 1),
        st.lists(st.integers(0, num_regs - 1), max_size=2),
        st.booleans(),
        st.integers(0, 59),
    ), max_size=60))
    return num_regs, num_entries, ops


class TestEquivalence:
    @given(ddt_operations())
    @settings(max_examples=120, deadline=None)
    def test_fast_matches_reference(self, script):
        num_regs, num_entries, ops = script
        reference = DDT(num_regs, num_entries)
        fast = FastDDT(num_regs, num_entries)
        fast._RENORM_INTERVAL = 8  # stress the window logic
        for kind, dest, srcs, use_dest in ops:
            if kind == "alloc" and reference.in_flight < num_entries:
                d = dest if use_dest else None
                assert reference.allocate(d, srcs) == fast.allocate(d, srcs)
            elif kind == "commit" and reference.in_flight > 0:
                assert reference.commit_oldest() == fast.commit_oldest()
            for reg in range(num_regs):
                assert reference.chain_tokens(reg) == fast.chain_tokens(reg)
            assert reference.in_flight == fast.in_flight

    @given(ddt_scripts_with_rollback())
    @settings(max_examples=120, deadline=None)
    def test_interleaved_rollback_equivalence(self, script):
        """The docstring-promised property: identical random
        allocate/commit/rollback sequences (rollbacks *interleaved* with
        later allocations, not just terminal) keep both implementations
        in bit-for-bit agreement — tokens, chains, occupancy and the
        squashed lists themselves."""
        num_regs, num_entries, ops = script
        reference = DDT(num_regs, num_entries)
        fast = FastDDT(num_regs, num_entries)
        fast._RENORM_INTERVAL = 8  # stress the window logic
        allocated = []
        for kind, dest, srcs, use_dest, pick in ops:
            if kind == "alloc" and reference.in_flight < num_entries:
                d = dest if use_dest else None
                token = reference.allocate(d, srcs)
                assert token == fast.allocate(d, srcs)
                allocated.append(token)
            elif kind == "commit" and reference.in_flight > 0:
                assert reference.commit_oldest() == fast.commit_oldest()
            elif kind == "rollback" and allocated:
                # Any previously issued token is a legal target, even one
                # already committed (then everything in flight squashes).
                target = allocated[pick % len(allocated)]
                assert (reference.rollback_to(target)
                        == fast.rollback_to(target))
            assert reference.in_flight == fast.in_flight
            for reg in range(num_regs):
                assert reference.chain_tokens(reg) == fast.chain_tokens(reg)

    @given(ddt_operations(), st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_rollback_equivalence(self, script, rollback_at):
        num_regs, num_entries, ops = script
        reference = DDT(num_regs, num_entries)
        fast = FastDDT(num_regs, num_entries)
        allocated = []
        for kind, dest, srcs, use_dest in ops:
            if kind == "alloc" and reference.in_flight < num_entries:
                d = dest if use_dest else None
                allocated.append(reference.allocate(d, srcs))
                fast.allocate(d, srcs)
            elif kind == "commit" and reference.in_flight > 0:
                reference.commit_oldest()
                fast.commit_oldest()
        if allocated:
            target = allocated[min(rollback_at, len(allocated) - 1)]
            assert reference.rollback_to(target) == fast.rollback_to(target)
            for reg in range(num_regs):
                assert reference.chain_tokens(reg) == fast.chain_tokens(reg)


class TestChainInvariants:
    @given(ddt_operations())
    @settings(max_examples=60, deadline=None)
    def test_chain_is_transitive_union(self, script):
        """A destination chain equals the union of its sources' chains
        (restricted to still-valid instructions) plus its own token."""
        num_regs, num_entries, ops = script
        ddt = FastDDT(num_regs, num_entries)
        for kind, dest, srcs, use_dest in ops:
            if kind == "alloc" and ddt.in_flight < num_entries:
                before = set()
                for src in srcs:
                    before |= ddt.chain_tokens(src)
                token = ddt.allocate(dest, srcs)
                assert ddt.chain_tokens(dest) == before | {token}
            elif kind == "commit" and ddt.in_flight > 0:
                ddt.commit_oldest()
