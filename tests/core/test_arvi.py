"""ARVI predictor tests: keys, classification, training, ablation flags."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arvi import (
    ARVIConfig,
    ARVIPredictor,
    ARVIRequest,
    RegisterView,
    ValueMode,
)


def view(preg, logical, available=True, value=0):
    return RegisterView(preg=preg, logical=logical,
                        available=available, value=value)


def request(pc=100, regset=None, branch_token=50, oldest=45):
    return ARVIRequest(pc=pc, regset=regset or [],
                       branch_token=branch_token, oldest_chain_token=oldest)


class TestKeyFormation:
    def test_index_uses_available_values_only(self):
        arvi = ARVIPredictor()
        with_pending = request(regset=[view(1, 1, value=5),
                                       view(2, 2, available=False, value=9)])
        without = request(regset=[view(1, 1, value=5)])
        # The pending register contributes nothing to the index.
        assert arvi.keys(with_pending)[0] == arvi.keys(without)[0]

    def test_id_tag_covers_all_set_members(self):
        arvi = ARVIPredictor()
        r1 = request(regset=[view(1, 1), view(2, 2, available=False)])
        r2 = request(regset=[view(1, 1)])
        assert arvi.keys(r1)[1] != arvi.keys(r2)[1]

    def test_depth_tag_from_tokens(self):
        arvi = ARVIPredictor()
        assert arvi.keys(request(branch_token=50, oldest=45))[2] == 5
        assert arvi.keys(request(branch_token=50, oldest=None))[2] == 0

    def test_ablation_flags_zero_tags(self):
        arvi = ARVIPredictor(ARVIConfig(use_id_tag=False,
                                        use_depth_tag=False))
        _, id_tag, depth = arvi.keys(
            request(regset=[view(1, 7)], branch_token=50, oldest=10))
        assert id_tag == 0
        assert depth == 0

    def test_different_values_different_entries(self):
        arvi = ARVIPredictor()
        k1 = arvi.keys(request(regset=[view(1, 1, value=10)]))
        k2 = arvi.keys(request(regset=[view(1, 1, value=11)]))
        assert k1[0] != k2[0]


class TestClassification:
    def test_all_available_is_calculated(self):
        arvi = ARVIPredictor()
        pred = arvi.predict(request(regset=[view(1, 1), view(2, 2)]))
        assert not pred.is_load_branch
        assert arvi.stats.calculated_branches == 1

    def test_any_pending_is_load_branch(self):
        arvi = ARVIPredictor()
        pred = arvi.predict(request(
            regset=[view(1, 1), view(2, 2, available=False)]))
        assert pred.is_load_branch
        assert arvi.stats.load_branches == 1

    def test_empty_set_is_calculated(self):
        arvi = ARVIPredictor()
        pred = arvi.predict(request(regset=[]))
        assert not pred.is_load_branch
        assert arvi.stats.empty_sets == 1


class TestPredictTrainLoop:
    def test_learns_value_conditioned_outcome(self):
        """Same PC, two key values with opposite outcomes: both learned."""
        arvi = ARVIPredictor(ARVIConfig(allocate_only_hard=False))
        taken_req = request(regset=[view(1, 1, value=7)])
        nottaken_req = request(regset=[view(1, 1, value=8)])
        for _ in range(3):
            arvi.update(arvi.predict(taken_req), True)
            arvi.update(arvi.predict(nottaken_req), False)
        assert arvi.predict(taken_req).taken is True
        assert arvi.predict(nottaken_req).taken is False

    def test_depth_disambiguates_iterations(self):
        """Same PC and values, different chain spans: separate entries
        (the paper's loop-iteration disambiguation)."""
        arvi = ARVIPredictor(ARVIConfig(allocate_only_hard=False))
        iter1 = request(regset=[view(1, 1, value=7)],
                        branch_token=100, oldest=95)
        iter2 = request(regset=[view(1, 1, value=7)],
                        branch_token=100, oldest=90)
        for _ in range(3):
            arvi.update(arvi.predict(iter1), False)
            arvi.update(arvi.predict(iter2), True)
        assert arvi.predict(iter1).taken is False
        assert arvi.predict(iter2).taken is True

    def test_allocation_gated_on_hard_branch(self):
        arvi = ARVIPredictor(ARVIConfig(allocate_only_hard=True))
        req = request(regset=[view(1, 1, value=3)])
        arvi.update(arvi.predict(req), True, hard_branch=False)
        assert arvi.predict(req).taken is None      # not allocated
        arvi.update(arvi.predict(req), True, hard_branch=True)
        assert arvi.predict(req).taken is True

    def test_miss_prediction_is_none(self):
        arvi = ARVIPredictor()
        pred = arvi.predict(request(regset=[view(1, 1, value=3)]))
        assert pred.taken is None
        assert not pred.hit

    @given(st.lists(st.tuples(st.integers(0, 3), st.booleans()),
                    min_size=8, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_no_crash_on_random_streams(self, events):
        arvi = ARVIPredictor(ARVIConfig(sets=8, ways=2,
                                        allocate_only_hard=False))
        for key, taken in events:
            req = request(regset=[view(1, 1, value=key)])
            arvi.update(arvi.predict(req), taken)
        assert arvi.stats.predictions == len(events)


class TestValueModeEnum:
    def test_paper_names(self):
        assert ValueMode.CURRENT.value == "current value"
        assert ValueMode.LOAD_BACK.value == "load back"
        assert ValueMode.PERFECT.value == "perfect value"


class TestSizing:
    def test_storage_composition(self):
        arvi = ARVIPredictor()
        assert arvi.storage_bits() == arvi.bvit.storage_bits
        assert arvi.storage_bits(100, 50) == arvi.bvit.storage_bits + 150
