"""Shadow register file and shadow map table tests."""

import pytest

from repro.core.shadow import ShadowMapTable, ShadowRegisterFile


class TestShadowRegisterFile:
    def test_stores_low_bits_only(self):
        shadow = ShadowRegisterFile(8, value_bits=11)
        shadow.write(3, 0xFFFF)
        assert shadow.read(3) == 0x7FF

    def test_default_zero(self):
        assert ShadowRegisterFile(4).read(2) == 0

    def test_paper_sizing(self):
        """72 physical registers x 11 bits = 792 bits (Section 4.3)."""
        assert ShadowRegisterFile(72).storage_bits == 792

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ShadowRegisterFile(4, value_bits=0)

    def test_overwrite(self):
        shadow = ShadowRegisterFile(4)
        shadow.write(1, 5)
        shadow.write(1, 9)
        assert shadow.read(1) == 9


class TestShadowMapTable:
    def test_stores_low_id_bits(self):
        table = ShadowMapTable(8, id_bits=3)
        table.record(5, 29)  # $sp: 29 & 7 = 5
        assert table.logical_id(5) == 5

    def test_paper_sizing(self):
        """32 logical registers of 3 bits each = 96 bits per 32 pregs."""
        assert ShadowMapTable(32).storage_bits == 96

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ShadowMapTable(4, id_bits=0)

    def test_rename_updates_mapping(self):
        table = ShadowMapTable(8)
        table.record(2, 4)
        table.record(2, 5)
        assert table.logical_id(2) == 5
