"""Experiment-service trace layer: sharing policy, disk store, equality.

The satellite property for PR 4: trace-replayed grids equal live-core
grids ``==`` across workloads x configurations x depths x both
speculation modes — plus the store-robustness rules (fingerprint-keyed
staleness, corrupt files recompute, atomic writes).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.plan import ExperimentPoint, plan_from_points
from repro.experiments.runner import execute_point
from repro.experiments.scheduler import run_plan
from repro.experiments.tracing import (
    SharedTraces,
    TraceStore,
    default_trace_dir,
    load_or_record,
    trace_key,
    trace_mode,
)
from repro.pipeline.trace import record_trace
from repro.workloads.registry import get_program

SCALE = 0.02
WARMUP = 200


def point(benchmark="m88ksim", configuration="baseline", depth=20,
          seed=1, speculation="redirect"):
    return ExperimentPoint(benchmark, configuration, depth, scale=SCALE,
                           warmup=WARMUP, seed=seed,
                           speculation=speculation).resolve()


class TestKnobs:
    def test_trace_mode_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_mode() == "memory"
        for off in ("0", "false", "no", "off", "OFF"):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert trace_mode() == "off"
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_mode() == "memory"
        monkeypatch.setenv("REPRO_TRACE", "disk")
        assert trace_mode() == "disk"

    def test_default_trace_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        assert default_trace_dir() == tmp_path

    def test_trace_key_covers_workload_identity(self):
        base = trace_key("m88ksim", SCALE, 1)
        assert trace_key("m88ksim", SCALE, 1) == base  # stable
        assert trace_key("compress", SCALE, 1) != base
        assert trace_key("m88ksim", SCALE * 2, 1) != base
        assert trace_key("m88ksim", SCALE, 2) != base
        assert trace_key("m88ksim", SCALE, 1, max_instructions=10) != base

    def test_trace_key_tracks_source_fingerprint(self, monkeypatch):
        """Editing the simulator strands stale traces, like stale results."""
        import repro.experiments.tracing as tracing_module

        before = trace_key("m88ksim", SCALE, 1)
        monkeypatch.setattr(tracing_module, "code_fingerprint",
                            lambda: "deadbeef")
        assert trace_key("m88ksim", SCALE, 1) != before


class TestTraceStore:
    def test_put_get_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        program = get_program("m88ksim", scale=SCALE, seed=1)
        trace = record_trace(program)
        key = trace_key("m88ksim", SCALE, 1)
        assert store.get(key) is None and store.misses == 1
        store.put(key, trace)
        assert key in store and len(store) == 1
        loaded = store.get(key)
        assert loaded is not None and store.hits == 1
        assert loaded.pcs == trace.pcs and loaded.halted == trace.halted

    def test_corrupt_entry_is_a_miss_and_rerecorded(self, tmp_path):
        store = TraceStore(tmp_path)
        key = trace_key("m88ksim", SCALE, 1)
        store.directory.mkdir(parents=True, exist_ok=True)
        (store.directory / f"{key}.trace").write_bytes(b"garbage")
        assert store.get(key) is None
        trace = load_or_record("m88ksim", SCALE, 1, store=store)
        assert trace.length > 0
        assert store.get(key) is not None  # overwritten with a good one

    def test_stale_trace_under_colliding_key_is_rerecorded(self, tmp_path):
        """A trace of the wrong program under a key (hand-copied file)
        fails validation and is recomputed, not replayed."""
        store = TraceStore(tmp_path)
        key = trace_key("m88ksim", SCALE, 1)
        store.put(key, record_trace(get_program("compress", scale=SCALE,
                                                seed=1)))
        trace = load_or_record("m88ksim", SCALE, 1, store=store)
        assert trace.program_name == get_program(
            "m88ksim", scale=SCALE, seed=1).name
        assert store.get(key).program_name == trace.program_name

    def test_malformed_key_rejected(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(ValueError):
            store.get("../escape")

    def test_clear_removes_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(trace_key("m88ksim", SCALE, 1),
                  record_trace(get_program("m88ksim", scale=SCALE, seed=1)))
        assert store.clear() == 1
        assert len(store) == 0


class TestSharedTraces:
    def test_wrongpath_points_stay_live(self):
        points = [point(speculation="wrongpath") for _ in range(3)]
        traces = SharedTraces(points)
        assert all(traces.get(p) is None for p in points)

    def test_single_redirect_point_stays_live_in_memory_mode(self,
                                                             monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        single = point()
        traces = SharedTraces([single])
        assert traces.get(single) is None  # nothing to amortize against

    def test_shared_workload_records_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        points = [point(configuration=c) for c in ("baseline", "current")]
        traces = SharedTraces(points)
        first = traces.get(points[0])
        second = traces.get(points[1])
        assert first is not None and first is second  # one recording

    def test_off_mode_disables_sharing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        points = [point(configuration=c) for c in ("baseline", "current")]
        traces = SharedTraces(points)
        assert traces.get(points[0]) is None

    def test_pool_drops_trace_after_last_consumer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        points = [point(configuration=c) for c in ("baseline", "current")]
        traces = SharedTraces(points)
        traces.get(points[0])
        assert traces._traces  # held for the remaining consumer
        traces.get(points[1])
        assert not traces._traces  # released: bounded memory


class TestExecutePointTraceArgument:
    def test_invalid_trace_values_rejected_clearly(self):
        with pytest.raises(TypeError, match="CommittedTrace"):
            execute_point(point(), trace=True)
        with pytest.raises(TypeError, match="CommittedTrace"):
            execute_point(point(), trace="yes")

    def test_explicit_trace_and_force_live_agree(self):
        program = get_program("m88ksim", scale=SCALE, seed=1)
        trace = record_trace(program)
        assert (execute_point(point(), trace=trace)
                == execute_point(point(), trace=False))


class TestDiskMode:
    def test_cold_single_point_records_then_replays(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE", "0")
        live = execute_point(point())
        monkeypatch.setenv("REPRO_TRACE", "disk")
        cold = execute_point(point())       # records into the store
        store = TraceStore(tmp_path)
        assert len(store) == 1
        warm = execute_point(point())       # replays from the store
        assert cold == live == warm

    def test_disk_mode_key_isolation_by_seed(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE", "disk")
        execute_point(point(seed=1))
        execute_point(point(seed=2))
        assert len(TraceStore(tmp_path)) == 2


class TestGridEquality:
    """The PR 4 satellite property: trace-replayed == live-core grids."""

    @settings(max_examples=5, deadline=None)
    @given(
        benchmarks=st.lists(st.sampled_from(["m88ksim", "li", "compress"]),
                            min_size=1, max_size=2, unique=True),
        configurations=st.lists(
            st.sampled_from(["baseline", "current", "load back", "perfect"]),
            min_size=1, max_size=2, unique=True),
        depths=st.lists(st.sampled_from([20, 40, 60]), min_size=1,
                        max_size=2, unique=True),
        speculation=st.sampled_from(["redirect", "wrongpath"]),
        seed=st.integers(1, 2),
    )
    def test_trace_replayed_grids_equal_live_grids(
            self, benchmarks, configurations, depths, speculation, seed):
        plan = plan_from_points([
            ExperimentPoint(benchmark, configuration, depth, scale=0.01,
                            warmup=50, seed=seed, speculation=speculation)
            for benchmark in benchmarks
            for configuration in configurations
            for depth in depths
        ])
        previous = os.environ.get("REPRO_TRACE")
        try:
            os.environ["REPRO_TRACE"] = "0"
            live = run_plan(plan, jobs=1, use_cache=False)
            os.environ["REPRO_TRACE"] = "1"
            traced_serial = run_plan(plan, jobs=1, use_cache=False)
            traced_batched = run_plan(plan, jobs=2, use_cache=False,
                                      batch=True)
        finally:
            if previous is None:
                os.environ.pop("REPRO_TRACE", None)
            else:
                os.environ["REPRO_TRACE"] = previous
        assert traced_serial == live
        assert traced_batched == live

    def test_mixed_speculation_grid_shares_only_redirect(self, monkeypatch):
        """wrongpath points in a traced grid still run live and still
        agree with an untraced run."""
        pts = [point(configuration="baseline"),
               point(configuration="current"),
               point(speculation="wrongpath"),
               point(configuration="current", speculation="wrongpath")]
        plan = plan_from_points(pts)
        monkeypatch.setenv("REPRO_TRACE", "1")
        traced = run_plan(plan, jobs=1, use_cache=False)
        monkeypatch.setenv("REPRO_TRACE", "0")
        live = run_plan(plan, jobs=1, use_cache=False)
        assert traced == live
