"""Experiment harness tests (small scale — structure, not paper numbers)."""

import pytest

from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.report import (
    arithmetic_mean,
    format_table,
    geometric_mean,
)
from repro.experiments.runner import (
    CONFIGURATIONS,
    ExperimentPoint,
    run_point,
    run_suite,
)
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    storage_summary,
)

SMALL = dict(scale=0.05, warmup=500)


class TestRunner:
    def test_run_point_baseline(self):
        result = run_point(ExperimentPoint("li", "baseline", 20), **SMALL)
        assert result.configuration == "baseline"
        assert result.pipeline_depth == 20
        assert result.instructions > 0

    def test_run_point_arvi_modes(self):
        for configuration in ("current", "load back", "perfect"):
            result = run_point(
                ExperimentPoint("vortex", configuration, 20), **SMALL)
            assert result.arvi_lookups > 0

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            run_point(ExperimentPoint("li", "magic", 20), **SMALL)

    def test_run_suite_grid(self):
        results = run_suite(configurations=("baseline", "current"),
                            depths=(20,), benchmarks=("li", "vortex"),
                            **SMALL)
        assert len(results) == 4
        assert ("li", "current", 20) in results


class TestFigure5:
    def test_structure(self):
        data = run_figure5(depths=(20,), benchmarks=("li", "vortex"),
                           **SMALL)
        assert ("li", 20) in data.load_rates
        assert 0 <= data.load_rates[("li", 20)] <= 1
        assert 0 <= data.calc_accuracy["li"] <= 1

    def test_render_contains_benchmarks(self):
        data = run_figure5(depths=(20,), benchmarks=("li", "vortex"),
                           **SMALL)
        # Rendering requires all benchmarks; restrict to the two we ran.
        rows = [[bench, data.load_accuracy[bench],
                 data.calc_accuracy[bench]]
                for bench in ("li", "vortex")]
        text = format_table(["benchmark", "load", "calc"], rows)
        assert "li" in text and "vortex" in text


class TestFigure6:
    def test_structure_and_normalization(self):
        data = run_figure6(20, benchmarks=("li",), **SMALL)
        assert data.normalized_ipc("li", "baseline") == pytest.approx(1.0)
        for configuration in CONFIGURATIONS:
            assert data.accuracy("li", configuration) > 0.3
        assert data.mean_normalized_ipc("current") > 0.3

    def test_render(self):
        data = run_figure6(20, benchmarks=("li",), **SMALL)
        text = data.render()
        assert "prediction accuracy" in text
        assert "normalized IPC" in text
        assert "average" in text


class TestTables:
    def test_table1_lists_access_steps(self):
        text = render_table1()
        assert "RSE" in text and "BVIT" in text

    def test_table2_has_machine_parameters(self):
        text = render_table2()
        assert "ROB entries" in text and "256" in text

    def test_table3_lists_benchmarks(self):
        text = render_table3()
        for name in ("gcc", "compress", "m88ksim", "vortex"):
            assert name in text

    def test_table4_latencies(self):
        text = render_table4()
        assert "Level-2 ARVI" in text and "18" in text

    def test_storage_summary_includes_paper_sizing(self):
        text = storage_summary()
        assert "5760 bits" in text
        assert "792 bits" in text


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0
