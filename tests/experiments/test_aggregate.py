"""The streaming aggregation tier (ISSUE 10 / DESIGN.md §14).

Three layers of guarantees:

* aggregator semantics — copy-on-write snapshots (a held snapshot never
  mutates), monotone versions, duplicate deliveries deduped on the
  canonical cell id, delta subscribers can reconstruct every version;
* order independence — the hypothesis property: *any* permutation of
  the same event multiset (ticks, results, duplicates, the plan event)
  converges to a byte-identical final snapshot, status view included;
* the view-identity invariant — a live-attached aggregator's identity
  views equal :func:`~repro.experiments.aggregate.build_views` run
  post-hoc over the finished results, byte for byte, across
  serial/local/queue backends, under seeded chaos schedules, and
  across interrupted / SIGKILLed runs resumed from their
  ``REPRO_MANIFEST``.
"""

import os
import pathlib
import subprocess
import sys
import time
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.aggregate import (
    ALL_VIEWS,
    IDENTITY_VIEWS,
    ViewAggregator,
    build_views,
    canonical_json,
    identity_json,
    views_from_env,
)
from repro.experiments.backends import QueueBackend
from repro.experiments.broker import QueueError
from repro.experiments.plan import build_plan, point_key
from repro.experiments.scheduler import run_plan, serve_requested
from repro.faults.manifest import plan_hash
from repro.faults.policy import PointTimeout, RetriesExhausted

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

PLAN_KW = dict(configurations=("baseline", "current"), depths=(20, 40),
               benchmarks=("li",), scale=0.01, warmup=50)


def small_plan():
    return build_plan(**PLAN_KW)


def subprocess_env(**extra):
    env = {**os.environ, "PYTHONPATH": "src" + os.pathsep
           + os.environ.get("PYTHONPATH", "")}
    env.update(extra)
    return env


def queue_backend(**overrides):
    kw = dict(workers=2, lease_timeout=10.0, poll=0.01, timeout=180.0)
    kw.update(overrides)
    return QueueBackend(**kw)


@pytest.fixture(scope="module")
def serial_results():
    return run_plan(small_plan(), jobs=1, use_cache=False,
                    backend="serial")


def live_aggregate(**run_kw):
    """run_plan with a live sink; returns (aggregator, results)."""
    aggregator = ViewAggregator()
    results = run_plan(small_plan(), use_cache=False, sink=aggregator,
                       **run_kw)
    aggregator.mark_done()
    return aggregator, results


# -- view selection -----------------------------------------------------------


class TestViewSelection:
    def test_views_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_VIEWS", raising=False)
        assert views_from_env() is None
        monkeypatch.setenv("REPRO_VIEWS", "all")
        assert views_from_env() is None
        monkeypatch.setenv("REPRO_VIEWS", "figure5, status")
        assert views_from_env() == ("figure5", "status")
        monkeypatch.setenv("REPRO_VIEWS", "figure5,typo")
        with pytest.raises(ValueError, match="typo"):
            views_from_env()

    def test_unknown_view_rejected(self):
        with pytest.raises(ValueError, match="nope"):
            ViewAggregator(views=("figure5", "nope"))

    def test_subset_builds_only_selected(self, serial_results):
        aggregator = ViewAggregator(views=("figure6",))
        for point, result in serial_results.items():
            aggregator.on_result(point, None, result, source="serial")
        aggregator.mark_done()
        assert set(aggregator.snapshot().views) == {"figure6"}

    def test_identity_excludes_status(self):
        assert "status" not in IDENTITY_VIEWS
        assert set(ALL_VIEWS) == set(IDENTITY_VIEWS) | {"status"}

    def test_serve_requested_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE", raising=False)
        assert serve_requested() is False
        for off in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_SERVE", off)
            assert serve_requested() is False
        monkeypatch.setenv("REPRO_SERVE", "1")
        assert serve_requested() is True


# -- aggregator semantics -----------------------------------------------------


class TestAggregatorSemantics:
    def test_duplicates_deduped_first_wins(self, serial_results):
        aggregator = ViewAggregator()
        (point, result), *rest = serial_results.items()
        aggregator.on_result(point, None, result, source="queue")
        version = aggregator.snapshot().version
        aggregator.on_result(point, None, result, source="queue")
        assert aggregator.duplicates == 1
        assert aggregator.snapshot().version == version  # no-op, no bump
        status = aggregator.snapshot().views["status"]
        assert status["done"] == 1
        assert status["sources"] == {"queue": 1}

    def test_snapshots_are_copy_on_write(self, serial_results):
        aggregator = ViewAggregator()
        items = iter(serial_results.items())
        point, result = next(items)
        aggregator.on_result(point, None, result, source="serial")
        held = aggregator.snapshot()
        held_bytes = held.to_json()
        point, result = next(items)
        aggregator.on_result(point, None, result, source="serial")
        assert held.to_json() == held_bytes          # held snapshot frozen
        assert aggregator.snapshot().version > held.version

    def test_deltas_reconstruct_every_version(self, serial_results):
        """The SSE contract: snapshot v + replace-changed-views per
        delta == snapshot v+n, for every published version."""
        aggregator = ViewAggregator()
        deltas = []
        aggregator.subscribe(deltas.append)
        base = dict(aggregator.snapshot().views)
        version = aggregator.snapshot().version
        aggregator.on_plan(small_plan(), {})
        for point, result in serial_results.items():
            aggregator.on_progress(SimpleNamespace(
                phase="point", key=point_key(point)))
            aggregator.on_result(point, None, result, source="serial")
        aggregator.mark_done()
        reconstructed = base
        for delta in deltas:
            assert delta["version"] == version + 1   # no gaps
            version = delta["version"]
            assert set(delta["views"]) == set(delta["changed"])
            reconstructed.update(delta["views"])
        final = aggregator.snapshot()
        assert version == final.version
        assert deltas[-1]["done"] is True
        assert canonical_json(reconstructed) == canonical_json(
            dict(final.views))

    def test_unsubscribe_stops_deltas(self, serial_results):
        aggregator = ViewAggregator()
        deltas = []
        unsubscribe = aggregator.subscribe(deltas.append)
        (point, result), *_ = serial_results.items()
        aggregator.on_result(point, None, result, source="serial")
        unsubscribe()
        aggregator.mark_done()
        assert len(deltas) == 1

    def test_failures_surface_in_status(self):
        aggregator = ViewAggregator()
        aggregator.on_failure(None, None, RuntimeError("batch lost"))
        status = aggregator.snapshot().views["status"]
        assert status["failed"] == 1
        assert status["failures"][0]["error"] \
            == "RuntimeError: batch lost"
        assert status["failures"][0]["point"] is None

    def test_status_meta_rollups(self, serial_results):
        aggregator = ViewAggregator()
        for point, result in serial_results.items():
            aggregator.on_result(point, None, result, source="serial",
                                 meta={"trace_source": "local",
                                       "kernel_source": "kernel",
                                       "phase_seconds": {"replay": 0.25}})
        status = aggregator.snapshot().views["status"]
        assert status["trace_sources"] == {"local": len(serial_results)}
        assert status["kernel_sources"] == {"kernel": len(serial_results)}
        assert status["phase_seconds"] == {
            "replay": round(0.25 * len(serial_results), 6)}


# -- order independence -------------------------------------------------------


class TestPermutationProperty:
    """Any interleaving of the same event multiset — ticks before or
    after their results, duplicate ticks, duplicate deliveries, the
    plan event anywhere — converges to a byte-identical final
    snapshot, the live ``status`` view included."""

    @staticmethod
    def event_multiset(serial_results):
        events = [("plan",)]
        for point, result in serial_results.items():
            events.append(("tick", point_key(point)))
            events.append(("result", point, result))
        first_point, first_result = next(iter(serial_results.items()))
        events.append(("tick", point_key(first_point)))      # duplicate tick
        events.append(("result", first_point, first_result))  # redelivery
        return events

    @staticmethod
    def apply(events):
        aggregator = ViewAggregator()
        for event in events:
            if event[0] == "plan":
                aggregator.on_plan(small_plan(), {})
            elif event[0] == "tick":
                aggregator.on_progress(SimpleNamespace(
                    phase="point", key=event[1]))
            else:
                aggregator.on_result(event[1], None, event[2],
                                     source="worker",
                                     meta={"trace_source": "local",
                                           "kernel_source": "kernel"})
        aggregator.mark_done()
        return aggregator.snapshot()

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_any_interleaving_converges(self, data, serial_results):
        events = self.event_multiset(serial_results)
        reference = self.apply(events).to_json()
        shuffled = data.draw(st.permutations(events))
        assert self.apply(shuffled).to_json() == reference


# -- the view-identity invariant ---------------------------------------------


class TestLiveEqualsPosthoc:
    def check(self, aggregator, results, serial_results):
        snapshot = aggregator.snapshot()
        assert results == serial_results             # standing invariant
        assert identity_json(snapshot) \
            == identity_json(build_views(results))
        assert snapshot.done
        assert snapshot.views["status"]["done"] == len(serial_results)
        assert snapshot.views["status"]["failed"] == 0

    def test_serial(self, serial_results):
        aggregator, results = live_aggregate(jobs=1, backend="serial")
        self.check(aggregator, results, serial_results)

    def test_serial_unbatched(self, serial_results):
        aggregator, results = live_aggregate(jobs=1, backend="serial",
                                             batch=False)
        self.check(aggregator, results, serial_results)

    def test_local_pool(self, serial_results):
        aggregator, results = live_aggregate(jobs=2, backend="local")
        self.check(aggregator, results, serial_results)

    def test_queue(self, serial_results):
        aggregator, results = live_aggregate(jobs=2,
                                             backend=queue_backend())
        self.check(aggregator, results, serial_results)

    def test_cache_replay(self, serial_results, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path)
        run_plan(small_plan(), jobs=1, backend="serial", cache=cache)
        aggregator = ViewAggregator()
        results = run_plan(small_plan(), jobs=1, backend="serial",
                           cache=cache, sink=aggregator)
        aggregator.mark_done()
        self.check(aggregator, results, serial_results)
        assert aggregator.snapshot().views["status"]["sources"] \
            == {"cache": len(serial_results)}

    @settings(max_examples=2, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           profile=st.sampled_from(["io", "stall", "crash"]))
    def test_under_chaos(self, seed, profile, serial_results):
        """Chaos extension of the invariant: when a faulted queue grid
        completes at all, its live views are byte-identical to the
        post-hoc build (typed failure is the only other outcome)."""
        previous = os.environ.get("REPRO_FAULTS")
        os.environ["REPRO_FAULTS"] = f"{seed}:{profile}"
        try:
            aggregator = ViewAggregator()
            backend = QueueBackend(workers=2, lease_timeout=0.8,
                                   poll=0.02, timeout=240.0,
                                   max_attempts=4)
            try:
                results = run_plan(small_plan(), jobs=2, use_cache=False,
                                   backend=backend, sink=aggregator)
            except (QueueError, RetriesExhausted, PointTimeout) as exc:
                assert "timed out" not in str(exc)
            else:
                aggregator.mark_done()
                self.check(aggregator, results, serial_results)
        finally:
            if previous is None:
                os.environ.pop("REPRO_FAULTS", None)
            else:
                os.environ["REPRO_FAULTS"] = previous

    def test_interrupted_run_resumes_identical(self, tmp_path,
                                               serial_results):
        """Kill a grid after two points; the resumed run's live views
        (fed by manifest replays + fresh computes) equal the post-hoc
        build over the full results."""
        seen = []

        def die_after_two(event):
            if event.phase != "point":
                return
            seen.append(event)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_plan(small_plan(), jobs=1, use_cache=False,
                     backend="serial", manifest=tmp_path,
                     progress=die_after_two, sink=ViewAggregator())
        aggregator = ViewAggregator()
        resumed = run_plan(small_plan(), jobs=1, use_cache=False,
                           backend="serial", manifest=tmp_path,
                           sink=aggregator)
        aggregator.mark_done()
        self.check(aggregator, resumed, serial_results)
        sources = aggregator.snapshot().views["status"]["sources"]
        assert sources.get("manifest") == 2

    def test_sigkilled_run_resumes_identical(self, tmp_path,
                                             serial_results):
        """The real crash: SIGKILL a separate grid process mid-run,
        resume with a live aggregator attached, and the final views
        are still byte-identical to post-hoc."""
        script = (
            "import sys\n"
            "from repro.experiments.plan import build_plan\n"
            "from repro.experiments.scheduler import run_plan\n"
            f"plan = build_plan(**{PLAN_KW!r})\n"
            "run_plan(plan, jobs=1, use_cache=False, backend='serial',\n"
            "         manifest=sys.argv[1])\n")
        keys = [point_key(point) for point in small_plan()]
        manifest_path = tmp_path / f"{plan_hash(keys)[:32]}.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            env=subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while True:
                if manifest_path.is_file():
                    text = manifest_path.read_text()
                    if text.count("\n") >= 2:
                        break
                if proc.poll() is not None:
                    break
                assert time.monotonic() < deadline, "grid never progressed"
                time.sleep(0.005)
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        aggregator = ViewAggregator()
        resumed = run_plan(small_plan(), jobs=1, use_cache=False,
                           backend="serial", manifest=tmp_path,
                           sink=aggregator)
        aggregator.mark_done()
        self.check(aggregator, resumed, serial_results)
