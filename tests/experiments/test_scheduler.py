"""Scheduler layer: serial/parallel/cached execution paths agree.

The acceptance grid for the experiment service: a 2-benchmark x 4-config
x 2-depth sweep must produce identical keyed results under
``REPRO_JOBS=1``, ``REPRO_JOBS=4`` and a cached re-run — and the cached
replay must be at least 10x faster than the cold run.  The hypothesis
property extends the equality invariant across every execution backend:
batched, unbatched-parallel, serial, queue-worker and cache-replayed
grids are ``==`` in both speculation modes (the queue fault machinery
has its own suite in ``test_backends.py``).
"""

import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.backends import QueueBackend
from repro.experiments.cache import ResultCache
from repro.experiments.plan import (
    ExperimentPoint,
    build_plan,
    plan_from_points,
    point_key,
)
from repro.experiments.runner import run_suite
from repro.experiments.scheduler import (
    _make_batches,
    default_batching,
    default_jobs,
    run_plan,
    run_points,
)

GRID = dict(configurations=("baseline", "current", "load back", "perfect"),
            depths=(20, 40), benchmarks=("li", "vortex"),
            scale=0.02, warmup=200)


class TestPlan:
    def test_grid_expansion_order_and_size(self):
        plan = build_plan(GRID["configurations"], GRID["depths"],
                          GRID["benchmarks"], scale=GRID["scale"],
                          warmup=GRID["warmup"])
        assert len(plan) == 2 * 4 * 2
        first = plan.points[0]
        assert first.grid_key == ("li", "baseline", 20)
        # Every point is fully resolved.
        assert all(p.scale == 0.02 and p.warmup == 200 for p in plan)

    def test_deduplication(self):
        point = ExperimentPoint("li", "current", 20, scale=0.02, warmup=200)
        plan = plan_from_points([point, point, point])
        assert len(plan) == 1

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            plan_from_points([ExperimentPoint("li", "magic", 20)])

    def test_execute_point_rejects_unresolved_points(self):
        from repro.experiments.runner import execute_point

        with pytest.raises(ValueError, match="resolve"):
            execute_point(ExperimentPoint("li", "current", 20))


class TestSchedulerEquivalence:
    @pytest.fixture(scope="class")
    def acceptance(self, tmp_path_factory):
        """Cold serial run (populating a fresh cache), then parallel and
        cached re-runs of the same grid, driven through ``REPRO_JOBS``."""
        cache_dir = tmp_path_factory.mktemp("cache")
        with pytest.MonkeyPatch.context() as env:
            env.setenv("REPRO_JOBS", "1")
            t0 = time.perf_counter()
            serial = run_suite(cache=ResultCache(cache_dir / "serial"),
                               **GRID)
            cold_seconds = time.perf_counter() - t0

            env.setenv("REPRO_JOBS", "4")
            parallel = run_suite(cache=ResultCache(cache_dir / "parallel"),
                                 **GRID)

            env.setenv("REPRO_JOBS", "1")
            warm_store = ResultCache(cache_dir / "warm")
            run_suite(cache=warm_store, **GRID)
            t0 = time.perf_counter()
            cached = run_suite(cache=warm_store, **GRID)
            warm_seconds = time.perf_counter() - t0

        return dict(serial=serial, parallel=parallel, cached=cached,
                    cold_seconds=cold_seconds, warm_seconds=warm_seconds,
                    warm_store=warm_store)

    def test_grid_is_fully_keyed(self, acceptance):
        serial = acceptance["serial"]
        assert len(serial) == 16
        assert ("vortex", "perfect", 40) in serial

    def test_parallel_matches_serial(self, acceptance):
        assert acceptance["parallel"] == acceptance["serial"]

    def test_cached_replay_matches_serial(self, acceptance):
        assert acceptance["cached"] == acceptance["serial"]
        assert acceptance["warm_store"].hits >= 16

    def test_cached_replay_is_10x_faster(self, acceptance):
        assert acceptance["warm_seconds"] * 10 <= acceptance["cold_seconds"], (
            f"cached replay took {acceptance['warm_seconds']:.3f}s vs "
            f"cold {acceptance['cold_seconds']:.3f}s")


class TestSchedulerBehaviour:
    def test_progress_events_stream(self, tmp_path):
        events = []
        run_suite(configurations=("baseline",), depths=(20,),
                  benchmarks=("li",), scale=0.02, warmup=200, jobs=1,
                  cache=ResultCache(tmp_path), progress=events.append)
        assert [e.source for e in events] == ["serial"]
        assert events[0].completed == events[0].total == 1
        # Second run replays from cache and says so.
        events.clear()
        run_suite(configurations=("baseline",), depths=(20,),
                  benchmarks=("li",), scale=0.02, warmup=200, jobs=1,
                  cache=ResultCache(tmp_path), progress=events.append)
        assert [e.source for e in events] == ["cache"]

    def test_progress_ticks_per_point_in_batched_grids(self):
        """The satellite fix: batched workers tick the callback once per
        completed point (carrying their batch id), not once per batch —
        large batched grids must not look stalled."""
        plan = build_plan(("baseline", "current", "load back", "perfect"),
                          (20, 40), ("li",), scale=0.01, warmup=50)
        events = []
        results = run_plan(plan, jobs=2, use_cache=False, batch=True,
                           progress=events.append)
        point_events = [e for e in events if e.phase == "point"]
        lower_events = [e for e in events if e.phase == "lower"]
        assert len(point_events) + len(lower_events) == len(events)
        assert len(results) == len(plan)
        assert len(point_events) == len(plan)    # one event per point
        assert all(e.source == "worker" for e in events)
        assert all(e.batch_id is not None for e in events)
        assert len({e.batch_id for e in events}) >= 2  # several batches
        # Monotone completion counter in emission order, ending complete.
        assert [e.completed for e in point_events] == list(
            range(1, len(plan) + 1))
        assert all(e.total == len(plan) for e in events)
        assert all(e.batch_size >= 1 for e in events)
        # Every point is reported exactly once.
        assert {e.point for e in point_events} == set(plan)
        # Kernel trace-lowering is its own phase (at most one per batch)
        # and never advances the completed counter.
        assert len(lower_events) <= len({e.batch_id for e in events})

    def test_use_cache_false_recomputes(self, tmp_path):
        store = ResultCache(tmp_path)
        kw = dict(configurations=("baseline",), depths=(20,),
                  benchmarks=("li",), scale=0.02, warmup=200, jobs=1)
        first = run_suite(cache=store, **kw)
        store_hits_before = store.hits
        second = run_suite(use_cache=False, **kw)
        assert second == first
        assert store.hits == store_hits_before  # store untouched

    def test_parallel_pool_path(self, tmp_path):
        """Exercise the ProcessPoolExecutor branch with >1 pending point."""
        plan = build_plan(("baseline", "current"), (20,), ("li",),
                          scale=0.02, warmup=200)
        parallel = run_plan(plan, jobs=2, cache=None, use_cache=False)
        serial = run_plan(plan, jobs=1, cache=None, use_cache=False)
        assert parallel == serial

    def test_failed_point_does_not_discard_sibling_results(self, tmp_path):
        """One bad point must not throw away its siblings' completed
        work: they still land in the cache so a retry after the fix only
        recomputes the failed point."""
        store = ResultCache(tmp_path)
        good = [ExperimentPoint("li", "baseline", 20, scale=0.02,
                                warmup=200),
                ExperimentPoint("vortex", "baseline", 20, scale=0.02,
                                warmup=200)]
        bad = ExperimentPoint("no-such-benchmark", "baseline", 20,
                              scale=0.02, warmup=200)
        with pytest.raises(Exception):
            run_points([good[0], bad, good[1]], jobs=2, cache=store)
        assert all(point_key(p) in store for p in good)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_jobs() >= 1
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1

    def test_default_batching_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert default_batching() is True
        for off in ("0", "false", "no", "off", "FALSE"):
            monkeypatch.setenv("REPRO_BATCH", off)
            assert default_batching() is False
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert default_batching() is True


class TestBatching:
    """In-worker point batching (ROADMAP item closed by PR 3)."""

    @given(
        groups=st.lists(
            st.tuples(st.sampled_from(["li", "vortex", "compress", "gcc"]),
                      st.sampled_from([0.01, 0.02]),
                      st.integers(1, 3),
                      st.integers(1, 9)),
            min_size=1, max_size=6, unique_by=lambda g: g[:3]),
        jobs=st.integers(1, 8),
    )
    def test_make_batches_partitions_benchmark_pure(self, groups, jobs):
        """Batches partition the pending list, never mix workloads, and
        produce enough chunks to keep every worker busy."""
        pending = [
            ExperimentPoint(benchmark, "baseline", 20, scale=scale,
                            warmup=100, seed=seed)
            for benchmark, scale, seed, count in groups
            for _ in range(count)
        ]
        batches = _make_batches(pending, jobs)
        assert all(batch for batch in batches)
        # Benchmark-pure: one workload identity per batch.
        for batch in batches:
            identities = {(p.benchmark, p.scale, p.seed) for p in batch}
            assert len(identities) == 1
        # Partition: flattening restores the pending multiset, and the
        # per-identity order is preserved.
        flattened = [point for batch in batches for point in batch]
        assert sorted(map(id, flattened)) == sorted(map(id, pending))
        for key in {(p.benchmark, p.scale, p.seed) for p in pending}:
            assert ([p for p in flattened
                     if (p.benchmark, p.scale, p.seed) == key]
                    == [p for p in pending
                        if (p.benchmark, p.scale, p.seed) == key])
        # Enough parallelism: at least min(jobs, len(pending)) batches.
        assert len(batches) >= min(jobs, len({g[:3] for g in groups}))
        assert len(batches) <= len(pending)

    @settings(max_examples=3, deadline=None)
    @given(
        benchmarks=st.lists(st.sampled_from(["li", "compress"]),
                            min_size=1, max_size=2, unique=True),
        configurations=st.lists(
            st.sampled_from(["baseline", "current", "perfect"]),
            min_size=1, max_size=2, unique=True),
        depths=st.lists(st.sampled_from([20, 40]), min_size=1, max_size=2,
                        unique=True),
        seed=st.integers(1, 2),
        speculation=st.sampled_from(["redirect", "wrongpath"]),
    )
    def test_all_backends_and_cache_replay_are_equal(
            self, benchmarks, configurations, depths, seed, speculation):
        """The cross-backend differential property: serial, local-pool
        (batched and unbatched), queue-worker and cache-replayed
        execution return ``==`` results, in both speculation modes."""
        plan = plan_from_points([
            ExperimentPoint(benchmark, configuration, depth, scale=0.01,
                            warmup=50, seed=seed, speculation=speculation)
            for benchmark in benchmarks
            for configuration in configurations
            for depth in depths
        ])
        serial = run_plan(plan, jobs=1, use_cache=False)
        batched = run_plan(plan, jobs=2, use_cache=False, batch=True)
        unbatched = run_plan(plan, jobs=2, use_cache=False, batch=False)
        assert batched == serial
        assert unbatched == serial
        queued = run_plan(
            plan, jobs=2, use_cache=False,
            backend=QueueBackend(workers=2, lease_timeout=10.0, poll=0.01,
                                 timeout=180.0))
        assert queued == serial
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultCache(tmp)
            for point, result in serial.items():
                store.put(point_key(point), result)
            replayed = run_plan(plan, jobs=1, cache=store)
            assert replayed == serial
            assert store.hits >= len(plan)
