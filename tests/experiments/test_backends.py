"""Execution backends: selection, the broker state machine, queue faults.

Three layers of guarantees (ISSUE 5 / DESIGN.md §9):

* backend selection — ``REPRO_BACKEND`` / ``backend=`` pick serial,
  local-pool or queue execution without changing results or keys;
* the lease/retry state machine of :class:`FileBroker` — exercised
  in-process, deterministically, without worker subprocesses;
* fault injection end to end — a killed worker, an expired lease and a
  corrupted result payload must never corrupt, duplicate or silently
  drop a grid point, and progress events must stay consistent across
  batch retries (the double-tick fix).
"""

import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.backends import (
    QueueBackend,
    SerialBackend,
    _tail_worker_logs,
    default_backend_name,
    resolve_backend,
)
from repro.experiments.broker import (
    FileBroker,
    MessageError,
    QueueError,
    RemotePointError,
    decode_message,
    encode_message,
)
from repro.experiments.cache import ResultCache
from repro.experiments.plan import ExperimentPoint, build_plan, point_key
from repro.experiments.scheduler import run_plan, run_points

PLAN_KW = dict(configurations=("baseline", "current"), depths=(20, 40),
               benchmarks=("li",), scale=0.01, warmup=50)


def small_plan():
    return build_plan(**PLAN_KW)


def queue_backend(**overrides):
    """A QueueBackend sized for tests: fast polls, hard timeout."""
    kw = dict(workers=2, lease_timeout=10.0, poll=0.01, timeout=180.0)
    kw.update(overrides)
    return QueueBackend(**kw)


class TestBackendSelection:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() is None
        for name in ("serial", "local", "queue"):
            monkeypatch.setenv("REPRO_BACKEND", name)
            assert default_backend_name() == name
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert default_backend_name() is None
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            default_backend_name()

    def test_auto_matches_historical_behaviour(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None, jobs=1, pending=9).name == "serial"
        assert resolve_backend(None, jobs=4, pending=1).name == "serial"
        assert resolve_backend(None, jobs=4, pending=9).name == "local"

    def test_instance_passthrough_and_bad_names(self):
        backend = SerialBackend()
        assert resolve_backend(backend, jobs=4, pending=9) is backend
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("hadoop", jobs=4, pending=9)
        with pytest.raises(TypeError):
            resolve_backend(42, jobs=4, pending=9)

    def test_explicit_serial_overrides_jobs(self):
        """backend="serial" must not shard even with many workers."""
        events = []
        run_plan(small_plan(), jobs=4, use_cache=False, backend="serial",
                 progress=events.append)
        assert events and all(e.source == "serial" for e in events)

    def test_env_backend_drives_run_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        events = []
        run_plan(small_plan(), jobs=4, use_cache=False,
                 progress=events.append)
        assert events and all(e.source == "serial" for e in events)


class TestProgressRetryConsistency:
    def test_replayed_ticks_from_a_retried_batch_are_deduped(self):
        """The double-tick fix, isolated from queue timing: a backend
        whose batch is retried re-reports ticks for points that already
        streamed; the callback must still see one event per point, a
        monotone completed counter and stable batch metadata."""
        from repro.experiments.backends import ExecutionBackend, _compute_batch

        class RetriedBatchBackend(ExecutionBackend):
            name = "retried"
            source = "queue"

            def execute(self, batches, report, *, jobs):
                for batch_id, group in batches.items():
                    entries = _compute_batch(group)
                    # Attempt 1 completed two points, then "crashed".
                    for index in range(min(2, len(group))):
                        report.tick(batch_id, index)
                    # Attempt 2 re-runs the whole batch from the start.
                    for index, (status, payload, _meta) in enumerate(entries):
                        report.tick(batch_id, index)
                        report.deliver(batch_id, index, payload)

        events = []
        plan = small_plan()
        results = run_plan(plan, jobs=2, use_cache=False,
                           backend=RetriedBatchBackend(),
                           progress=events.append)
        assert len(results) == len(plan)
        assert len(events) == len(plan)           # no double ticks
        assert {e.point for e in events} == set(plan)
        assert [e.completed for e in events] == list(
            range(1, len(plan) + 1))
        for event in events:
            assert event.batch_size == sum(
                1 for e in events if e.batch_id == event.batch_id)


class TestSerialFailureIsolation:
    def test_bad_point_does_not_discard_serial_siblings(self, tmp_path):
        """The serial backend isolates per-point failures exactly like a
        worker batch: completed siblings reach the cache, the failure is
        raised once the sweep drains."""
        store = ResultCache(tmp_path)
        good = [ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50),
                ExperimentPoint("li", "current", 20, scale=0.01,
                                warmup=50)]
        bad = ExperimentPoint("no-such-benchmark", "baseline", 20,
                              scale=0.01, warmup=50)
        with pytest.raises(Exception):
            run_points([good[0], bad, good[1]], jobs=1, cache=store,
                       backend="serial")
        assert all(point_key(p) in store for p in good)


class TestMessageCodec:
    def test_round_trip(self):
        blob = bytes(range(256))
        payload = {"job_id": "j1", "points": [{"benchmark": "li"}],
                   "scale": 0.01}
        message = decode_message(encode_message("job", payload, blob))
        assert message.kind == "job"
        assert message.payload == payload
        assert message.blob == blob

    def test_empty_blob_round_trip(self):
        message = decode_message(encode_message("result", {"entries": []}))
        assert message.blob == b""

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_truncation_and_bitflips_always_raise(self, data):
        """The wire-format fuzz property: no corrupted message may ever
        decode — a truncation or bit flip anywhere (magic, length field,
        JSON body, digest, blob) raises MessageError."""
        blob = encode_message(
            "job", {"job_id": "j", "n": 7, "xs": [1, 2, 3]}, b"\x00case")
        if data.draw(st.booleans(), label="truncate"):
            cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
            corrupted = blob[:cut]
        else:
            pos = data.draw(st.integers(0, len(blob) - 1), label="pos")
            bit = data.draw(st.integers(0, 7), label="bit")
            mutated = bytearray(blob)
            mutated[pos] ^= 1 << bit
            corrupted = bytes(mutated)
        with pytest.raises(MessageError):
            decode_message(corrupted)

    def test_format_version_mismatch(self, monkeypatch):
        import repro.experiments.broker as broker_module

        blob = encode_message("job", {})
        monkeypatch.setattr(broker_module, "MESSAGE_FORMAT_VERSION", 999)
        with pytest.raises(MessageError, match="format"):
            decode_message(blob)


class TestFileBrokerStateMachine:
    """The lease/retry lifecycle, driven in-process (no subprocesses)."""

    def test_submit_lease_complete_collect(self, tmp_path):
        broker = FileBroker(tmp_path)
        broker.submit("j1", {"points": [1, 2]}, b"trace-bytes")
        assert broker.queued_count() == 1
        leased = broker.lease()
        assert leased.job_id == "j1"
        assert leased.message.payload == {"points": [1, 2]}
        assert leased.message.blob == b"trace-bytes"
        assert broker.queued_count() == 0 and broker.leased_count() == 1
        broker.complete("j1", {"entries": [["ok", {}]]})
        assert broker.leased_count() == 0
        [(job_id, message)] = broker.collect_results()
        assert job_id == "j1"
        assert message.payload["entries"] == [["ok", {}]]
        assert broker.collect_results() == []  # consumed

    def test_lease_is_exclusive_and_fifo(self, tmp_path):
        broker = FileBroker(tmp_path)
        broker.submit("a", {"n": 1})
        broker.submit("b", {"n": 2})
        first, second = broker.lease(), broker.lease()
        assert {first.job_id, second.job_id} == {"a", "b"}
        assert broker.lease() is None

    def test_expiry_renew_and_tick_heartbeat(self, tmp_path):
        broker = FileBroker(tmp_path, lease_timeout=0.2)
        broker.submit("j1", {})
        broker.lease()
        assert broker.expired() == []
        time.sleep(0.25)
        assert broker.expired() == ["j1"]
        broker.renew("j1")
        assert broker.expired() == []
        time.sleep(0.25)
        broker.tick("j1", 0)       # ticks also heartbeat the lease
        assert broker.expired() == []

    def test_requeue_cycle_after_expiry(self, tmp_path):
        """The scheduler-side retry: remove the stale lease, resubmit,
        and the job becomes leasable again with its new attempt."""
        broker = FileBroker(tmp_path, lease_timeout=0.1)
        broker.submit("j1", {"attempt": 1})
        broker.lease()
        assert broker.expired() == []  # first observation: joins counter
        time.sleep(0.15)               # tracking (coarse-mtime floor),
        assert broker.expired() == ["j1"]  # then the stalled counter fires
        broker.remove("j1")
        broker.submit("j1", {"attempt": 2})
        assert broker.expired() == []
        leased = broker.lease()
        assert leased.message.payload == {"attempt": 2}

    def test_ticks_drain_incrementally(self, tmp_path):
        broker = FileBroker(tmp_path)
        broker.submit("j1", {})
        broker.lease()
        broker.tick("j1", 0)
        broker.tick("j1", 1)
        assert broker.drain_ticks() == [("j1", 0, None), ("j1", 1, None)]
        assert broker.drain_ticks() == []
        broker.tick("j1", 2)
        assert broker.drain_ticks() == [("j1", 2, None)]

    def test_ticks_carry_optional_durations(self, tmp_path):
        broker = FileBroker(tmp_path)
        broker.submit("j1", {})
        broker.lease()
        broker.tick("j1", 0, 0.25)
        broker.tick("j1", 1)             # legacy bare-index line
        assert broker.drain_ticks() == [("j1", 0, 0.25), ("j1", 1, None)]

    def test_torn_tick_line_is_left_for_next_drain(self, tmp_path):
        broker = FileBroker(tmp_path)
        path = broker.ticks_dir / "j1.ticks"
        path.write_bytes(b"0\n1")        # "1" has no newline yet
        assert broker.drain_ticks() == [("j1", 0, None)]
        with open(path, "ab") as handle:
            handle.write(b"\n")
        assert broker.drain_ticks() == [("j1", 1, None)]

    def test_corrupt_result_surfaces_as_message_error(self, tmp_path):
        broker = FileBroker(tmp_path)
        broker.submit("j1", {})
        broker.lease()
        good = encode_message("result", {"entries": []})
        mutated = bytearray(good)
        mutated[len(mutated) // 2] ^= 0xFF
        broker.complete("j1", {}, raw=bytes(mutated))
        [(job_id, outcome)] = broker.collect_results()
        assert job_id == "j1"
        assert isinstance(outcome, MessageError)

    def test_corrupt_queued_job_is_leased_with_error(self, tmp_path):
        """A job file that fails its checksum is still leased (so it
        stops bouncing) and reported, never executed."""
        broker = FileBroker(tmp_path)
        broker.submit("j1", {"points": []})
        path = broker.queue_dir / "j1.msg"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        leased = broker.lease()
        assert leased.job_id == "j1"
        assert leased.message is None
        assert "checksum" in leased.error or "malformed" in leased.error

    def test_remove_clears_queue_and_lease(self, tmp_path):
        broker = FileBroker(tmp_path)
        broker.submit("j1", {})
        broker.remove("j1")
        assert broker.lease() is None
        broker.submit("j2", {})
        broker.lease()
        broker.remove("j2")
        assert broker.leased_count() == 0

    def test_malformed_job_ids_rejected(self, tmp_path):
        broker = FileBroker(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                broker.submit(bad, {})


class TestQueueBackendEndToEnd:
    """Real ``python -m repro.worker`` subprocesses behind run_plan."""

    @pytest.fixture(scope="class")
    def serial_results(self):
        return run_plan(small_plan(), jobs=1, use_cache=False,
                        backend="serial")

    def test_grid_matches_serial_and_ships_traces(self, serial_results):
        backend = queue_backend()
        queued = run_plan(small_plan(), jobs=2, use_cache=False,
                          backend=backend)
        assert queued == serial_results
        # Every redirect batch replayed the parent's shipped trace — the
        # acceptance marker for cluster-shared functional runs.
        assert backend.trace_sources
        assert set(backend.trace_sources.values()) == {"shipped"}
        # ...and workers lowered the shipped trace locally: batches with
        # a baseline point report the compiled kernel, ARVI-only batches
        # the interpreted replay — never "live".
        assert set(backend.trace_sources) == set(backend.kernel_sources)
        assert set(backend.kernel_sources.values()) <= {
            "kernel", "interpreted"}
        assert "kernel" in backend.kernel_sources.values()

    def test_worker_crash_mid_batch_recovers(self, serial_results):
        """Kill a worker mid-batch (fault injection): the lease expires,
        the batch requeues, a sibling/respawned worker finishes it, and
        the results still match the serial backend bit for bit."""
        backend = queue_backend(lease_timeout=0.5,
                                worker_args=("--crash-after-points", "1"))
        events = []
        queued = run_plan(small_plan(), jobs=2, use_cache=False,
                          backend=backend, progress=events.append)
        assert queued == serial_results
        assert backend.requeues >= 1          # the crashed lease expired
        assert backend.respawns >= 1          # and the worker was replaced
        # The satellite progress property: one event per point even
        # though the retried batch re-ran already-ticked points, with
        # consistent batch metadata and a monotone completed counter
        # (lower-phase pseudo-ticks are likewise deduped per batch and
        # never advance the counter).
        plan = small_plan()
        point_events = [e for e in events if e.phase == "point"]
        lower_events = [e for e in events if e.phase == "lower"]
        assert len(point_events) + len(lower_events) == len(events)
        assert len(point_events) == len(plan)
        assert {e.point for e in point_events} == set(plan)
        assert [e.completed for e in point_events] == list(
            range(1, len(plan) + 1))
        sizes = {}
        for event in events:
            assert event.batch_id is not None
            assert event.total == len(plan)
            assert sizes.setdefault(event.batch_id, event.batch_size) \
                == event.batch_size
        for batch_id, size in sizes.items():
            assert sum(1 for e in point_events
                       if e.batch_id == batch_id) == size
            assert sum(1 for e in lower_events
                       if e.batch_id == batch_id) <= 1

    def test_corrupt_result_payload_is_retried(self, serial_results):
        """A result that fails its checksum is never delivered: the job
        requeues and the healthy retry produces correct results."""
        backend = queue_backend(workers=1,
                                worker_args=("--corrupt-results", "1"))
        queued = run_plan(small_plan(), jobs=2, use_cache=False,
                          backend=backend)
        assert queued == serial_results
        assert backend.corrupt_results >= 1
        assert backend.requeues >= 1

    def test_retries_are_bounded_and_typed(self):
        """A batch that can never produce a valid result fails with a
        QueueError naming its attempt history — not a hang, not a
        silent drop."""
        backend = queue_backend(workers=1, max_attempts=2, timeout=60.0,
                                worker_args=("--corrupt-results", "99"))
        with pytest.raises(QueueError, match="after 2 attempt"):
            run_plan(small_plan(), jobs=2, use_cache=False,
                     backend=backend)

    def test_no_workers_without_external_broker_fails_fast(self):
        """workers=0 with a private temp broker could never complete —
        it must raise immediately, not hang."""
        backend = queue_backend(workers=0)
        with pytest.raises(QueueError, match="external broker"):
            run_plan(small_plan(), jobs=2, use_cache=False,
                     backend=backend)

    def test_crash_looping_workers_fail_loudly(self, monkeypatch):
        """Workers that die before ever producing a result (here: an
        unknown CLI flag) must raise a diagnostic QueueError instead of
        respawning forever.  Degradation is disabled so the typed error
        surfaces instead of the grid falling back to the local pool (the
        fallback path has its own test in test_faults.py)."""
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        backend = queue_backend(workers=1, timeout=120.0,
                                worker_args=("--definitely-not-a-flag",))
        with pytest.raises(QueueError, match="crash-looping"):
            run_plan(small_plan(), jobs=2, use_cache=False,
                     backend=backend)

    def test_per_point_failure_is_final_and_isolated(self, tmp_path):
        """A deterministic worker-side point failure (unknown benchmark)
        comes back typed on the first attempt; siblings still land in
        the cache."""
        store = ResultCache(tmp_path)
        good = [ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50),
                ExperimentPoint("li", "current", 20, scale=0.01,
                                warmup=50)]
        bad = ExperimentPoint("no-such-benchmark", "baseline", 20,
                              scale=0.01, warmup=50)
        backend = queue_backend()
        with pytest.raises(RemotePointError, match="no-such-benchmark"):
            run_points([good[0], bad, good[1]], jobs=2, cache=store,
                       backend=backend)
        assert backend.requeues == 0          # deterministic => no retry
        assert all(point_key(p) in store for p in good)

    def test_wrongpath_grid_runs_live_on_workers(self):
        plan = build_plan(("baseline",), (20, 40), ("li",), scale=0.01,
                          warmup=50, speculation="wrongpath")
        serial = run_plan(plan, jobs=1, use_cache=False, backend="serial")
        backend = queue_backend()
        queued = run_plan(plan, jobs=2, use_cache=False, backend=backend)
        assert queued == serial
        assert set(backend.trace_sources.values()) == {"live"}


class TestWorkerEntrypoint:
    def test_module_is_runnable_and_documents_flags(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.worker", "--help"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src" + os.pathsep
                 + os.environ.get("PYTHONPATH", "")},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))))
        assert proc.returncode == 0
        assert "--broker" in proc.stdout
        assert "--crash-after-points" in proc.stdout

    def test_idle_worker_exits_cleanly(self, tmp_path):
        FileBroker(tmp_path)  # create the directory layout
        proc = subprocess.run(
            [sys.executable, "-m", "repro.worker", "--broker",
             str(tmp_path), "--poll", "0.01", "--idle-exit", "0.05"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": "src" + os.pathsep
                 + os.environ.get("PYTHONPATH", "")},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))))
        assert proc.returncode == 0, proc.stderr

    def test_sigkilled_worker_leaves_lease_to_expire(self, tmp_path):
        """The generic crash path (no injection flag): SIGKILL a live
        worker and verify its lease expires rather than completing."""
        broker = FileBroker(tmp_path, lease_timeout=0.2)
        point = ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50)
        broker.submit("j1", {"job_id": "j1", "batch_id": "b0",
                             "attempt": 1, "points": [point.to_dict()]})
        env = {**os.environ, "PYTHONPATH": "src" + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.worker", "--broker",
             str(tmp_path), "--poll", "0.01"],
            env=env, cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            while broker.leased_count() == 0:
                assert time.monotonic() < deadline, "worker never leased"
                time.sleep(0.01)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            broker.expired()       # first observation joins counter
            time.sleep(0.25)       # tracking; the dead worker's counter
            assert broker.expired() == ["j1"] or \
                broker.collect_results()  # tiny point may have finished
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# -- crash-report log tailing -------------------------------------------------


class TestWorkerLogTailing:
    """`_tail_worker_logs` assembles *diagnostics for a failure already
    being raised* — a log vanishing mid-collection (rotation, cleanup,
    a dying worker unlinking its own file) must be skipped, never allowed
    to replace the original QueueError with a stat traceback."""

    def test_log_vanishing_between_glob_and_stat_is_skipped(
            self, tmp_path, monkeypatch):
        import pathlib

        survivor = tmp_path / "worker-1.log"
        survivor.write_text("survivor tail")
        doomed = tmp_path / "worker-2.log"
        doomed.write_text("gone")
        real_stat = pathlib.Path.stat

        def racy_stat(self, **kwargs):
            if self.name == doomed.name:
                raise FileNotFoundError(f"vanished: {self}")
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racy_stat)
        tail = _tail_worker_logs(tmp_path)
        assert "survivor tail" in tail
        assert survivor.name in tail

    def test_all_logs_vanished(self, tmp_path, monkeypatch):
        import pathlib

        (tmp_path / "worker-1.log").write_text("x")
        real_stat = pathlib.Path.stat

        def all_logs_vanished(self, **kwargs):
            if self.name.endswith(".log"):
                raise FileNotFoundError(f"vanished: {self}")
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", all_logs_vanished)
        assert _tail_worker_logs(tmp_path) == "(no worker logs found)"

    def test_unreadable_newest_log_is_reported_not_raised(
            self, tmp_path, monkeypatch):
        import pathlib

        (tmp_path / "worker-1.log").write_text("x")
        monkeypatch.setattr(
            pathlib.Path, "read_bytes",
            lambda self: (_ for _ in ()).throw(OSError("evicted")))
        assert "unreadable" in _tail_worker_logs(tmp_path)
