"""The chaos harness + resilience policy layer (ISSUE 8 / DESIGN.md §12).

Five layers of guarantees:

* the seeded injector itself — same ``REPRO_FAULTS`` spec, same faults
  at the same call sequence, budgets respected, zero ambient effect
  when unset (and excluded from cache keys);
* the policy layer — one :class:`RetryPolicy` with deterministic
  jitter, per-point SIGALRM deadlines, durability fsyncs, and
  digest-guarded cache entries that turn torn/bit-flipped files into
  misses, never wrong results;
* poison-point quarantine — failed points land in ``deadletter/`` with
  their full attempt history while siblings complete, surfaced via
  ``python -m repro.obs deadletter``;
* resumable runs — a killed grid restarted with the same plan replays
  its crash-safe manifest and converges bit-identically;
* graceful degradation — a backend that reports itself unavailable
  hands the remainder of the grid down the queue → local → serial
  ladder without double-counting progress;

plus the top-level chaos property: under *any* seeded fault schedule a
queue grid either completes bit-identical to the fault-free serial run
or fails with a typed error — never a hang, never silent divergence.
"""

import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.backends import (
    BackendUnavailable,
    ExecutionBackend,
    LocalPoolBackend,
    QueueBackend,
    SerialBackend,
    _compute_batch,
    degrade_target,
)
from repro.experiments.broker import FileBroker, QueueError
from repro.experiments.cache import ResultCache
from repro.experiments.plan import ExperimentPoint, build_plan, point_key
from repro.experiments.runner import execute_point
from repro.experiments.scheduler import run_plan, run_points
from repro.faults import fsio
from repro.faults.injector import (
    FaultInjector,
    InjectedIOError,
    active,
    override,
    parse_spec,
)
from repro.faults.manifest import RunManifest, plan_hash, resolve_manifest
from repro.faults.policy import (
    DeadletterStore,
    PointTimeout,
    RetriesExhausted,
    RetryPolicy,
    point_deadline,
    point_timeout,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

PLAN_KW = dict(configurations=("baseline", "current"), depths=(20, 40),
               benchmarks=("li",), scale=0.01, warmup=50)


def small_plan():
    return build_plan(**PLAN_KW)


def subprocess_env(**extra):
    env = {**os.environ, "PYTHONPATH": "src" + os.pathsep
           + os.environ.get("PYTHONPATH", "")}
    env.update(extra)
    return env


@pytest.fixture(scope="module")
def one_result():
    point = ExperimentPoint("li", "baseline", 20, scale=0.01, warmup=50)
    return execute_point(point)


@pytest.fixture(scope="module")
def serial_results():
    return run_plan(small_plan(), jobs=1, use_cache=False,
                    backend="serial")


# -- spec parsing -------------------------------------------------------------


class TestSpecParsing:
    def test_single_profile(self):
        seed, rates, budgets = parse_spec("7:io")
        assert seed == "7"
        assert rates == {"io": 0.5}
        assert budgets == {"io": 2}

    def test_combined_profiles_take_the_max_rate(self):
        _, rates, budgets = parse_spec("s:io+slow")
        assert set(rates) == {"io", "slow"}
        assert rates["slow"] == 1.0
        _, comma_rates, _ = parse_spec("s:io,slow")
        assert comma_rates == rates
        assert budgets == {"io": 2, "slow": 16}

    def test_explicit_budget_caps_every_kind(self):
        _, rates, budgets = parse_spec("s:mixed:5")
        assert set(budgets) == set(rates)
        assert set(budgets.values()) == {5}

    def test_mixed_and_all_are_aliases(self):
        assert parse_spec("s:mixed")[1] == parse_spec("s:all")[1]

    @pytest.mark.parametrize("bad", [
        "", "7", ":io", "7:", "7:nope", "7:io:x", "7:io:0", "7:io:-1",
        "7:io:1:extra"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)


# -- the injector schedule ----------------------------------------------------


def io_pattern(spec: str, calls: int = 40) -> list[bool]:
    injector = FaultInjector(spec)
    pattern = []
    for _ in range(calls):
        try:
            injector.maybe_io_error("broker.tick")
            pattern.append(False)
        except InjectedIOError:
            pattern.append(True)
    return pattern


class TestInjectorSchedule:
    def test_same_spec_same_schedule(self):
        assert io_pattern("42:io:99") == io_pattern("42:io:99")
        assert io_pattern("42:io:99") != io_pattern("43:io:99")

    def test_kind_streams_are_independent(self):
        """Enabling an extra profile must not shift where io faults land."""
        assert io_pattern("42:io:99") == io_pattern("42:io+slow:99")

    def test_budget_bounds_injections(self):
        assert sum(io_pattern("42:io")) <= 2          # DEFAULT_BUDGETS["io"]
        assert sum(io_pattern("42:io:1", calls=200)) == 1

    def test_injected_log_names_kind_and_site(self):
        injector = FaultInjector("42:io:1")
        with pytest.raises(InjectedIOError) as excinfo:
            for _ in range(200):
                injector.maybe_io_error("broker.submit")
        assert "broker.submit" in str(excinfo.value)
        assert injector.injected == [("io", "broker.submit")]

    def test_mangle_truncates_or_flips_one_bit(self):
        data = bytes(range(200))
        partial = FaultInjector("1:partial:99")
        for _ in range(50):
            out = partial.mangle("cache.put", data)
            if out != data:
                assert out == data[:len(out)]         # pure truncation
                break
        else:
            pytest.fail("partial profile never injected in 50 calls")
        corrupt = FaultInjector("1:corrupt:99")
        for _ in range(50):
            out = corrupt.mangle("cache.put", data)
            if out != data:
                assert len(out) == len(data)
                diff = [i for i in range(len(data)) if out[i] != data[i]]
                assert len(diff) == 1                 # a single flipped bit
                assert bin(out[diff[0]] ^ data[diff[0]]).count("1") == 1
                break
        else:
            pytest.fail("corrupt profile never injected in 50 calls")

    def test_slow_delay_is_bounded(self):
        injector = FaultInjector("1:slow")
        delays = [injector.slow_delay("worker.point") for _ in range(20)]
        injected = [d for d in delays if d > 0.0]
        assert len(injected) == 16                    # the slow budget
        assert all(0.02 <= d <= 0.1 for d in injected)

    def test_crash_never_fires_off_main_thread(self, tmp_path):
        injector = FaultInjector("1:crash")
        outcome = []

        def run():
            injector.maybe_crash(tmp_path)            # must NOT os._exit
            outcome.append("survived")

        worker = threading.Thread(target=run)
        worker.start()
        worker.join(10)
        assert outcome == ["survived"]
        assert injector.injected == []
        assert not (tmp_path / "faults-crash.marker").exists()


class TestActiveAndOverride:
    def test_unset_env_means_inactive(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active() is None

    def test_env_spec_is_memoized(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "9:slow")
        first = active()
        assert isinstance(first, FaultInjector)
        assert first.spec == "9:slow"
        assert active() is first                      # same object, no reparse
        monkeypatch.setenv("REPRO_FAULTS", "9:io")
        assert active().spec == "9:io"                # spec change re-derives

    def test_override_pins_active(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        injector = FaultInjector("1:io")
        with override(injector):
            assert active() is injector
        assert active() is None


# -- durable atomic writes + digest-guarded cache -----------------------------


class TestFsyncKnob:
    def test_default_on_and_off_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_FSYNC", raising=False)
        assert fsio.fsync_enabled()
        for off in ("0", "false", "no", "off", ""):
            monkeypatch.setenv("REPRO_FSYNC", off)
            assert not fsio.fsync_enabled()
        monkeypatch.setenv("REPRO_FSYNC", "1")
        assert fsio.fsync_enabled()

    def test_atomic_write_replaces_durably(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FSYNC", "1")        # the fsync path itself
        path = tmp_path / "value.json"
        fsio.atomic_write_bytes(path, b"old")
        fsio.atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"
        assert list(tmp_path.glob("*.tmp")) == []     # no orphaned temps


class TestCacheDigestGuards:
    def key(self, tag: str) -> str:
        return hashlib.sha256(tag.encode()).hexdigest()

    def test_partial_write_is_a_miss_not_an_error(self, tmp_path,
                                                  one_result):
        store = ResultCache(tmp_path)
        key = self.key("torn")
        store.put(key, one_result)
        path = tmp_path / f"{key}.json"
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])       # simulated torn write
        assert store.get(key) is None

    def test_bit_flip_that_still_parses_is_a_miss(self, tmp_path,
                                                  one_result):
        """The format-2 digest: valid-JSON corruption must never replay
        as a silently different result."""
        store = ResultCache(tmp_path)
        key = self.key("flip")
        store.put(key, one_result)
        path = tmp_path / f"{key}.json"
        payload = json.loads(path.read_text())

        def perturb(node) -> bool:
            if isinstance(node, dict):
                for field, value in node.items():
                    if isinstance(value, (int, float)) \
                            and not isinstance(value, bool):
                        node[field] = value + 1
                        return True
                    if perturb(value):
                        return True
            if isinstance(node, list):
                return any(perturb(item) for item in node)
            return False

        assert perturb(payload["result"]), "no numeric field to perturb"
        path.write_text(json.dumps(payload))          # still valid JSON
        assert store.get(key) is None

    def test_injected_partial_writes_never_serve_wrong_results(
            self, tmp_path, one_result):
        store = ResultCache(tmp_path)
        injector = FaultInjector("13:partial:99")
        keys = [self.key(f"chaos-{i}") for i in range(20)]
        with override(injector):
            for key in keys:
                store.put(key, one_result)
        mangled = sum(1 for kind, _ in injector.injected
                      if kind == "partial")
        assert mangled > 0
        misses = sum(1 for key in keys if store.get(key) is None)
        assert misses == mangled                      # torn <=> miss, exactly
        for key in keys:
            got = store.get(key)
            assert got is None or got == one_result


# -- the retry policy ---------------------------------------------------------


class TestRetryPolicy:
    def test_delay_shape_and_cap(self):
        policy = RetryPolicy(max_attempts=9, backoff=0.1, factor=2.0,
                             cap=0.5)
        assert policy.delay(1, "k") == 0.0            # first try is free
        assert 0.05 <= policy.delay(2, "k") <= 0.1    # backoff * [1/2, 1]
        assert 0.1 <= policy.delay(3, "k") <= 0.2
        assert policy.delay(9, "k") <= 0.5            # capped

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(backoff=0.1)
        assert policy.delay(3, "a") == policy.delay(3, "a")
        assert policy.delay(3, "a") != policy.delay(3, "b")

    def test_call_retries_transient_then_succeeds(self):
        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return 42

        assert policy.call(flaky, key="k", what="flaky op") == 42
        assert len(attempts) == 3

    def test_exhaustion_is_typed_with_history(self):
        policy = RetryPolicy(max_attempts=2, backoff=0.0)

        def always():
            raise OSError("disk on fire")

        with pytest.raises(RetriesExhausted,
                           match="failed after 2 attempt") as excinfo:
            policy.call(always, key="k", what="doomed op")
        assert excinfo.value.attempts == 2
        assert len(excinfo.value.history) == 2
        assert all("disk on fire" in line
                   for line in excinfo.value.history)

    def test_point_timeout_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5, backoff=0.0)
        attempts = []

        def overrun():
            attempts.append(1)
            raise PointTimeout("too slow")

        with pytest.raises(PointTimeout):
            policy.call(overrun, key="k", what="slow op",
                        retry_on=(RuntimeError,))
        assert len(attempts) == 1                     # deadline is final

    def test_from_env_reads_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        assert RetryPolicy.from_env(max_attempts=4).backoff == 0.25
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "bogus")
        assert RetryPolicy.from_env().backoff == 0.05


# -- per-point deadlines ------------------------------------------------------


class TestPointDeadline:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
        assert point_timeout() == 0.0
        for off in ("0", "off", "garbage", "-3"):
            monkeypatch.setenv("REPRO_POINT_TIMEOUT", off)
            assert point_timeout() == 0.0
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "2.5")
        assert point_timeout() == 2.5

    def test_deadline_interrupts_and_disarms(self):
        started = time.monotonic()
        with pytest.raises(PointTimeout, match="deadline"):
            with point_deadline(0.05):
                time.sleep(5)
        assert time.monotonic() - started < 2.0
        time.sleep(0.1)                               # timer must be disarmed

    def test_noop_off_main_thread(self):
        outcome = []

        def run():
            with point_deadline(0.01):
                time.sleep(0.05)
            outcome.append("survived")

        worker = threading.Thread(target=run)
        worker.start()
        worker.join(10)
        assert outcome == ["survived"]

    def test_serial_grid_surfaces_point_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "0.001")
        point = ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50)
        with pytest.raises(PointTimeout):
            run_points([point], jobs=1, use_cache=False, backend="serial")

    def test_generous_deadline_changes_nothing(self, monkeypatch,
                                               serial_results):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "300")
        assert run_plan(small_plan(), jobs=1, use_cache=False,
                        backend="serial") == serial_results


# -- heartbeat counters vs wall-clock skew ------------------------------------


class TestHeartbeatSkew:
    def test_skewed_mtime_cannot_expire_a_live_lease(self, tmp_path):
        """A worker whose host clock is far behind keeps its lease as
        long as its monotonic counter advances."""
        broker = FileBroker(tmp_path, lease_timeout=0.2)
        broker.submit("j1", {})
        broker.lease()
        assert broker.expired() == []                 # seeds counter tracking
        lease = broker.leased_dir / "j1.msg"
        past = time.time() - 3600
        for _ in range(3):
            os.utime(lease, (past, past))             # mtime says "stale"
            broker.renew("j1")                        # counter says "alive"
            time.sleep(0.1)
            assert broker.expired() == []
        time.sleep(0.25)                              # counter now frozen
        assert broker.expired() == ["j1"]

    def test_restarted_scheduler_falls_back_to_mtime_once(self, tmp_path):
        taker = FileBroker(tmp_path, lease_timeout=0.2)
        taker.submit("j1", {})
        taker.lease()
        past = time.time() - 3600
        os.utime(taker.leased_dir / "j1.msg", (past, past))
        watcher = FileBroker(tmp_path, lease_timeout=0.2)  # fresh scheduler
        assert watcher.expired() == ["j1"]            # mtime fallback fires

    def test_coarse_mtime_cannot_expire_a_fresh_lease_on_first_sight(
            self, tmp_path):
        """The one-shot mtime fallback carries a staleness floor: on a
        filesystem that rounds st_mtime to whole seconds, a sub-second
        ``lease_timeout`` must not expire a lease taken *just now* the
        first time a restarted scheduler observes it."""
        taker = FileBroker(tmp_path, lease_timeout=0.2)
        taker.submit("j1", {})
        taker.lease()
        # Worst-case coarse-mtime rounding: the file looks 0.9s old the
        # instant after the lease was taken (> lease_timeout, < floor).
        past = time.time() - 0.9
        os.utime(taker.leased_dir / "j1.msg", (past, past))
        watcher = FileBroker(tmp_path, lease_timeout=0.2)
        assert watcher.expired() == []         # floored, joins tracking
        time.sleep(0.25)                       # counter never advances...
        assert watcher.expired() == ["j1"]     # ...so it expires properly

    def test_first_sight_orphan_has_unknown_lease_age(self, tmp_path):
        """A lease expired via the one-shot mtime fallback was never
        heartbeat-observed by this watcher, so its age is genuinely
        unknown: ``lease_age`` returns None (rendered "unknown" in the
        QueueError retry reason and the lease_expired ledger event),
        never a skew-poisoned ``time.time() - st_mtime`` number."""
        taker = FileBroker(tmp_path, lease_timeout=0.2)
        taker.submit("j1", {})
        taker.lease()
        past = time.time() - 3600
        os.utime(taker.leased_dir / "j1.msg", (past, past))
        watcher = FileBroker(tmp_path, lease_timeout=0.2)
        assert watcher.expired() == ["j1"]     # the scheduler's sequence:
        assert watcher.lease_age("j1") is None  # ...then age -> unknown

    def test_lease_age_is_monotonic_once_observed(self, tmp_path):
        broker = FileBroker(tmp_path, lease_timeout=5.0)
        broker.submit("j1", {})
        assert broker.lease_age("j1") is None  # not leased at all
        broker.lease()
        assert broker.lease_age("j1") is None  # leased, never observed
        assert broker.expired() == []          # first observation
        age = broker.lease_age("j1")
        assert age is not None and age >= 0.0
        time.sleep(0.05)
        later = broker.lease_age("j1")
        assert later is not None and later >= age
        # A future-skewed mtime must not clamp the age to a bogus 0.0.
        ahead = time.time() + 3600
        os.utime(broker.leased_dir / "j1.msg", (ahead, ahead))
        skewed = broker.lease_age("j1")
        assert skewed is not None and skewed >= later


# -- graceful SIGTERM ---------------------------------------------------------


class TestGracefulSigterm:
    def test_sigterm_releases_lease_and_loses_no_ticks(self, tmp_path):
        """SIGTERM mid-batch: the worker finishes its in-flight point,
        hands the lease back to the queue (not left to expire) and
        exits 0; every tick written before the signal survives and a
        second worker completes the batch."""
        broker = FileBroker(tmp_path, lease_timeout=30.0)
        point = ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50).to_dict()
        total = 12
        broker.submit("j1", {"job_id": "j1", "batch_id": "b0",
                             "attempt": 1, "points": [point] * total})
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.worker", "--broker",
             str(tmp_path), "--poll", "0.01"],
            env=subprocess_env(REPRO_FAULTS="1:slow"), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        first_ticks: set[int] = set()
        try:
            deadline = time.monotonic() + 60
            while not first_ticks:
                assert time.monotonic() < deadline, "worker never ticked"
                first_ticks.update(            # drop LOWER_TICK pseudo-ticks
                    index for _job, index, _dur in broker.drain_ticks()
                    if index >= 0)
                time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        first_ticks.update(
            index for _job, index, _dur in broker.drain_ticks()
            if index >= 0)
        # The lease went back to the queue, nothing was published, and
        # the ticks on disk are exactly the completed prefix.
        assert broker.queued_count() == 1
        assert broker.leased_count() == 0
        assert broker.collect_results() == []
        assert first_ticks == set(range(len(first_ticks)))
        assert 0 < len(first_ticks) < total
        # A fresh worker drains the released job to completion.
        finisher = subprocess.run(
            [sys.executable, "-m", "repro.worker", "--broker",
             str(tmp_path), "--poll", "0.01", "--max-jobs", "1"],
            env=subprocess_env(), cwd=REPO_ROOT, timeout=300,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        assert finisher.returncode == 0
        [(job_id, message)] = broker.collect_results()
        assert job_id == "j1"
        entries = message.payload["entries"]
        assert len(entries) == total
        assert all(status == "ok" for status, *_ in entries)
        second_ticks = {index for _job, index, _dur
                        in broker.drain_ticks() if index >= 0}
        assert first_ticks | second_ticks == set(range(total))


# -- deadletter quarantine ----------------------------------------------------


class TestDeadletterQuarantine:
    def test_serial_poison_point_is_quarantined(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_DEADLETTER_DIR", str(tmp_path / "dl"))
        store = ResultCache(tmp_path / "cache")
        good = [ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50),
                ExperimentPoint("li", "current", 20, scale=0.01,
                                warmup=50)]
        bad = ExperimentPoint("no-such-benchmark", "baseline", 20,
                              scale=0.01, warmup=50)
        with pytest.raises(Exception) as excinfo:
            run_points([good[0], bad, good[1]], jobs=1, cache=store,
                       backend="serial")
        assert any("quarantined" in note for note
                   in getattr(excinfo.value, "__notes__", ()))
        assert all(point_key(p) in store for p in good)
        [entry] = DeadletterStore(tmp_path / "dl").entries()
        assert entry["point"]["benchmark"] == "no-such-benchmark"
        assert entry["key"]
        assert entry["error"]["type"]
        assert "no-such-benchmark" in entry["error"]["message"]

    def test_queue_poison_job_records_full_attempt_history(
            self, tmp_path, monkeypatch):
        """A job that can never produce a valid result exhausts its
        bounded attempts; every point lands in deadletter/ with the
        complete per-attempt history."""
        monkeypatch.setenv("REPRO_DEADLETTER_DIR", str(tmp_path / "dl"))
        backend = QueueBackend(workers=1, lease_timeout=10.0, poll=0.01,
                               timeout=120.0, max_attempts=2,
                               worker_args=("--corrupt-results", "99"))
        with pytest.raises(QueueError, match="after 2 attempt"):
            run_plan(small_plan(), jobs=2, use_cache=False,
                     backend=backend)
        entries = DeadletterStore(tmp_path / "dl").entries()
        assert len(entries) == len(small_plan())
        for entry in entries:
            assert len(entry["history"]) == 2
            assert any("corrupt result" in line
                       for line in entry["history"])

    def test_quarantine_can_be_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLETTER_DIR", str(tmp_path / "dl"))
        monkeypatch.setenv("REPRO_DEADLETTER", "0")
        bad = ExperimentPoint("no-such-benchmark", "baseline", 20,
                              scale=0.01, warmup=50)
        with pytest.raises(Exception):
            run_points([bad], jobs=1, use_cache=False, backend="serial")
        assert DeadletterStore(tmp_path / "dl").entries() == []

    def test_cli_lists_quarantined_points(self, tmp_path, capsys):
        from repro.obs import __main__ as obs_cli

        directory = tmp_path / "dl"
        assert obs_cli.main(["deadletter", str(directory)]) == 0
        assert "no quarantined points" in capsys.readouterr().out
        DeadletterStore(directory).add({
            "point": {"benchmark": "li", "configuration": "baseline",
                      "pipeline_depth": 20, "speculation": "redirect"},
            "key": "ab" * 32,
            "error": {"type": "QueueError", "message": "boom"},
            "history": ["attempt 1: corrupt result payload"],
        })
        assert obs_cli.main(["deadletter", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined point(s)" in out
        assert "li baseline d20" in out
        assert "QueueError: boom" in out
        assert "attempt 1: corrupt result payload" in out


# -- crash-safe run manifests -------------------------------------------------


class TestRunManifest:
    KEYS = ["k-alpha", "k-beta", "k-gamma"]

    def test_record_and_reopen(self, tmp_path):
        manifest = RunManifest.open(tmp_path, self.KEYS)
        manifest.record("k-alpha", {"ipc": 1.0})
        manifest.record("k-beta", {"ipc": 2.0})
        manifest.record("k-alpha", {"ipc": 99.0})     # idempotent per key
        manifest.close()
        reopened = RunManifest.open(tmp_path, self.KEYS)
        assert reopened.completed == {"k-alpha": {"ipc": 1.0},
                                      "k-beta": {"ipc": 2.0}}
        reopened.close()

    def test_torn_final_line_is_skipped(self, tmp_path):
        manifest = RunManifest.open(tmp_path, self.KEYS)
        manifest.record("k-alpha", {"ipc": 1.0})
        manifest.close()
        with open(manifest.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "result", "key": "k-beta", "pay')
        reopened = RunManifest.open(tmp_path, self.KEYS)
        assert set(reopened.completed) == {"k-alpha"}
        reopened.record("k-beta", {"ipc": 2.0})       # appends fine after
        reopened.close()

    def test_tampered_line_fails_its_self_digest(self, tmp_path):
        manifest = RunManifest.open(tmp_path, self.KEYS)
        manifest.record("k-alpha", {"ipc": 1.0})
        manifest.close()
        lines = manifest.path.read_text().splitlines()
        assert '"ipc":1.0' in lines[1]                # canonical JSON
        lines[1] = lines[1].replace('"ipc":1.0', '"ipc":7.0')
        manifest.path.write_text("\n".join(lines) + "\n")
        reopened = RunManifest.open(tmp_path, self.KEYS)
        assert reopened.completed == {}               # tamper => recompute
        reopened.close()

    def test_foreign_header_restarts_the_manifest(self, tmp_path):
        plan = plan_hash(self.KEYS)
        path = tmp_path / f"{plan[:32]}.jsonl"
        path.write_text('{"kind": "plan", "plan": "someone-else", '
                        '"v": 1}\n')
        manifest = RunManifest.open(tmp_path, self.KEYS)
        assert manifest.completed == {}
        manifest.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["plan"] == plan                 # rewritten for us

    def test_resolve_manifest_modes(self, tmp_path, monkeypatch):
        assert resolve_manifest(False, self.KEYS) is None
        monkeypatch.delenv("REPRO_MANIFEST", raising=False)
        assert resolve_manifest(None, self.KEYS) is None
        monkeypatch.setenv("REPRO_MANIFEST", "1")
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        via_env = resolve_manifest(None, self.KEYS)
        assert isinstance(via_env, RunManifest)
        via_env.close()
        explicit = resolve_manifest(tmp_path, self.KEYS)
        assert explicit.path == via_env.path
        explicit.close()


class TestManifestResume:
    def test_interrupted_grid_resumes_bit_identical(self, tmp_path,
                                                    serial_results):
        """Kill a grid (here: an exception out of the progress callback)
        after two points; restarting with the same plan and manifest
        directory replays them as source="manifest" events and
        converges to the fault-free results."""
        seen = []

        def die_after_two(event):
            if event.phase != "point":                # skip lower ticks
                return
            seen.append(event)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_plan(small_plan(), jobs=1, use_cache=False,
                     backend="serial", manifest=tmp_path,
                     progress=die_after_two)
        events = []
        resumed = run_plan(small_plan(), jobs=1, use_cache=False,
                           backend="serial", manifest=tmp_path,
                           progress=events.append)
        assert resumed == serial_results
        replayed = [e for e in events if e.source == "manifest"]
        assert len(replayed) == 2
        assert len([e for e in events if e.phase == "point"]) \
            == len(small_plan())

    def test_sigkilled_grid_resumes_from_manifest(self, tmp_path,
                                                  serial_results):
        """The real crash: SIGKILL a separate grid process mid-run, then
        resume in-process from its manifest."""
        script = (
            "import sys\n"
            "from repro.experiments.plan import build_plan\n"
            "from repro.experiments.scheduler import run_plan\n"
            f"plan = build_plan(**{PLAN_KW!r})\n"
            "run_plan(plan, jobs=1, use_cache=False, backend='serial',\n"
            "         manifest=sys.argv[1])\n")
        keys = [point_key(point) for point in small_plan()]
        manifest_path = tmp_path / f"{plan_hash(keys)[:32]}.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            env=subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while True:
                if manifest_path.is_file():
                    text = manifest_path.read_text()
                    # header + >=1 complete result line
                    if text.count("\n") >= 2:
                        break
                if proc.poll() is not None:
                    break                             # finished before kill
                assert time.monotonic() < deadline, "grid never progressed"
                time.sleep(0.005)
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        events = []
        resumed = run_plan(small_plan(), jobs=1, use_cache=False,
                           backend="serial", manifest=tmp_path,
                           progress=events.append)
        assert resumed == serial_results
        assert [e for e in events if e.source == "manifest"]


# -- graceful degradation -----------------------------------------------------


class TestDegradation:
    def test_ladder_shape(self):
        fallback = degrade_target(QueueBackend(workers=0,
                                               broker_dir="unused"))
        assert isinstance(fallback, LocalPoolBackend)
        floor = degrade_target(fallback)
        assert isinstance(floor, SerialBackend)
        assert degrade_target(floor) is None
        assert issubclass(BackendUnavailable, QueueError)

    def test_midgrid_degradation_keeps_progress_consistent(
            self, serial_results):
        """A backend that delivers part of the grid then reports itself
        unavailable: the fallback runs only the remainder, and the
        progress stream still shows exactly one event per point with a
        monotone counter."""

        class FlakyBackend(ExecutionBackend):
            name = "queue"
            source = "queue"

            def execute(self, batches, report, *, jobs):
                batch_id = next(iter(batches))
                [(status, payload, _meta)] = _compute_batch(
                    (batches[batch_id][0],))
                assert status == "ok"
                report.deliver(batch_id, 0, payload)
                report.tick(batch_id, 0)
                raise BackendUnavailable("injected: backend fell over")

        events = []
        plan = small_plan()
        results = run_plan(plan, jobs=2, use_cache=False,
                           backend=FlakyBackend(),
                           progress=events.append)
        assert results == serial_results
        point_events = [e for e in events if e.phase == "point"]
        assert len(point_events) == len(plan)
        assert {e.point for e in point_events} == set(plan)
        assert [e.completed for e in point_events] == list(
            range(1, len(plan) + 1))
        assert {e.source for e in point_events} == {"queue", "worker"}

    def test_crash_looping_queue_degrades_to_local(self, serial_results):
        """The real thing: a queue whose workers can never start (bad
        CLI flag) reports BackendUnavailable and the grid completes on
        the local pool with identical results."""
        backend = QueueBackend(workers=1, lease_timeout=10.0, poll=0.01,
                               timeout=120.0,
                               worker_args=("--definitely-not-a-flag",))
        events = []
        results = run_plan(small_plan(), jobs=2, use_cache=False,
                           backend=backend, progress=events.append)
        assert results == serial_results
        point_events = [e for e in events if e.phase == "point"]
        assert len(point_events) == len(small_plan())
        assert {e.source for e in point_events} == {"worker"}

    def test_degradation_can_be_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADE", "0")

        class DeadBackend(ExecutionBackend):
            name = "queue"
            source = "queue"

            def execute(self, batches, report, *, jobs):
                raise BackendUnavailable("injected: no workers here")

        with pytest.raises(BackendUnavailable, match="no workers"):
            run_plan(small_plan(), jobs=2, use_cache=False,
                     backend=DeadBackend())


# -- chaos must not leak into keys or fault-free runs -------------------------


class TestFaultsAreKeyNeutral:
    def test_point_key_ignores_chaos_knobs(self, monkeypatch):
        point = ExperimentPoint("li", "baseline", 20, scale=0.01,
                                warmup=50)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        clean = point_key(point)
        monkeypatch.setenv("REPRO_FAULTS", "7:mixed")
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "60")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.5")
        assert point_key(point) == clean

    def test_faults_package_is_outside_the_code_fingerprint(self):
        from repro.experiments.plan import code_fingerprint

        before = code_fingerprint()
        # The fingerprint walk must skip src/repro/faults/ entirely —
        # the injector wraps execute_point, it never runs inside it.
        faults_dir = pathlib.Path(REPO_ROOT, "src", "repro", "faults")
        assert faults_dir.is_dir()
        sources = {path.name for path in faults_dir.glob("*.py")}
        assert "injector.py" in sources
        # Fingerprint is cached per content; recomputing with the
        # package present must equal itself and ignore those files.
        assert code_fingerprint() == before


# -- the chaos property -------------------------------------------------------


class TestChaosProperty:
    """ISSUE 8's hypothesis-backed acceptance property: under any
    seeded fault schedule the queue grid completes with results equal
    to the fault-free serial run, or fails with a typed error naming
    the fault — never a hang (the backend's hard timeout raising would
    fail the test), never silent divergence."""

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           profile=st.sampled_from(
               ["io", "partial", "corrupt", "stall", "slow", "crash",
                "mixed"]))
    def test_seeded_chaos_never_hangs_or_diverges(self, seed, profile,
                                                  serial_results):
        previous = os.environ.get("REPRO_FAULTS")
        os.environ["REPRO_FAULTS"] = f"{seed}:{profile}"
        try:
            backend = QueueBackend(workers=2, lease_timeout=0.8,
                                   poll=0.02, timeout=240.0,
                                   max_attempts=4)
            try:
                results = run_plan(small_plan(), jobs=2, use_cache=False,
                                   backend=backend)
            except (QueueError, RetriesExhausted, PointTimeout) as exc:
                # A typed failure is an acceptable outcome — but a
                # backend timeout would mean the grid hung.
                assert "timed out" not in str(exc)
            else:
                assert results == serial_results
        finally:
            if previous is None:
                os.environ.pop("REPRO_FAULTS", None)
            else:
                os.environ["REPRO_FAULTS"] = previous
