"""Result-cache layer: robustness against corrupt entries, hit fidelity."""

import json
import os

import pytest

from repro.experiments.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.experiments.plan import ExperimentPoint, point_key
from repro.experiments.runner import execute_point
from repro.pipeline.stats import SimulationResult

SMALL = dict(scale=0.02, warmup=200)


@pytest.fixture
def point():
    return ExperimentPoint("li", "current", 20, **SMALL)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_miss_on_empty_cache(cache, point):
    assert cache.get(point_key(point)) is None
    assert cache.misses == 1


def test_hit_returns_equal_result(cache, point):
    fresh = execute_point(point)
    key = point_key(point)
    cache.put(key, fresh)
    replayed = cache.get(key)
    assert replayed == fresh
    assert replayed.ipc == fresh.ipc
    assert replayed.memory == fresh.memory
    assert replayed.calculated.accuracy == fresh.calculated.accuracy


def test_round_trip_is_lossless(point):
    fresh = execute_point(point)
    assert SimulationResult.from_dict(
        json.loads(json.dumps(fresh.to_dict()))) == fresh


@pytest.mark.parametrize("payload", [
    "",                                       # empty file
    "{not json",                              # syntactically broken
    '{"format": 999, "result": {}}',          # future format version
    '{"result": {"instructions": 1}}',        # missing format marker
    '{"format": %d, "result": {"instructions": 5}}' % CACHE_FORMAT_VERSION,
    '{"format": %d}' % CACHE_FORMAT_VERSION,  # truncated: no result
    '[1, 2, 3]',                              # wrong top-level type
])
def test_corrupt_entry_is_a_miss(cache, point, payload):
    key = point_key(point)
    cache.directory.mkdir(parents=True, exist_ok=True)
    (cache.directory / f"{key}.json").write_text(payload)
    assert cache.get(key) is None


def test_truncated_nested_counters_are_a_miss(cache, point):
    """A valid-looking entry missing one nested counter must not load
    with silently zero-filled statistics."""
    key = point_key(point)
    cache.put(key, execute_point(point))
    path = cache.directory / f"{key}.json"
    payload = json.loads(path.read_text())
    del payload["result"]["memory"]["dtlb_misses"]
    path.write_text(json.dumps(payload))
    assert cache.get(key) is None


def test_corrupt_entry_is_recomputed_and_repaired(cache, point):
    """A scheduler run over a corrupt entry recomputes and rewrites it."""
    from repro.experiments.scheduler import run_points

    key = point_key(point)
    cache.directory.mkdir(parents=True, exist_ok=True)
    (cache.directory / f"{key}.json").write_text("{truncated")
    results = run_points([point], jobs=1, cache=cache)
    fresh = execute_point(point)
    assert list(results.values()) == [fresh]
    # The store now holds a valid entry again.
    assert cache.get(key) == fresh


def test_put_is_atomic_no_tmp_left_behind(cache, point):
    fresh = execute_point(point)
    cache.put(point_key(point), fresh)
    leftovers = list(cache.directory.glob("*.tmp"))
    assert leftovers == []
    assert len(cache) == 1


def test_clear_removes_entries_and_orphaned_temp_files(cache, point):
    cache.put(point_key(point), execute_point(point))
    # Simulate a writer killed between mkstemp and os.replace.
    (cache.directory / "orphan.tmp").write_text("{half-written")
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0
    assert list(cache.directory.glob("*.tmp")) == []


def test_malformed_key_rejected(cache):
    with pytest.raises(ValueError):
        cache.get("../../etc/passwd")
    with pytest.raises(ValueError):
        cache.put("UPPER", SimulationResult())


def test_cache_disabled_via_env(monkeypatch):
    from repro.experiments.cache import cache_enabled, default_cache

    monkeypatch.setenv("REPRO_CACHE", "0")
    assert not cache_enabled()
    assert default_cache() is None
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert cache_enabled()


def test_cache_dir_override(monkeypatch, tmp_path):
    from repro.experiments.cache import default_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    store = default_cache()
    assert store is not None
    assert store.directory == tmp_path / "elsewhere"


def test_key_covers_every_knob(point):
    """Changing any outcome-affecting knob changes the content hash."""
    from dataclasses import replace

    from repro.core.arvi import ARVIConfig

    base = point_key(point)
    variants = [
        replace(point, benchmark="vortex"),
        replace(point, configuration="baseline"),
        replace(point, pipeline_depth=40),
        replace(point, scale=0.03),
        replace(point, warmup=300),
        replace(point, seed=2),
        replace(point, arvi_config=ARVIConfig(sets=1024)),
        replace(point, speculation="wrongpath"),
    ]
    keys = {base} | {point_key(variant) for variant in variants}
    assert len(keys) == len(variants) + 1


def test_baseline_key_ignores_arvi_config():
    """The baseline configuration never consults ARVI, so attaching an
    ARVI config must not change its identity (no spurious recomputes)."""
    from dataclasses import replace

    from repro.core.arvi import ARVIConfig

    base = ExperimentPoint("li", "baseline", 20, **SMALL)
    with_cfg = replace(base, arvi_config=ARVIConfig(sets=1024))
    assert point_key(with_cfg) == point_key(base)
    assert with_cfg.resolve() == base.resolve()


def test_key_covers_simulator_code(point, monkeypatch):
    """A different package-source fingerprint yields different keys, so
    editing the simulator can never replay stale cached results."""
    import repro.experiments.plan as plan_module

    base = point_key(point)
    monkeypatch.setattr(plan_module, "code_fingerprint",
                        lambda: "0" * 64)
    assert point_key(point) != base


def test_key_resolves_environment(point, monkeypatch):
    """An unresolved point keys against the active REPRO_* environment."""
    bare = ExperimentPoint("li", "current", 20)
    monkeypatch.setenv("REPRO_SCALE", "0.02")
    monkeypatch.setenv("REPRO_WARMUP", "200")
    assert point_key(bare) == point_key(point)
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert point_key(bare) != point_key(point)
