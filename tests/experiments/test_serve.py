"""The HTTP/SSE view server (ISSUE 10 / DESIGN.md §14).

The acceptance property: N concurrent readers attaching *mid-grid* —
each receiving one full snapshot and then version-filtered deltas —
all reconstruct exactly the producer's final snapshot, byte for byte,
regardless of when they connected.
"""

import http.client
import json
import threading
import time

import pytest

from repro.experiments.aggregate import ViewAggregator, canonical_json
from repro.experiments.plan import build_plan
from repro.experiments.scheduler import run_plan
from repro.serve import DEFAULT_PORT, ViewServer, serve_port

PLAN_KW = dict(configurations=("baseline", "current"), depths=(20, 40),
               benchmarks=("li",), scale=0.01, warmup=50)


def small_plan():
    return build_plan(**PLAN_KW)


@pytest.fixture()
def served():
    """An aggregator + running server on an ephemeral port."""
    aggregator = ViewAggregator()
    server = ViewServer(aggregator, port=0)
    server.start()
    try:
        yield aggregator, server
    finally:
        server.stop()


def get_json(server, path):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class SSEReader(threading.Thread):
    """One /events client: applies the SSE contract until done."""

    def __init__(self, port):
        super().__init__(daemon=True)
        self.port = port
        self.views = None
        self.version = None
        self.done = False
        self.versions = []
        self.error = None

    def run(self):
        try:
            self._consume()
        except Exception as exc:  # surfaced by the main thread
            self.error = exc

    def _consume(self):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=120)
        try:
            conn.request("GET", "/events")
            response = conn.getresponse()
            assert response.status == 200
            event = None
            while not self.done:
                line = response.readline()
                if not line:
                    raise AssertionError("stream closed before done")
                line = line.decode().rstrip("\r\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: "):
                    self._apply(event, json.loads(line[len("data: "):]))
        finally:
            conn.close()

    def _apply(self, event, payload):
        if event == "snapshot":
            self.views = dict(payload["views"])
            self.version = payload["version"]
            self.done = payload["done"]
        elif event == "delta":
            assert self.views is not None, "delta before snapshot"
            assert payload["version"] > self.version, "stale delta leaked"
            self.versions.append(payload["version"])
            self.version = payload["version"]
            self.views.update(payload["views"])
            self.done = payload["done"]


class TestEndpoints:
    def test_ephemeral_port_and_health(self, served):
        aggregator, server = served
        assert server.port != 0
        status, body = get_json(server, "/healthz")
        assert status == 200
        assert body["ok"] is True and body["done"] is False

    def test_views_roundtrip(self, served):
        aggregator, server = served
        status, body = get_json(server, "/views")
        assert status == 200
        snapshot = aggregator.snapshot()
        assert canonical_json(body) == snapshot.to_json()
        status, one = get_json(server, "/views/status")
        assert status == 200
        assert one["view"] == snapshot.views["status"]

    def test_unknown_view_404(self, served):
        _, server = served
        status, body = get_json(server, "/views/nope")
        assert status == 404
        assert "status" in body["views"]
        status, _ = get_json(server, "/nowhere")
        assert status == 404

    def test_non_get_405(self, served):
        _, server = served
        conn = http.client.HTTPConnection("127.0.0.1", served[1].port,
                                          timeout=30)
        try:
            conn.request("POST", "/views", body="{}")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_default_port_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_PORT", raising=False)
        assert serve_port() == DEFAULT_PORT
        monkeypatch.setenv("REPRO_SERVE_PORT", "0")
        assert serve_port() == 0
        monkeypatch.setenv("REPRO_SERVE_PORT", "nope")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            serve_port()


class TestConcurrentReaders:
    def test_midgrid_readers_converge_identically(self, served):
        """Five readers join at different moments of a live grid; every
        one reconstructs the producer's final snapshot exactly, with
        strictly increasing versions along the way."""
        aggregator, server = served
        early = [SSEReader(server.port) for _ in range(3)]
        for reader in early:
            reader.start()
        grid_error = []

        def run_grid():
            try:
                run_plan(small_plan(), jobs=1, use_cache=False,
                         backend="serial", sink=aggregator)
            except Exception as exc:
                grid_error.append(exc)
            finally:
                aggregator.mark_done()

        grid = threading.Thread(target=run_grid, daemon=True)
        grid.start()
        while aggregator.snapshot().views["status"]["done"] == 0 \
                and grid.is_alive():
            time.sleep(0.001)
        late = [SSEReader(server.port) for _ in range(2)]  # mid-grid
        for reader in late:
            reader.start()
        grid.join(timeout=300)
        assert not grid.is_alive() and not grid_error
        final = aggregator.snapshot()
        for reader in early + late:
            reader.join(timeout=60)
            assert not reader.is_alive()
            assert reader.error is None
            assert reader.done is True
            assert reader.version == final.version
            assert canonical_json(reader.views) \
                == canonical_json(dict(final.views))
            assert reader.versions == sorted(set(reader.versions))

    def test_reader_after_done_gets_final_snapshot(self, served):
        aggregator, server = served
        results = run_plan(small_plan(), jobs=1, use_cache=False,
                           backend="serial", sink=aggregator)
        aggregator.mark_done()
        reader = SSEReader(server.port)
        reader.start()
        reader.join(timeout=60)
        assert reader.error is None and reader.done is True
        assert canonical_json(reader.views) \
            == canonical_json(dict(aggregator.snapshot().views))
        assert len(results) == len(small_plan())


class TestAutoServe:
    def test_repro_serve_env_attaches_for_the_run(self, monkeypatch):
        """REPRO_SERVE=1 serves the grid for the duration of run_plan
        (ephemeral port) and tears down cleanly; results unchanged."""
        monkeypatch.setenv("REPRO_SERVE", "1")
        monkeypatch.setenv("REPRO_SERVE_PORT", "0")
        results = run_plan(small_plan(), jobs=1, use_cache=False,
                           backend="serial")
        assert len(results) == len(small_plan())
        leftovers = [t for t in threading.enumerate()
                     if t.name == "repro-serve"]
        for thread in leftovers:
            thread.join(timeout=10)
        assert not any(t.is_alive() for t in leftovers)
