"""Counters, gauges, histograms and the Prometheus text exposition."""

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    DURATION_BOUNDS,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestRegistry:
    def test_counters_accumulate_per_label_series(self):
        registry = MetricsRegistry()
        registry.inc("cache.hit")
        registry.inc("cache.hit", 2)
        registry.inc("kernel.fallback", reason="arvi")
        registry.inc("kernel.fallback", reason="redirect")
        registry.inc("kernel.fallback", reason="arvi")
        counters = {(entry["name"],
                     tuple(sorted(entry.get("labels", {}).items()))):
                    entry["value"]
                    for entry in registry.to_dict()["counters"]}
        assert counters[("cache.hit", ())] == 3
        assert counters[("kernel.fallback", (("reason", "arvi"),))] == 2
        assert counters[("kernel.fallback", (("reason", "redirect"),))] == 1

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue.depth", 7)
        registry.set_gauge("queue.depth", 3)
        [entry] = registry.to_dict()["gauges"]
        assert entry == {"name": "queue.depth", "value": 3}

    def test_histogram_buckets_sum_and_overflow(self):
        histogram = Histogram(bounds=(1, 2, 4))
        for value in (0.5, 1, 2, 3, 100):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1, 1]   # last slot is +Inf
        assert histogram.count == 5
        assert histogram.total == 106.5
        data = histogram.to_dict()
        assert data["bounds"] == [1, 2, 4]
        assert data["counts"] == [2, 1, 1, 1]

    def test_observe_picks_bounds_at_first_observation(self):
        registry = MetricsRegistry()
        registry.observe("point.duration", 0.02, bounds=DURATION_BOUNDS)
        registry.observe("engine.ddt_chain_length", 3)
        series = {entry["name"]: entry["value"]
                  for entry in registry.to_dict()["histograms"]}
        assert series["point.duration"]["bounds"] == list(DURATION_BOUNDS)
        assert series["engine.ddt_chain_length"]["bounds"] \
            == list(DEFAULT_BOUNDS)

    def test_len_counts_every_series(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        registry.inc("a")
        registry.inc("a", reason="x")      # distinct label set
        registry.set_gauge("b", 1)
        registry.observe("c", 1)
        assert len(registry) == 4


class TestMerge:
    def test_merge_adds_counters_and_histograms(self):
        """The close-time fold: worker snapshots add into the run totals."""
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("cache.hit", 2)
        worker.inc("cache.hit", 3)
        worker.inc("queue.requeue")
        parent.set_gauge("queue.depth", 9)
        worker.set_gauge("queue.depth", 1)
        parent.observe("chain", 1, bounds=(1, 2))
        worker.observe("chain", 2, bounds=(1, 2))
        worker.observe("chain", 50, bounds=(1, 2))

        parent.merge(worker.to_dict())
        merged = parent.to_dict()
        counters = {entry["name"]: entry["value"]
                    for entry in merged["counters"]}
        assert counters == {"cache.hit": 5, "queue.requeue": 1}
        [gauge] = merged["gauges"]
        assert gauge["value"] == 1            # last write (the snapshot) wins
        [histogram] = merged["histograms"]
        assert histogram["value"]["counts"] == [1, 1, 1]
        assert histogram["value"]["count"] == 3
        assert histogram["value"]["sum"] == 53

    def test_merge_round_trips_into_empty_registry(self):
        source = MetricsRegistry()
        source.inc("n", 4, kind="a")
        source.set_gauge("g", 2.5)
        source.observe("h", 7)
        target = MetricsRegistry()
        target.merge(source.to_dict())
        assert target.to_dict() == source.to_dict()

    def test_merge_tolerates_mismatched_bounds(self):
        """A shard recorded with different bucket bounds replaces rather
        than corrupts the series (bounds changed between versions)."""
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.observe("h", 1, bounds=(1, 2))
        worker.observe("h", 1, bounds=(10, 20))
        parent.merge(worker.to_dict())
        [histogram] = parent.to_dict()["histograms"]
        assert histogram["value"]["bounds"] == [10, 20]
        assert histogram["value"]["count"] == 1


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.inc("cache.hit", 3)
        registry.inc("kernel.fallback", reason="arvi")
        registry.set_gauge("queue.depth", 2)
        registry.observe("lease.age", 1.5, bounds=(1, 2))
        text = render_prometheus(registry)

        assert "# TYPE repro_cache_hit counter" in text
        assert "repro_cache_hit 3" in text
        assert 'repro_kernel_fallback{reason="arvi"} 1' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'repro_lease_age_bucket{le="1"} 0' in text
        assert 'repro_lease_age_bucket{le="2"} 1' in text
        assert 'repro_lease_age_bucket{le="+Inf"} 1' in text
        assert "repro_lease_age_sum 1.5" in text
        assert "repro_lease_age_count 1" in text
        assert text.endswith("\n")

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("trace-store.cold", **{"bench mark": "li"})
        text = render_prometheus(registry)
        assert 'repro_trace_store_cold{bench_mark="li"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
