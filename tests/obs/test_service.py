"""The flight recorder end to end, across all three backends.

The ISSUE 7 acceptance surface:

* ``REPRO_OBS=1`` leaves every ``SimulationResult`` bit-for-bit
  identical on serial, local-pool and queue backends (the do-no-harm
  invariant — telemetry observes, never feeds back);
* a queue run with an injected worker crash still yields a merged
  ledger that reconstructs the full run → plan → batch → point → phase
  span tree, including the lease-expiry/requeue lifecycle and the
  crashed worker's unclosed batch span;
* ``python -m repro.obs`` summarizes and validates those ledgers.
"""

import json

import pytest

from repro.experiments.backends import QueueBackend
from repro.experiments.plan import build_plan
from repro.experiments.scheduler import run_plan
from repro.obs.__main__ import main as obs_main
from repro.obs.ledger import build_span_tree, read_events, validate_event

PLAN_KW = dict(configurations=("baseline", "current"), depths=(20, 40),
               benchmarks=("li",), scale=0.01, warmup=50)


def small_plan():
    return build_plan(**PLAN_KW)


def queue_backend(**overrides):
    kw = dict(workers=2, lease_timeout=10.0, poll=0.01, timeout=180.0)
    kw.update(overrides)
    return QueueBackend(**kw)


@pytest.fixture(scope="module")
def reference_results():
    """The telemetry-off ground truth every obs-on run must reproduce."""
    mp = pytest.MonkeyPatch()
    mp.delenv("REPRO_OBS", raising=False)
    mp.delenv("REPRO_OBS_INTERVAL", raising=False)
    try:
        return run_plan(small_plan(), jobs=1, use_cache=False,
                        backend="serial")
    finally:
        mp.undo()


def obs_run(tmp_path, monkeypatch, *, backend, jobs=2, interval=None,
            progress=None):
    """run_plan with the flight recorder on, into a private obs root.

    Returns (results, run_dir) — exactly one run directory exists, so
    the test can inspect its ledger without racing other tests.
    """
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    if interval is None:
        monkeypatch.delenv("REPRO_OBS_INTERVAL", raising=False)
    else:
        monkeypatch.setenv("REPRO_OBS_INTERVAL", str(interval))
    results = run_plan(small_plan(), jobs=jobs, use_cache=False,
                       backend=backend, progress=progress)
    [run_dir] = [path for path in (tmp_path / "obs").iterdir()
                 if path.name.startswith("run-")]
    return results, run_dir


def load_tree(run_dir):
    events = read_events(run_dir / "ledger.jsonl")
    assert events, "merged ledger is empty"
    for record in events:
        assert validate_event(record) == [], record
    return events, build_span_tree(events)


class TestSerialLedger:
    def test_run_matches_reference_and_ledger_reconstructs(
            self, tmp_path, monkeypatch, reference_results):
        # Interval sampling observes the *engine* commit loop; since the
        # fused ARVI pass (DESIGN.md §13) every redirect config replays
        # through the compiled kernel, which has no engine loop to
        # sample.  Force the interpreted replay so the sampler runs —
        # the results must still match the kernel-on reference bit for
        # bit (the standing invariant this fixture exists to check).
        monkeypatch.setenv("REPRO_KERNEL", "0")
        results, run_dir = obs_run(tmp_path, monkeypatch,
                                   backend="serial", jobs=1, interval=64)
        assert results == reference_results

        events, tree = load_tree(run_dir)
        [run] = tree.find("run")
        assert run.closed and tree.roots == [run]
        [plan] = tree.find("plan")
        assert plan in run.children
        points = tree.find("point")
        assert len(points) == len(small_plan())
        for point in points:
            assert point.closed
            phases = [child for child in point.children
                      if child.kind == "phase"]
            assert phases, f"point {point.attrs} has no phase span"
            assert {p.name for p in phases} <= {"record", "lower",
                                                "replay", "live"}
        # Every point streamed exactly one progress event into the tree.
        progress = [e for node, _ in tree.walk() for e in node.events
                    if e["name"] == "progress"
                    and e["attrs"]["phase"] == "point"]
        assert len(progress) == len(points)

        # Interval sampling fired (64-cycle period, li runs thousands)
        # on the interpreted/live points and landed under their spans.
        intervals = [e for node, _ in tree.walk() for e in node.events
                     if e["kind"] == "interval"]
        assert intervals
        assert all(e["attrs"]["cycle"] >= 64 for e in intervals)

        metrics = json.loads((run_dir / "metrics.json").read_text())
        histograms = {entry["name"] for entry in metrics["histograms"]}
        assert "point.duration" in histograms
        assert "engine.ddt_chain_length" in histograms
        assert (run_dir / "metrics.prom").read_text().startswith("# TYPE")

    def test_cli_summary_and_validate_accept_the_run(
            self, tmp_path, monkeypatch, reference_results, capsys):
        _, run_dir = obs_run(tmp_path, monkeypatch,
                             backend="serial", jobs=1)
        assert obs_main(["summary", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "phase timing:" in out and "plan" in out
        assert "UNCLOSED" not in out
        assert obs_main(["validate", str(run_dir)]) == 0
        assert "all valid" in capsys.readouterr().out
        # tail --no-follow renders what exists and exits.
        assert obs_main(["tail", str(run_dir), "--no-follow"]) == 0

    def test_cli_validate_flags_corruption(self, tmp_path, monkeypatch,
                                           reference_results, capsys):
        _, run_dir = obs_run(tmp_path, monkeypatch,
                             backend="serial", jobs=1)
        with open(run_dir / "ledger.jsonl", "a") as handle:
            handle.write('{"v": 99, "event": "bogus"}\n')
        assert obs_main(["validate", str(run_dir)]) == 1
        assert "invalid" in capsys.readouterr().out


class TestPoolLedger:
    def test_worker_shards_merge_into_one_tree(
            self, tmp_path, monkeypatch, reference_results):
        results, run_dir = obs_run(tmp_path, monkeypatch,
                                   backend="local", jobs=2)
        assert results == reference_results

        events, tree = load_tree(run_dir)
        emitters = {e["emitter"] for e in events}
        assert "parent" in emitters
        assert any(e.startswith("worker-") for e in emitters)
        # Worker batch spans attach under the parent's plan span via the
        # shipped parent ids — one tree, not per-process islands.
        [run] = tree.find("run")
        batches = tree.find("batch")
        assert batches and all(b.closed for b in batches)
        under_run = {node.span_id for node, _ in tree.walk()}
        assert {b.span_id for b in batches} <= under_run
        assert all(not b.start["emitter"].startswith("parent")
                   for b in batches)


class TestQueueCrashAcceptance:
    def test_crashed_worker_run_reconstructs_full_span_tree(
            self, tmp_path, monkeypatch, reference_results, capsys):
        """The ISSUE acceptance scenario: a queue grid whose first worker
        hard-exits mid-batch under REPRO_OBS=1.  Results must still match
        the serial telemetry-off reference, and the merged ledger must
        tell the whole story: the span tree, the lease expiry, the
        requeue, and the crashed batch's unclosed span."""
        backend = queue_backend(lease_timeout=0.5,
                                worker_args=("--crash-after-points", "1"))
        results, run_dir = obs_run(tmp_path, monkeypatch, backend=backend)
        assert results == reference_results
        assert backend.requeues >= 1 and backend.respawns >= 1

        events, tree = load_tree(run_dir)

        # The tree spans processes: parent scheduler + queue workers.
        [run] = tree.find("run")
        assert tree.roots == [run]
        [plan] = tree.find("plan")
        batches = tree.find("batch")
        assert any(b.start["emitter"].startswith("worker-")
                   for b in batches)
        # The crash left an unclosed batch span from a worker shard.
        assert any(not b.closed for b in batches)
        # ...and the healthy retry of that batch did close, with points.
        closed = [b for b in batches if b.closed]
        assert closed
        points = tree.find("point")
        assert len(points) >= len(small_plan())
        assert all(p.closed for p in [pt for b in closed
                                      for pt in b.children
                                      if pt.kind == "point"])

        # Queue lifecycle events made it into the ledger.
        names = {e["name"] for node, _ in tree.walk()
                 for e in node.events}
        assert "submit" in names
        assert "lease_expired" in names
        assert "requeue" in names
        assert "respawn" in names
        expiries = [e for node, _ in tree.walk() for e in node.events
                    if e["name"] == "lease_expired"]
        assert all("age" in e["attrs"] and "timeout" in e["attrs"]
                   for e in expiries)

        # Queue counters survived into the merged metrics snapshot.
        metrics = json.loads((run_dir / "metrics.json").read_text())
        counters = {entry["name"]: entry["value"]
                    for entry in metrics["counters"]}
        assert counters.get("queue.lease_expired", 0) >= 1
        assert counters.get("queue.requeue", 0) >= 1
        assert counters.get("queue.worker_respawn", 0) >= 1

        # The CLI renders the crash and the ledger validates clean.
        assert obs_main(["summary", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "UNCLOSED" in out
        assert "lease_expired" in out
        assert obs_main(["validate", str(run_dir)]) == 0


class TestSatellites:
    def test_progress_events_carry_timestamp_and_duration(self):
        events = []
        run_plan(small_plan(), jobs=1, use_cache=False, backend="serial",
                 progress=events.append)
        point_events = [e for e in events if e.phase == "point"]
        assert point_events
        for event in point_events:
            assert event.timestamp > 1e9          # wall clock, not zero
            assert isinstance(event.duration, float)
            assert event.duration >= 0.0

    def test_crash_report_surfaces_structured_worker_errors(self, tmp_path):
        """The crash-loop QueueError names which batch took which worker
        down, from the workers' structured error lines."""
        from repro.experiments.backends import _crash_report
        from repro.obs.ledger import append_jsonl

        append_jsonl(tmp_path / "obs" / "worker-errors.jsonl",
                     {"worker": 41, "job": "batch-0", "batch": "batch-0",
                      "error": "RuntimeError: boom",
                      "lease": "/b/leased/batch-0.msg"})
        report = _crash_report(tmp_path)
        assert "structured worker errors" in report
        assert "batch-0" in report and "RuntimeError: boom" in report

    def test_obs_disabled_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        run_plan(small_plan(), jobs=1, use_cache=False, backend="serial")
        assert not (tmp_path / "obs").exists()
