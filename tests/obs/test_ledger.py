"""Ledger lines: schema validation, stream merging, span-tree rebuild."""

import json
import os

import pytest

from repro.obs import Telemetry
from repro.obs.ledger import (
    EVENT_SCHEMA_VERSION,
    LedgerError,
    append_jsonl,
    build_span_tree,
    iter_lines,
    merge_streams,
    read_events,
    sort_key,
    validate_event,
)


def _event(**overrides) -> dict:
    record = {"v": EVENT_SCHEMA_VERSION, "ts": 1.0, "run": "run-x",
              "emitter": "parent", "seq": 0, "event": "event",
              "name": "progress", "kind": "point"}
    record.update(overrides)
    return record


class TestValidation:
    def test_stack_emitted_lines_all_validate(self, tmp_path):
        """Every line the Telemetry class writes passes its own schema."""
        telemetry = Telemetry("run-t", tmp_path / "run-t")
        with telemetry.span("plan", kind="plan", attrs={"points": 2}):
            telemetry.emit("progress", kind="point", attrs={"completed": 1})
            telemetry.inc("cache.miss")
        with pytest.raises(RuntimeError):
            with telemetry.span("bad", kind="batch"):
                raise RuntimeError("boom")
        telemetry.close(merge=False)
        for number, _raw, record, error in iter_lines(telemetry.path):
            assert error is None, f"line {number}: {error}"
            assert validate_event(record) == [], f"line {number}"

    def test_good_event_validates_clean(self):
        assert validate_event(_event()) == []
        assert validate_event(_event(event="span_start", span="parent#0",
                                     parent=None)) == []
        assert validate_event(_event(event="span_end", span="parent#0",
                                     dur=0.25)) == []
        assert validate_event(_event(event="metrics", metrics={})) == []

    @pytest.mark.parametrize("mutation, fragment", [
        (dict(v=99), "v is 99"),
        (dict(event="bogus"), "event is 'bogus'"),
        (dict(ts="noon"), "ts is 'noon'"),
        (dict(seq=-1), "seq is -1"),
        (dict(seq=True), "seq is True"),
        (dict(event="span_start", span=""), "span"),
        (dict(event="span_start", span="s#0", parent=7), "parent is 7"),
        (dict(event="span_end", span="s#0", dur=-1), "dur is -1"),
        (dict(event="span_end", span="s#0"), "dur is None"),
        (dict(event="metrics"), "metrics"),
        (dict(attrs=[1, 2]), "attrs is list"),
    ])
    def test_bad_events_name_the_violation(self, mutation, fragment):
        errors = validate_event(_event(**mutation))
        assert errors
        assert any(fragment in error for error in errors), errors

    def test_non_object_line_is_rejected(self):
        assert validate_event([1, 2]) == ["line is list, not an object"]

    def test_read_events_strict_vs_lenient(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(json.dumps(_event()) + "\n"
                        + "{torn json\n"
                        + json.dumps(_event(seq=1)) + "\n")
        assert [e["seq"] for e in read_events(path)] == [0, 1]
        with pytest.raises(LedgerError, match="stream.jsonl:2"):
            read_events(path, strict=True)


class TestMerge:
    def test_merge_orders_across_streams(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text("".join(
            json.dumps(_event(ts=ts, emitter="parent", seq=i)) + "\n"
            for i, ts in enumerate((1.0, 3.0))))
        b.write_text("".join(
            json.dumps(_event(ts=ts, emitter="worker-1", seq=i)) + "\n"
            for i, ts in enumerate((2.0, 2.5))))
        out = tmp_path / "ledger.jsonl"
        assert merge_streams([a, b], out) == 4
        merged = read_events(out)
        assert [e["ts"] for e in merged] == [1.0, 2.0, 2.5, 3.0]
        assert merged == sorted(merged, key=sort_key)

    def test_merge_is_atomic_and_drops_torn_lines(self, tmp_path):
        """A crashed worker's torn final line is skipped and no temp file
        survives the merge — readers see a complete ledger or none."""
        a = tmp_path / "a.jsonl"
        a.write_text(json.dumps(_event()) + "\n" + '{"v":1,"truncat')
        out = tmp_path / "ledger.jsonl"
        assert merge_streams([a, tmp_path / "missing.jsonl"], out) == 1
        assert len(read_events(out)) == 1
        assert [p.name for p in tmp_path.glob("*.tmp")] == []

    def test_append_jsonl_creates_parents_and_flushes(self, tmp_path):
        path = tmp_path / "obs" / "worker-errors.jsonl"
        append_jsonl(path, {"worker": 1, "error": "boom"})
        append_jsonl(path, {"worker": 2, "error": "bang"})
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert [line["worker"] for line in lines] == [1, 2]


class TestSpanTree:
    def test_nesting_events_and_durations(self, tmp_path):
        telemetry = Telemetry("run-t", tmp_path / "run-t")
        with telemetry.span("run", kind="run"):
            with telemetry.span("plan", kind="plan"):
                with telemetry.span("batch-0", kind="batch"):
                    telemetry.emit("progress", kind="point",
                                   attrs={"completed": 1})
        telemetry.close(merge=False)
        tree = build_span_tree(read_events(telemetry.path))

        [root] = tree.roots
        assert [n.kind for n, _ in tree.walk()] == ["run", "plan", "batch"]
        assert root.closed and root.duration is not None
        [batch] = tree.find("batch")
        assert [e["name"] for e in batch.events] == ["progress"]
        assert tree.orphans == []
        assert len(tree.metrics) == 1     # the close-time snapshot

    def test_unclosed_span_marks_a_crash(self, tmp_path):
        """A worker killed mid-batch leaves span_start without span_end;
        the tree keeps the node, flagged closed=False."""
        telemetry = Telemetry("run-t", tmp_path / "run-t")
        outer = telemetry.begin_span("run", "run")
        telemetry.begin_span("batch-0", "batch")   # never ended: "crash"
        events = read_events(telemetry.path)
        telemetry._file.close()
        tree = build_span_tree(events)
        [batch] = tree.find("batch")
        assert not batch.closed and batch.duration is None
        assert tree.nodes[outer].closed is False

    def test_cross_stream_parent_arrives_late(self):
        """Shard lines can merge ahead of the parent's span_start (clock
        skew); the child is parked and attached when the parent shows."""
        child = _event(event="span_start", span="worker-9#0",
                       parent="parent#1", emitter="worker-9",
                       name="batch-0", kind="batch")
        parent_start = _event(event="span_start", span="parent#1",
                              parent=None, name="plan", kind="plan", seq=1)
        tree = build_span_tree([child, parent_start])
        [plan] = tree.roots
        assert [node.span_id for node in plan.children] == ["worker-9#0"]

    def test_parent_never_appears_child_becomes_root(self):
        child = _event(event="span_start", span="worker-9#0",
                       parent="parent#404", name="batch-0", kind="batch")
        orphan_event = _event(name="tick", span="gone#7", seq=1)
        tree = build_span_tree([child, orphan_event])
        assert [node.span_id for node in tree.roots] == ["worker-9#0"]
        assert [e["name"] for e in tree.orphans] == ["tick"]


class TestTelemetryPlumbing:
    def test_write_failure_disables_stream_not_simulation(self, tmp_path):
        """A torn-down filesystem mid-run must silently stop the stream."""
        telemetry = Telemetry("run-t", tmp_path / "run-t")
        telemetry._file.close()        # simulate the fs going away
        telemetry._closed = False
        telemetry.emit("after-teardown")   # must not raise
        assert telemetry._closed

    def test_adopt_shard_never_clobbers(self, tmp_path):
        """Re-leased jobs can produce same-named shards (same worker pid
        on a respawn); adoption renames instead of overwriting."""
        telemetry = Telemetry("run-t", tmp_path / "run-t")
        shard = tmp_path / "broker" / "worker-7.jsonl"
        shard.parent.mkdir()
        shard.write_text(json.dumps(_event(emitter="worker-7")) + "\n")
        telemetry.adopt_shard(shard)
        shard.write_text(json.dumps(_event(emitter="worker-7", seq=1)) + "\n")
        telemetry.adopt_shard(shard)
        telemetry.close(merge=False)
        names = sorted(p.name for p in
                       (tmp_path / "run-t" / "shards").iterdir())
        assert names == ["worker-7-1.jsonl", "worker-7.jsonl"]

    def test_close_merges_shards_and_folds_last_snapshot(self, tmp_path):
        """Only a shard's final (cumulative) metrics snapshot is folded —
        per-batch snapshots must not double count."""
        root = Telemetry("run-t", tmp_path / "run-t")
        root.inc("cache.miss", 2)
        shard = root.fork_shard({"run": "run-t",
                                 "dir": str(tmp_path / "run-t"),
                                 "parent": None})
        shard.inc("queue.requeue")
        shard.snapshot_event()            # after batch 1 (cumulative: 1)
        shard.inc("queue.requeue")
        shard.snapshot_event()            # after batch 2 (cumulative: 2)
        shard.close(merge=False)
        ledger = root.close()

        assert ledger is not None and ledger.name == "ledger.jsonl"
        emitters = {e["emitter"] for e in read_events(ledger)}
        assert emitters == {"parent", f"worker-{os.getpid()}"}
        metrics = json.loads(
            (tmp_path / "run-t" / "metrics.json").read_text())
        counters = {entry["name"]: entry["value"]
                    for entry in metrics["counters"]}
        assert counters == {"cache.miss": 2, "queue.requeue": 2}
        assert (tmp_path / "run-t" / "metrics.prom").read_text() \
            .startswith("# TYPE repro_cache_miss counter")
