"""Interval sampling: delta math, and the do-no-harm engine identity.

The sampler is the only telemetry that rides *inside* the fused commit
loop, so it carries the strongest obligation: attaching one must leave
the ``SimulationResult`` bit-for-bit identical for any sampling period
(the hypothesis property below), because it only ever reads counters
the engine already maintains.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.interval import IntervalSample, IntervalSampler
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind

from tests.conftest import build_counted_loop, build_memory_loop


class _FakeDDT:
    def __init__(self, in_flight=3):
        self.in_flight = in_flight

    def chain_length(self, *pregs):
        return len(pregs)


class TestSamplerUnit:
    def test_thresholds_and_interval_deltas(self):
        sampler = IntervalSampler(every=100)
        assert sampler.first_threshold == 100
        ddt = _FakeDDT(in_flight=5)

        nxt = sampler.record(130, 79, 12, ddt, (1, 2, 3),
                             cond_branches=20, final_correct=18)
        assert nxt == 200                     # next multiple of `every`
        nxt = sampler.record(250, 199, 4, ddt, (),
                             cond_branches=50, final_correct=44)
        assert nxt == 300

        first, second = sampler.samples
        assert first == IntervalSample(
            cycle=130, instructions=80, ipc=80 / 130, branches=20,
            mispredicts=2, rob_occupancy=12, ddt_in_flight=5,
            chain_length=3)
        # Second sample is deltas against the first, not run totals.
        assert second.instructions == 200
        assert second.ipc == pytest.approx(120 / 120)
        assert second.branches == 30
        assert second.mispredicts == 30 - (44 - 18)
        assert second.chain_length == 0

    def test_stalled_interval_skips_to_next_boundary(self):
        """A long stall (commit cycle jumps many periods) yields one
        sample and a boundary beyond the current cycle, never a burst."""
        sampler = IntervalSampler(every=100)
        nxt = sampler.record(1730, 9, 0, _FakeDDT(), (), 0, 0)
        assert nxt == 1800

    def test_every_is_clamped_positive(self):
        assert IntervalSampler(every=0).every == 1
        assert IntervalSampler(every=-5).every == 1

    def test_to_attrs_is_ledger_ready(self):
        sampler = IntervalSampler(every=10)
        sampler.record(10, 9, 2, _FakeDDT(in_flight=1), (4,), 3, 3)
        attrs = sampler.samples[0].to_attrs()
        assert attrs == {"cycle": 10, "instructions": 10, "ipc": 1.0,
                         "branches": 3, "mispredicts": 0,
                         "rob_occupancy": 2, "ddt_in_flight": 1,
                         "chain_length": 1}


def _run(program, sampler=None):
    config = machine_for_depth(20)
    predictor = build_predictor(LevelTwoKind.HYBRID, config)
    engine = PipelineEngine(program, config, predictor,
                            warmup_instructions=20, sampler=sampler)
    return engine.run()


@functools.lru_cache(maxsize=None)
def _baseline(loop: str):
    program = (build_counted_loop(200) if loop == "counted"
               else build_memory_loop(24))
    return program, _run(program)


class TestEngineIdentity:
    def test_sampler_collects_without_perturbing(self):
        program, expected = _baseline("counted")
        sampler = IntervalSampler(every=64)
        assert _run(program, sampler) == expected
        assert sampler.samples
        cycles = [sample.cycle for sample in sampler.samples]
        assert cycles == sorted(cycles)
        assert all(a < b for a, b in zip(cycles, cycles[1:]))
        instructions = [s.instructions for s in sampler.samples]
        assert instructions == sorted(instructions)
        assert instructions[-1] <= expected.instructions

    @settings(max_examples=25, deadline=None)
    @given(every=st.integers(1, 4096),
           loop=st.sampled_from(["counted", "memory"]))
    def test_any_period_is_bit_identical(self, every, loop):
        """The ISSUE identity property: REPRO_OBS interval sampling, at
        any period (denser-than-every-cycle through never-fires), leaves
        the SimulationResult bit-for-bit equal to an unsampled run."""
        program, expected = _baseline(loop)
        assert _run(program, IntervalSampler(every=every)) == expected
