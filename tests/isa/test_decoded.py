"""The pre-decoded table is a faithful flattening of the instructions.

The decoded per-PC table is pure derived data; these tests check it
against the original :class:`Instruction` objects field by field over
every registered workload, and pin the functional-unit classification the
engine's ``_execute`` dispatches on.
"""

import pytest

from repro.isa.decoded import (
    FU_ALU,
    FU_DIV,
    FU_LOAD,
    FU_MULT,
    FU_OTHER,
    FU_STORE,
    DecodedProgram,
)
from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    COND_BRANCH_OPS,
    LOAD_OPS,
    STORE_OPS,
    Op,
)
from repro.pipeline.functional import DynInst
from repro.workloads.registry import BENCHMARKS, get_program


@pytest.mark.parametrize("workload", BENCHMARKS)
def test_decoded_matches_instructions_over_every_workload(workload):
    program = get_program(workload, scale=0.05)
    decoded = program.decoded()
    assert len(decoded) == len(program.instructions)
    for pc, inst in enumerate(program.instructions):
        d = decoded[pc]
        assert d.pc == pc
        assert d.inst is inst
        assert d.op == int(inst.op)
        assert d.rd == inst.rd
        assert d.rs1 == inst.rs1
        assert d.rs2 == inst.rs2
        assert d.imm == inst.imm
        assert d.target == inst.target
        assert d.sources == inst.sources()
        assert d.is_load == inst.is_load
        assert d.is_store == inst.is_store
        assert d.is_cond_branch == inst.is_cond_branch
        assert d.is_halt == (inst.op is Op.HALT)
        assert d.needs_dest == (inst.rd is not None and inst.rd != 0
                                and not inst.is_store)
        assert d.byte_pc == pc * 4


@pytest.mark.parametrize("workload", BENCHMARKS)
def test_has_result_matches_executed_presence(workload):
    """``has_result`` agrees with what the handlers actually produce.

    The trace layer reconstructs result/addr/taken/store-value *presence*
    purely from the decoded opcode, so the static flags must match the
    dynamic behaviour on every executed instruction.
    """
    from repro.pipeline.functional import FunctionalCore

    program = get_program(workload, scale=0.02)
    decoded = program.decoded()
    core = FunctionalCore(program)
    for dyn in core.run(20_000):
        d = decoded[dyn.pc]
        assert (dyn.result is not None) == d.has_result, (workload, dyn)
        assert (dyn.addr is not None) == (d.is_load or d.is_store)
        assert (dyn.taken is not None) == d.is_cond_branch
        assert (dyn.store_value is not None) == d.is_store


@pytest.mark.parametrize("workload", BENCHMARKS)
def test_decoded_flags_match_dyninst_flags(workload):
    """DynInst carries the same decode the engine reads from the table."""
    program = get_program(workload, scale=0.05)
    decoded = program.decoded()
    for pc, inst in enumerate(program.instructions):
        dyn = DynInst(0, pc, inst)
        d = decoded[pc]
        assert (dyn.op, dyn.rd, dyn.rs1, dyn.rs2) == (d.op, d.rd, d.rs1,
                                                      d.rs2)
        assert (dyn.is_load, dyn.is_store, dyn.is_cond_branch) == (
            d.is_load, d.is_store, d.is_cond_branch)


def test_fu_classification_covers_every_opcode():
    decoded = DecodedProgram(
        [_inst(op) for op in Op])
    for d in decoded.insts:
        op = d.op
        if op in LOAD_OPS:
            expected = FU_LOAD
        elif op in STORE_OPS:
            expected = FU_STORE
        elif op == int(Op.MULT):
            expected = FU_MULT
        elif op in (int(Op.DIV), int(Op.REM)):
            expected = FU_DIV
        elif op in ALU_REG_OPS or op in ALU_IMM_OPS or op in COND_BRANCH_OPS:
            expected = FU_ALU
        else:
            expected = FU_OTHER
        assert d.fu_class == expected, Op(op)


def _inst(op: Op):
    """A structurally plausible instruction for each opcode category."""
    from repro.isa.instructions import Instruction

    opcode = int(op)
    if opcode in ALU_REG_OPS or opcode in (int(Op.MULT), int(Op.DIV),
                                           int(Op.REM)):
        return Instruction(op, rd=1, rs1=2, rs2=3)
    if opcode in ALU_IMM_OPS:
        if op is Op.LUI:
            return Instruction(op, rd=1, imm=4)
        return Instruction(op, rd=1, rs1=2, imm=4)
    if opcode in LOAD_OPS:
        return Instruction(op, rd=1, rs1=2, imm=0)
    if opcode in STORE_OPS:
        return Instruction(op, rs1=1, rs2=2, imm=0)
    if opcode in COND_BRANCH_OPS:
        return Instruction(op, rs1=1, rs2=2, target=0)
    if op in (Op.J, Op.JAL):
        return Instruction(op, target=0)
    if op in (Op.JR, Op.JALR):
        return Instruction(op, rd=1 if op is Op.JALR else None, rs1=2)
    return Instruction(op)


def test_decoded_table_is_cached_per_program():
    program = get_program("m88ksim", scale=0.05)
    assert program.decoded() is program.decoded()
