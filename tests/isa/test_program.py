"""Program container validation tests."""

import pytest

from repro.isa.instructions import Instruction, Op
from repro.isa.program import DATA_BASE, STACK_TOP, Program


class TestValidation:
    def test_unaligned_data_rejected(self):
        with pytest.raises(ValueError, match="unaligned"):
            Program(instructions=[Instruction(Op.HALT)],
                    data_words={DATA_BASE + 2: 5})

    def test_data_outside_memory_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Program(instructions=[Instruction(Op.HALT)],
                    data_words={0x10_0000_0000: 5})

    def test_unresolved_label_rejected(self):
        with pytest.raises(ValueError, match="unresolved"):
            Program(instructions=[
                Instruction(Op.J, target="somewhere"),
            ])

    def test_len(self):
        program = Program(instructions=[Instruction(Op.NOP),
                                        Instruction(Op.HALT)])
        assert len(program) == 2


class TestInitialMemory:
    def test_data_words_little_endian(self):
        program = Program(instructions=[Instruction(Op.HALT)],
                          data_words={DATA_BASE: 0x01020304})
        memory = program.initial_memory()
        assert memory[DATA_BASE:DATA_BASE + 4] == bytes(
            [0x04, 0x03, 0x02, 0x01])

    def test_memory_size(self):
        program = Program(instructions=[Instruction(Op.HALT)],
                          memory_bytes=1 << 16)
        assert len(program.initial_memory()) == 1 << 16

    def test_stack_top_within_default_memory(self):
        program = Program(instructions=[Instruction(Op.HALT)])
        assert STACK_TOP < program.memory_bytes


class TestListing:
    def test_listing_orders_labels_before_instructions(self):
        program = Program(
            instructions=[Instruction(Op.NOP), Instruction(Op.HALT)],
            labels={"main": 0, "end": 1})
        lines = program.listing().splitlines()
        assert lines[0] == "main:"
        assert "nop" in lines[1]
        assert "end:" in lines[2]
