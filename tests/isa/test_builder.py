"""Tests for the structured assembly builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.isa.builder as bld
from repro.isa import AsmBuilder, eq, eqz, ge, gt, le, lt, ne, nez
from repro.isa.program import DATA_BASE
from repro.isa.regs import a0, ra, s0, t0, t1, t2, v0, zero
from repro.pipeline.functional import FunctionalCore


def run(builder: AsmBuilder, max_instructions: int = 200_000) -> FunctionalCore:
    core = FunctionalCore(builder.build())
    core.run_to_completion(max_instructions)
    assert core.halted, "program did not halt"
    return core


class TestLoadImmediate:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 42, 32767, -32768, 32768, 0x12345678, 0xFFFFFFFF,
        0x7FFFFFFF, 0x80000000, 0xABCD0000,
    ])
    def test_li_values(self, value):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, value)
        b.halt()
        core = run(b)
        assert core.registers[t0] == value & 0xFFFFFFFF

    def test_small_li_is_one_instruction(self):
        b = AsmBuilder()
        b.li(t0, 100)
        assert b.pc == 1

    def test_large_li_is_two_instructions(self):
        b = AsmBuilder()
        b.li(t0, 0x12345678)
        assert b.pc == 2

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 32) - 1))
    @settings(max_examples=40, deadline=None)
    def test_li_roundtrip_property(self, value):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, value)
        b.halt()
        assert run(b).registers[t0] == value & 0xFFFFFFFF


class TestStructuredControl:
    def test_if_taken_and_skipped(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 5)
        b.li(t1, 0)
        with b.if_(eq(t0, 5, imm=True)):
            b.addi(t1, t1, 1)
        with b.if_(eq(t0, 6, imm=True)):
            b.addi(t1, t1, 100)
        b.halt()
        assert run(b).registers[t1] == 1

    def test_ifelse_both_arms(self):
        for value, expected in [(3, 10), (7, 20)]:
            b = AsmBuilder()
            b.label("main")
            b.li(t0, value)
            block = b.ifelse(lt(t0, 5, imm=True))
            with block:
                b.li(t1, 10)
                block.else_()
                b.li(t1, 20)
            b.halt()
            assert run(b).registers[t1] == expected

    def test_ifelse_double_else_rejected(self):
        b = AsmBuilder()
        b.li(t0, 1)
        block = b.ifelse(eqz(t0))
        with pytest.raises(RuntimeError):
            with block:
                block.else_()
                block.else_()

    def test_while_loop(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 7)
        b.li(t1, 0)
        with b.while_(nez(t0)):
            b.addi(t1, t1, 2)
            b.addi(t0, t0, -1)
        b.halt()
        assert run(b).registers[t1] == 14

    def test_while_false_never_runs(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 0)
        b.li(t1, 99)
        with b.while_(nez(t0)):
            b.li(t1, 0)
        b.halt()
        assert run(b).registers[t1] == 99

    @pytest.mark.parametrize("start,stop,step", [
        (0, 10, 1), (0, 10, 2), (5, 5, 1), (10, 0, -1), (0, 9, 3),
    ])
    def test_for_range_matches_python(self, start, stop, step):
        b = AsmBuilder()
        b.label("main")
        b.li(t1, 0)
        with b.for_range(t0, start, stop, step=step):
            b.add(t1, t1, t0)
        b.halt()
        expected = sum(range(start, stop, step)) & 0xFFFFFFFF
        assert run(b).registers[t1] == expected

    def test_for_range_with_stop_reg(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t2, 6)
        b.li(t1, 0)
        with b.for_range(t0, 0, stop_reg=t2):
            b.addi(t1, t1, 1)
        b.halt()
        assert run(b).registers[t1] == 6

    def test_for_range_argument_errors(self):
        b = AsmBuilder()
        with pytest.raises(ValueError):
            with b.for_range(t0, 0):
                pass
        with pytest.raises(ValueError):
            with b.for_range(t0, 0, 5, step=0):
                pass

    def test_break_and_continue(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t1, 0)
        with b.for_range(t0, 0, 100):
            with b.if_(eq(t0, 3, imm=True)):
                b.continue_()
            with b.if_(eq(t0, 6, imm=True)):
                b.break_()
            b.addi(t1, t1, 1)
        b.halt()
        # i = 0,1,2,4,5 increment; 3 skipped; stop at 6.
        assert run(b).registers[t1] == 5

    def test_break_outside_loop_rejected(self):
        b = AsmBuilder()
        with pytest.raises(RuntimeError):
            b.break_()
        with pytest.raises(RuntimeError):
            b.continue_()

    def test_infinite_loop_with_break(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 0)
        with b.loop():
            b.addi(t0, t0, 1)
            with b.if_(ge(t0, 5, imm=True)):
                b.break_()
        b.halt()
        assert run(b).registers[t0] == 5

    def test_nested_loops(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t2, 0)
        with b.for_range(t0, 0, 4):
            with b.for_range(t1, 0, 3):
                b.addi(t2, t2, 1)
        b.halt()
        assert run(b).registers[t2] == 12


class TestConditionHelpers:
    @pytest.mark.parametrize("cond_fn,a_val,b_val,expected", [
        (eq, 4, 4, True), (ne, 4, 5, True), (lt, 3, 4, True),
        (ge, 4, 4, True), (le, 4, 4, True), (gt, 5, 4, True),
        (eq, 4, 5, False), (gt, 4, 5, False),
    ])
    def test_reg_reg_conditions(self, cond_fn, a_val, b_val, expected):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, a_val)
        b.li(t1, b_val)
        b.li(t2, 0)
        with b.if_(cond_fn(t0, t1)):
            b.li(t2, 1)
        b.halt()
        assert run(b).registers[t2] == int(expected)


class TestFunctions:
    def test_call_and_return(self):
        b = AsmBuilder()
        b.label("main")
        b.li(a0, 21)
        b.jal("double")
        b.move(t0, v0)
        b.halt()
        with b.func("double"):
            b.add(v0, a0, a0)
        assert run(b).registers[t0] == 42

    def test_early_ret(self):
        b = AsmBuilder()
        b.label("main")
        b.li(a0, 0)
        b.jal("classify")
        b.move(t0, v0)
        b.halt()
        with b.func("classify"):
            with b.if_(eqz(a0)):
                b.li(v0, 111)
                b.ret()
            b.li(v0, 222)
        assert run(b).registers[t0] == 111

    def test_callee_saved_registers_restored(self):
        b = AsmBuilder()
        b.label("main")
        b.li(s0, 7)
        b.jal("clobber")
        b.move(t0, s0)
        b.halt()
        with b.func("clobber", save=(s0,)):
            b.li(s0, 999)
        assert run(b).registers[t0] == 7

    def test_nested_calls(self):
        b = AsmBuilder()
        b.label("main")
        b.li(a0, 5)
        b.jal("outer")
        b.move(t0, v0)
        b.halt()
        with b.func("outer"):
            b.jal("inner")
            b.addi(v0, v0, 1)
        with b.func("inner"):
            b.add(v0, a0, a0)
        assert run(b).registers[t0] == 11

    def test_ret_outside_func_rejected(self):
        b = AsmBuilder()
        with pytest.raises(RuntimeError):
            b.ret()


class TestDataAndLabels:
    def test_data_word_layout_is_sequential(self):
        b = AsmBuilder()
        addr1 = b.data_word("a", 1, 2, 3)
        addr2 = b.data_word("b", 4)
        assert addr1 == DATA_BASE
        assert addr2 == DATA_BASE + 12
        assert b.data_addr("b") == addr2

    def test_data_space_zeroed(self):
        b = AsmBuilder()
        b.data_space("buf", 4)
        b.label("main")
        b.la(t0, "buf")
        b.lw(t1, t0, 8)
        b.halt()
        assert run(b).registers[t1] == 0

    def test_set_data_word_overwrites(self):
        b = AsmBuilder()
        addr = b.data_word("x", 1)
        b.set_data_word(addr, 99)
        b.label("main")
        b.la(t0, "x")
        b.lw(t1, t0, 0)
        b.halt()
        assert run(b).registers[t1] == 99

    def test_set_data_word_validates(self):
        b = AsmBuilder()
        addr = b.data_word("x", 1)
        with pytest.raises(ValueError, match="unaligned"):
            b.set_data_word(addr + 2, 5)
        with pytest.raises(ValueError, match="never allocated"):
            b.set_data_word(addr + 4, 5)

    def test_duplicate_label_rejected(self):
        b = AsmBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_duplicate_data_label_rejected(self):
        b = AsmBuilder()
        b.data_word("x", 1)
        with pytest.raises(ValueError):
            b.data_space("x", 1)

    def test_undefined_branch_label_rejected(self):
        b = AsmBuilder()
        b.label("main")
        b.j("nowhere")
        with pytest.raises(ValueError, match="nowhere"):
            b.build()

    def test_entry_defaults_to_main(self):
        b = AsmBuilder()
        b.nop()
        b.label("main")
        b.halt()
        assert b.build().entry == 1

    def test_explicit_entry(self):
        b = AsmBuilder()
        b.label("start")
        b.halt()
        assert b.build(entry="start").entry == 0
        assert b.build(entry=0).entry == 0


class TestPseudoInstructions:
    def test_move_neg_not(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 12)
        b.move(t1, t0)
        b.neg(t2, t0)
        b.not_(a0, zero)
        b.halt()
        core = run(b)
        assert core.registers[t1] == 12
        assert core.registers[t2] == (-12) & 0xFFFFFFFF
        assert core.registers[a0] == 0xFFFFFFFF

    def test_push_pop_roundtrip(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 3)
        b.li(t1, 4)
        b.push(t0, t1)
        b.li(t0, 0)
        b.li(t1, 0)
        b.pop(t0, t1)
        b.halt()
        core = run(b)
        assert core.registers[t0] == 3
        assert core.registers[t1] == 4
