"""Tests for the text assembler."""

import pytest

from repro.isa import AssemblyError, assemble
from repro.isa.instructions import Op
from repro.isa.regs import t0, t1, t2
from repro.pipeline.functional import FunctionalCore


def run_source(source: str) -> FunctionalCore:
    core = FunctionalCore(assemble(source))
    core.run_to_completion(100_000)
    assert core.halted
    return core


class TestBasicAssembly:
    def test_arithmetic_program(self):
        core = run_source("""
        main:
            li   $t0, 6
            li   $t1, 7
            mult $t2, $t0, $t1
            halt
        """)
        assert core.registers[t2] == 42

    def test_comments_and_blank_lines(self):
        core = run_source("""
        # leading comment
        main:  li $t0, 1   # trailing comment

               ; semicolon comment
               halt
        """)
        assert core.registers[t0] == 1

    def test_branches_and_labels(self):
        core = run_source("""
        main:   li   $t0, 5
                li   $t1, 0
        loop:   addi $t1, $t1, 3
                addi $t0, $t0, -1
                bne  $t0, $zero, loop
                halt
        """)
        assert core.registers[t1] == 15

    def test_data_section_and_loads(self):
        core = run_source("""
        .data
        values: .word 10, 20, 30
        buffer: .space 8
        .text
        main:   la $t0, values
                lw $t1, 8($t0)
                la $t2, buffer
                sw $t1, 4($t2)
                lw $t2, 4($t2)
                halt
        """)
        assert core.registers[t1] == 30
        assert core.registers[t2] == 30

    def test_byte_access(self):
        core = run_source("""
        .data
        word: .word 0x01020304
        .text
        main:  la  $t0, word
               lbu $t1, 1($t0)
               halt
        """)
        assert core.registers[t1] == 0x03  # little-endian byte 1

    def test_jal_jr(self):
        core = run_source("""
        main:  li  $a0, 4
               jal square
               move $t0, $v0
               halt
        square:
               mult $v0, $a0, $a0
               jr  $ra
        """)
        assert core.registers[t0] == 16

    def test_pseudo_b(self):
        core = run_source("""
        main:  li $t0, 1
               b  over
               li $t0, 99
        over:  halt
        """)
        assert core.registers[t0] == 1

    def test_multiple_labels_same_line(self):
        program = assemble("a: b_label: add $t0, $t0, $t0\n halt")
        assert program.labels["a"] == 0
        assert program.labels["b_label"] == 0


class TestAssemblyErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("main: frobnicate $t0, $t1")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("main: add $t0, $t1, $zz")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("main: lw $t0, 4[$t1]")

    def test_undefined_label_at_build(self):
        with pytest.raises(ValueError):
            assemble("main: j nowhere")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblyError, match="data"):
            assemble(".data\n add $t0, $t0, $t0")

    def test_unaligned_space(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nbuf: .space 3")

    def test_error_reports_line_number(self):
        try:
            assemble("main: li $t0, 1\n bogus $t0")
        except AssemblyError as exc:
            assert exc.lineno == 2
        else:  # pragma: no cover
            pytest.fail("expected AssemblyError")


class TestRoundTrip:
    def test_assembled_ops_match(self):
        program = assemble("""
        main: add  $t0, $t1, $t2
              addi $t0, $t0, 5
              lw   $t1, 0($t0)
              sw   $t1, 4($t0)
              beq  $t0, $t1, main
              halt
        """)
        ops = [inst.op for inst in program.instructions]
        assert ops == [Op.ADD, Op.ADDI, Op.LW, Op.SW, Op.BEQ, Op.HALT]

    def test_listing_contains_labels(self):
        program = assemble("main: nop\n halt")
        listing = program.listing()
        assert "main:" in listing
        assert "nop" in listing
