"""Unit tests for instruction definitions and helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    COND_BRANCH_OPS,
    JUMP_OPS,
    LOAD_OPS,
    NEGATED_BRANCH,
    STORE_OPS,
    Instruction,
    Op,
    branch_taken,
    disassemble,
    parse_reg,
    to_s32,
    to_u32,
    validate,
)


class TestWordArithmetic:
    def test_to_u32_wraps(self):
        assert to_u32(0x1_0000_0005) == 5
        assert to_u32(-1) == 0xFFFFFFFF

    def test_to_s32_sign(self):
        assert to_s32(0xFFFFFFFF) == -1
        assert to_s32(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_s32(0x80000000) == -(1 << 31)

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_roundtrip(self, value):
        assert to_u32(to_s32(value)) == to_u32(value)
        assert -(1 << 31) <= to_s32(value) < (1 << 31)


class TestParseReg:
    @pytest.mark.parametrize("token,expected", [
        ("$t0", 8), ("t0", 8), ("$zero", 0), ("$ra", 31),
        ("$5", 5), ("r17", 17), ("$sp", 29),
    ])
    def test_accepts(self, token, expected):
        assert parse_reg(token) == expected

    @pytest.mark.parametrize("token", ["$t99", "r32", "$x1", "", "$-1"])
    def test_rejects(self, token):
        with pytest.raises(ValueError):
            parse_reg(token)


class TestCategories:
    def test_disjoint(self):
        groups = [ALU_REG_OPS, ALU_IMM_OPS, LOAD_OPS, STORE_OPS,
                  COND_BRANCH_OPS, JUMP_OPS]
        seen = set()
        for group in groups:
            assert not (seen & group)
            seen |= group

    def test_every_branch_has_negation(self):
        for op_int in COND_BRANCH_OPS:
            op = Op(op_int)
            assert NEGATED_BRANCH[NEGATED_BRANCH[op]] is op

    def test_instruction_category_properties(self):
        load = Instruction(Op.LW, rd=1, rs1=2)
        store = Instruction(Op.SW, rs1=2, rs2=3)
        branch = Instruction(Op.BEQ, rs1=1, rs2=2, target=0)
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem
        assert branch.is_cond_branch and branch.is_control
        assert Instruction(Op.J, target=0).is_jump


class TestBranchTaken:
    @pytest.mark.parametrize("op,a,b,expected", [
        (Op.BEQ, 5, 5, True), (Op.BEQ, 5, 6, False),
        (Op.BNE, 5, 6, True), (Op.BNE, 5, 5, False),
        (Op.BLT, 1, 2, True), (Op.BLT, 2, 1, False),
        (Op.BGE, 2, 2, True), (Op.BLE, 2, 2, True),
        (Op.BGT, 3, 2, True), (Op.BGT, 2, 3, False),
    ])
    def test_basic(self, op, a, b, expected):
        assert branch_taken(op, a, b) is expected

    def test_signed_comparison(self):
        # 0xFFFFFFFF is -1 signed: less than 0.
        assert branch_taken(Op.BLT, 0xFFFFFFFF, 0)
        assert not branch_taken(Op.BGT, 0xFFFFFFFF, 0)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            branch_taken(Op.ADD, 0, 0)

    @given(st.sampled_from(sorted(COND_BRANCH_OPS)),
           st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    def test_negation_is_complement(self, op_int, a, b):
        op = Op(op_int)
        assert branch_taken(op, a, b) != branch_taken(NEGATED_BRANCH[op], a, b)


class TestValidateAndDisassemble:
    def test_validate_catches_missing_operands(self):
        with pytest.raises(ValueError):
            validate(Instruction(Op.ADD, rd=1, rs1=2))  # missing rs2
        with pytest.raises(ValueError):
            validate(Instruction(Op.LW, rd=1))           # missing base
        with pytest.raises(ValueError):
            validate(Instruction(Op.BEQ, rs1=1, rs2=2))  # missing target

    def test_validate_accepts_good_instructions(self):
        validate(Instruction(Op.ADD, rd=1, rs1=2, rs2=3))
        validate(Instruction(Op.SW, rs1=2, rs2=3, imm=4))
        validate(Instruction(Op.J, target=7))

    def test_disassemble_forms(self):
        assert disassemble(
            Instruction(Op.ADD, rd=8, rs1=9, rs2=10)) == "add $t0, $t1, $t2"
        assert disassemble(
            Instruction(Op.LW, rd=8, rs1=29, imm=4)) == "lw $t0, 4($sp)"
        assert disassemble(
            Instruction(Op.SW, rs1=29, rs2=8, imm=-8)) == "sw $t0, -8($sp)"
        assert "beq" in disassemble(
            Instruction(Op.BEQ, rs1=8, rs2=0, target="loop"))
