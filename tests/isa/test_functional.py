"""Tests for the functional (architectural) core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import AsmBuilder, assemble
from repro.isa.instructions import Op, to_s32, to_u32
from repro.isa.program import STACK_TOP
from repro.isa.regs import a0, gp, ra, s0, sp, t0, t1, t2, v0, zero
from repro.pipeline.functional import DynInst, ExecutionError, FunctionalCore

WORD = 0xFFFFFFFF


def execute(setup) -> FunctionalCore:
    b = AsmBuilder()
    b.label("main")
    setup(b)
    b.halt()
    core = FunctionalCore(b.build())
    core.run_to_completion(100_000)
    assert core.halted
    return core


class TestAluSemantics:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("add", 0xFFFFFFFF, 1, 0),
        ("sub", 3, 4, (-1) & WORD),
        ("and_", 0b1100, 0b1010, 0b1000),
        ("or_", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("nor", 0, 0, WORD),
        ("sll", 1, 5, 32),
        ("srl", 0x80000000, 31, 1),
        ("sra", 0x80000000, 31, WORD),
        ("slt", 1, 2, 1),
        ("slt", 0xFFFFFFFF, 0, 1),   # signed: -1 < 0
        ("sltu", 0xFFFFFFFF, 0, 0),  # unsigned: max > 0
        ("mult", 100000, 100000, (100000 * 100000) & WORD),
        ("div", 17, 5, 3),
        ("div", (-17) & WORD, 5, (-3) & WORD),  # truncation toward zero
        ("rem", 17, 5, 2),
        ("rem", (-17) & WORD, 5, (-2) & WORD),
    ])
    def test_reg_ops(self, op, a, b, expected):
        def setup(builder):
            builder.li(t0, a)
            builder.li(t1, b)
            getattr(builder, op)(t2, t0, t1)
        assert execute(setup).registers[t2] == expected

    def test_div_by_zero_yields_zero(self):
        def setup(b):
            b.li(t0, 7)
            b.li(t1, 0)
            b.div(t2, t0, t1)
        assert execute(setup).registers[t2] == 0

    @pytest.mark.parametrize("op,a,imm,expected", [
        ("addi", 10, -3, 7),
        ("andi", 0xFF, 0x0F, 0x0F),
        ("ori", 0xF0, 0x0F, 0xFF),
        ("xori", 0xFF, 0x0F, 0xF0),
        ("slti", 3, 4, 1),
        ("slli", 3, 4, 48),
        ("srli", 256, 4, 16),
        ("srai", (-256) & WORD, 4, (-16) & WORD),
    ])
    def test_imm_ops(self, op, a, imm, expected):
        def setup(builder):
            builder.li(t0, a)
            getattr(builder, op)(t2, t0, imm)
        assert execute(setup).registers[t2] == expected

    def test_lui(self):
        def setup(b):
            b.lui(t2, 0x1234)
        assert execute(setup).registers[t2] == 0x12340000

    @given(st.integers(0, WORD), st.integers(0, WORD))
    @settings(max_examples=30, deadline=None)
    def test_add_matches_python_model(self, a, b):
        def setup(builder):
            builder.li(t0, a)
            builder.li(t1, b)
            builder.add(t2, t0, t1)
        assert execute(setup).registers[t2] == (a + b) & WORD


class TestRegisterZero:
    def test_writes_to_zero_discarded(self):
        def setup(b):
            b.li(t0, 5)
            b.add(zero, t0, t0)
            b.move(t1, zero)
        core = execute(setup)
        assert core.registers[zero] == 0
        assert core.registers[t1] == 0

    def test_initial_pointers(self):
        core = FunctionalCore(assemble("main: halt"))
        assert core.registers[sp] == STACK_TOP
        assert core.registers[gp] != 0


class TestMemorySemantics:
    def test_store_load_word(self):
        def setup(b):
            b.data_space("buf", 2)
            b.la(t0, "buf")
            b.li(t1, 0xDEADBEEF)
            b.sw(t1, t0, 4)
            b.lw(t2, t0, 4)
        assert execute(setup).registers[t2] == 0xDEADBEEF

    def test_byte_store_load_signed(self):
        def setup(b):
            b.data_space("buf", 1)
            b.la(t0, "buf")
            b.li(t1, 0x80)
            b.sb(t1, t0, 0)
            b.lb(t2, t0, 0)
        assert execute(setup).registers[t2] == (-128) & WORD

    def test_byte_store_load_unsigned(self):
        def setup(b):
            b.data_space("buf", 1)
            b.la(t0, "buf")
            b.li(t1, 0x80)
            b.sb(t1, t0, 0)
            b.lbu(t2, t0, 0)
        assert execute(setup).registers[t2] == 0x80

    def test_unaligned_word_access_faults(self):
        b = AsmBuilder()
        b.data_space("buf", 2)
        b.label("main")
        b.la(t0, "buf")
        b.lw(t1, t0, 2)
        b.halt()
        core = FunctionalCore(b.build())
        with pytest.raises(ExecutionError, match="unaligned"):
            core.run_to_completion()

    def test_out_of_range_access_faults(self):
        b = AsmBuilder()
        b.label("main")
        b.li(t0, 0x7FFFFFF0)
        b.lw(t1, t0, 0)
        b.halt()
        with pytest.raises(ExecutionError, match="out of range"):
            FunctionalCore(b.build()).run_to_completion()


class TestControlFlow:
    def test_jal_links_return_address(self):
        program = assemble("""
        main: jal f
              halt
        f:    jr $ra
        """)
        core = FunctionalCore(program)
        stream = list(core.run())
        jal = next(d for d in stream if d.op == Op.JAL)
        assert jal.result == 1  # return to instruction index 1

    def test_branch_dyninst_records_outcome(self):
        program = assemble("""
        main: li  $t0, 1
              beq $t0, $zero, skip
              li  $t1, 5
        skip: halt
        """)
        stream = list(FunctionalCore(program).run())
        branch = next(d for d in stream if d.is_cond_branch)
        assert branch.taken is False
        assert branch.next_pc == branch.pc + 1

    def test_taken_branch_next_pc(self):
        program = assemble("""
        main: li  $t0, 0
              beq $t0, $zero, skip
              li  $t1, 5
        skip: halt
        """)
        stream = list(FunctionalCore(program).run())
        branch = next(d for d in stream if d.is_cond_branch)
        assert branch.taken is True
        assert branch.next_pc == program.labels["skip"]

    def test_pc_out_of_range_faults(self):
        program = assemble("main: jr $t0")  # t0 = 0... jumps to main: loops
        core = FunctionalCore(program)
        # jr to pc 0 loops forever: bounded run, no fault.
        core.run_to_completion(max_instructions=10)
        assert core.instruction_count == 10

    def test_instruction_budget_stops_run(self):
        program = assemble("main: j main")
        core = FunctionalCore(program)
        assert core.run_to_completion(max_instructions=25) == 25
        assert not core.halted


class TestDynInstRecords:
    def test_load_records_address_and_value(self):
        def stream_of(source):
            return list(FunctionalCore(assemble(source)).run())

        stream = stream_of("""
        .data
        w: .word 77
        .text
        main: la $t0, w
              lw $t1, 0($t0)
              halt
        """)
        load = next(d for d in stream if d.is_load)
        assert load.result == 77
        assert load.addr is not None and load.addr % 4 == 0

    def test_store_records_value(self):
        stream = list(FunctionalCore(assemble("""
        .data
        w: .word 0
        .text
        main: la $t0, w
              li $t1, 9
              sw $t1, 0($t0)
              halt
        """)).run())
        store = next(d for d in stream if d.is_store)
        assert store.store_value == 9

    def test_sequence_numbers_monotone(self):
        stream = list(FunctionalCore(assemble("""
        main: li $t0, 3
        l:    addi $t0, $t0, -1
              bne $t0, $zero, l
              halt
        """)).run())
        assert [d.seq for d in stream] == list(range(len(stream)))
