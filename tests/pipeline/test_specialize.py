"""Trace-specialized replay codegen (DESIGN.md §13).

The invariant stack, top to bottom: the generated per-workload replay
module is bit-for-bit equal (``==``) to ``kernel_run`` — and therefore
to the interpreted replay and the live run — over every registered
workload, both stream kinds, depths, warmups and budgets; the on-disk
codegen cache never executes unverified content (a corrupted, truncated
or hand-edited module is a checksum miss that regenerates, never an
import of divergent code); and the ``REPRO_KERNEL_SPEC`` knob threads
the tier through ``execute_point`` with ``kernel_source="specialized"``
observability.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.plan import ExperimentPoint
from repro.experiments.runner import execute_point
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.pipeline.kernel import KernelUnsupported, kernel_run
from repro.pipeline.specialize import (
    _checksum_header,
    default_spec_dir,
    specialized_run,
)
from repro.pipeline.trace import TraceReplayCore, record_trace
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import SPECS, get_program

SCALE = 0.05


@pytest.fixture(scope="module")
def program():
    return get_program("m88ksim", scale=SCALE, seed=1)


@pytest.fixture(scope="module")
def trace(program):
    return record_trace(program)


def _fresh(spec_dir, program, trace, **kwargs):
    """A cold specialized run: drop the in-memory cache first so the
    disk path (load-or-generate) is exercised, not the memo."""
    if trace._lowered_cache is not None:
        trace._lowered_cache._specialized = None
    return specialized_run(program, trace, machine_for_depth(
        kwargs.pop("depth", 20)), spec_dir=spec_dir, **kwargs)


class TestEquality:
    @pytest.mark.parametrize("kind", [LevelTwoKind.HYBRID,
                                      LevelTwoKind.NONE])
    @pytest.mark.parametrize("depth", [20, 60])
    def test_specialized_equals_kernel_equals_interpreted(
            self, program, trace, tmp_path, kind, depth):
        config = machine_for_depth(depth)
        specialized = specialized_run(program, trace, config, kind,
                                      warmup_instructions=500,
                                      spec_dir=tmp_path)
        kernel = kernel_run(program, trace, config, kind,
                            warmup_instructions=500)
        predictor = build_predictor(kind, config)
        interpreted = PipelineEngine(
            program, config, predictor, warmup_instructions=500,
            core=TraceReplayCore(program, trace)).run()
        assert specialized == kernel
        assert kernel == interpreted

    @pytest.mark.parametrize("workload", sorted(SPECS))
    def test_every_workload(self, tmp_path, workload):
        program = get_program(workload, scale=0.02, seed=1)
        trace = record_trace(program)
        config = machine_for_depth(20)
        specialized = specialized_run(program, trace, config,
                                      warmup_instructions=100,
                                      spec_dir=tmp_path)
        assert specialized == kernel_run(program, trace, config,
                                         warmup_instructions=100)

    def test_disk_cache_round_trip(self, program, trace, tmp_path):
        first = _fresh(tmp_path, program, trace, warmup_instructions=500)
        files = list(tmp_path.glob("*.py"))
        assert len(files) == 1  # one module per (trace, baked constants)
        before = files[0].read_bytes()
        # A later (cold) process loads the cached module instead of
        # regenerating: same result, file untouched.
        second = _fresh(tmp_path, program, trace, warmup_instructions=500)
        assert second == first
        assert files[0].read_bytes() == before


@functools.lru_cache(maxsize=1)
def _small():
    """A small (program, trace, spec_dir) triple the property replays
    (built once; hypothesis forbids function-scoped fixtures)."""
    import tempfile

    program = get_program("li", scale=0.01, seed=1)
    return program, record_trace(program), tempfile.mkdtemp(
        prefix="repro-spec-test-")


class TestBudgetProperty:
    """Specialized == kernel at any (depth, warmup, budget) draw — the
    dispatch loop's budget-truncated tail (a segment cut mid-shape falls
    back to the generic loop) must agree with the kernel's plain loop."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_specialized_matches_kernel_at_any_draw(self, data):
        program, trace, spec_dir = _small()
        depth = data.draw(st.sampled_from([20, 40, 60]), label="depth")
        warmup = data.draw(st.integers(0, 60), label="warmup")
        budget = data.draw(st.integers(0, trace.length), label="budget")
        specialized = specialized_run(
            program, trace, machine_for_depth(depth),
            warmup_instructions=warmup, max_instructions=budget,
            spec_dir=spec_dir)
        kernel = kernel_run(program, trace, machine_for_depth(depth),
                            warmup_instructions=warmup,
                            max_instructions=budget)
        assert specialized == kernel


class TestPoisonedCache:
    """The codegen cache trusts nothing it did not just verify: the
    first line must be the SHA-256 of the remainder, so any mangled
    file regenerates — divergent code is never compiled or executed."""

    def _cached_file(self, spec_dir, program, trace):
        result = _fresh(spec_dir, program, trace, warmup_instructions=500)
        (path,) = spec_dir.glob("*.py")
        return result, path

    @pytest.mark.parametrize("poison", [
        b"",                              # emptied
        b"garbage, not even a header\n",  # replaced wholesale
        None,                             # truncated (half the file)
    ])
    def test_corrupt_module_regenerates(self, program, trace, tmp_path,
                                        poison):
        expected, path = self._cached_file(tmp_path, program, trace)
        pristine = path.read_bytes()
        path.write_bytes(pristine[:len(pristine) // 2]
                         if poison is None else poison)
        result = _fresh(tmp_path, program, trace, warmup_instructions=500)
        assert result == expected
        assert path.read_bytes() == pristine  # rewritten, verified form

    def test_hand_edited_module_never_executes(self, program, trace,
                                               tmp_path):
        """A stale/divergent module body fails the checksum and is
        discarded unexecuted — the planted import-time bomb proves the
        poisoned text was never even compiled into a live module."""
        expected, path = self._cached_file(tmp_path, program, trace)
        pristine = path.read_text()
        header, body = pristine.split("\n", 1)
        path.write_text(header + "\n"
                        + "raise AssertionError('poisoned module ran')\n"
                        + body)
        result = _fresh(tmp_path, program, trace, warmup_instructions=500)
        assert result == expected
        assert path.read_text() == pristine

    def test_checksummed_payload_shape(self, program, trace, tmp_path):
        _, path = self._cached_file(tmp_path, program, trace)
        header, body = path.read_text().split("\n", 1)
        assert header == _checksum_header(body)


class TestFallback:
    def test_arvi_kind_is_unsupported(self, program, trace, tmp_path):
        # The fused ARVI pass keeps live per-config DDT/RSE state no
        # decision stream can bake; the specializer declines (naming the
        # workload) and the caller falls through to kernel_run.
        with pytest.raises(KernelUnsupported, match="m88ksim"):
            specialized_run(program, trace, machine_for_depth(20),
                            LevelTwoKind.ARVI, spec_dir=tmp_path)

    def test_wrongpath_is_unsupported(self, program, trace, tmp_path):
        with pytest.raises(KernelUnsupported, match="redirect"):
            specialized_run(
                program, trace,
                machine_for_depth(20, speculation="wrongpath"),
                spec_dir=tmp_path)


class TestExecutePoint:
    """The REPRO_KERNEL_SPEC knob and kernel_source observability."""

    def _point(self, **overrides):
        fields = dict(benchmark="m88ksim", configuration="baseline",
                      pipeline_depth=40, scale=SCALE, warmup=500)
        fields.update(overrides)
        return ExperimentPoint(**fields).resolve()

    def test_spec_on_off_equality_and_source(self, program, trace,
                                             tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_SPEC_DIR", str(tmp_path))
        if trace._lowered_cache is not None:
            # Drop the in-memory memo so the codegen actually runs (and
            # writes) under this test's REPRO_KERNEL_SPEC_DIR.
            trace._lowered_cache._specialized = None
        point = self._point()
        info_spec, info_kernel = {}, {}
        monkeypatch.setenv("REPRO_KERNEL_SPEC", "1")
        spec = execute_point(point, trace=trace, info=info_spec)
        monkeypatch.setenv("REPRO_KERNEL_SPEC", "0")
        kernel = execute_point(point, trace=trace, info=info_kernel)
        assert spec == kernel
        assert info_spec["kernel_source"] == "specialized"
        assert info_kernel["kernel_source"] == "kernel"
        assert list(tmp_path.glob("*.py"))  # REPRO_KERNEL_SPEC_DIR used

    def test_spec_defaults_off(self, program, trace, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_SPEC", raising=False)
        info = {}
        execute_point(self._point(), trace=trace, info=info)
        assert info["kernel_source"] == "kernel"

    def test_arvi_points_use_the_fused_kernel(self, program, trace,
                                              tmp_path, monkeypatch):
        # REPRO_KERNEL_SPEC only covers the stream kinds: an ARVI point
        # with the knob on still replays through the fused kernel pass.
        monkeypatch.setenv("REPRO_KERNEL_SPEC", "1")
        monkeypatch.setenv("REPRO_KERNEL_SPEC_DIR", str(tmp_path))
        info = {}
        arvi = execute_point(self._point(configuration="current"),
                             trace=trace, info=info)
        assert info["kernel_source"] == "kernel"
        assert arvi == execute_point(self._point(configuration="current"),
                                     trace=False)

    def test_default_spec_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_SPEC_DIR", str(tmp_path))
        assert default_spec_dir() == tmp_path
