"""ARVI through the compiled replay kernel (the fused pass).

The same hard invariant as the stream kinds, extended to the paper's
headline predictor: ``kernel_run(..., LevelTwoKind.ARVI)`` is
bit-for-bit equal (``==``) to the interpreted replay *and* the live
run across all three ARVI latency classes (Table 4: 6/12/18-cycle
BVIT at depths 20/40/60), the three paper value modes
(current / load back / perfect), warmups, replay budgets and custom
ARVI geometries.  The fused pass precomputes only the shared
level-1/confidence streams; the DDT/RSE/BVIT machinery replays live
per configuration — these tests are what keep that split honest.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arvi import ARVIConfig, ValueMode
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.pipeline.kernel import kernel_run
from repro.pipeline.trace import TraceReplayCore, record_trace
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program

SCALE = 0.05
MODES = (ValueMode.CURRENT, ValueMode.LOAD_BACK, ValueMode.PERFECT)


@pytest.fixture(scope="module")
def program():
    return get_program("m88ksim", scale=SCALE, seed=1)


@pytest.fixture(scope="module")
def trace(program):
    return record_trace(program)


def arvi_engine(program, *, core=None, depth=20, warmup=500,
                mode=ValueMode.CURRENT, arvi_config=None, budget=None):
    config = machine_for_depth(depth)
    predictor = build_predictor(LevelTwoKind.ARVI, config, arvi_config)
    engine = PipelineEngine(program, config, predictor, value_mode=mode,
                            warmup_instructions=warmup, core=core)
    return engine.run() if budget is None else engine.run(budget)


class TestARVIEquality:
    """Every latency class x value mode x warmup, three ways."""

    @pytest.mark.parametrize("depth", [20, 40, 60])
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("warmup", [0, 500])
    def test_kernel_equals_interpreted_equals_live(self, program, trace,
                                                   depth, mode, warmup):
        live = arvi_engine(program, depth=depth, mode=mode, warmup=warmup)
        interpreted = arvi_engine(
            program, core=TraceReplayCore(program, trace), depth=depth,
            mode=mode, warmup=warmup)
        kernel = kernel_run(program, trace, machine_for_depth(depth),
                            LevelTwoKind.ARVI, warmup_instructions=warmup,
                            value_mode=mode)
        assert interpreted == live
        assert kernel == interpreted

    @pytest.mark.parametrize("workload", ["compress", "li"])
    def test_other_workloads(self, workload):
        program = get_program(workload, scale=0.02, seed=1)
        trace = record_trace(program)
        interpreted = arvi_engine(
            program, core=TraceReplayCore(program, trace), warmup=100)
        kernel = kernel_run(program, trace, machine_for_depth(20),
                            LevelTwoKind.ARVI, warmup_instructions=100)
        assert kernel == interpreted == arvi_engine(program, warmup=100)

    def test_custom_arvi_geometry(self, program, trace):
        custom = ARVIConfig(sets=64, ways=2)
        interpreted = arvi_engine(
            program, core=TraceReplayCore(program, trace),
            arvi_config=custom)
        kernel = kernel_run(program, trace, machine_for_depth(20),
                            LevelTwoKind.ARVI, warmup_instructions=500,
                            arvi_config=custom)
        assert kernel == interpreted
        # The geometry matters: the default-geometry result differs (the
        # equality above would be vacuous if the config were ignored).
        assert kernel != kernel_run(program, trace, machine_for_depth(20),
                                    LevelTwoKind.ARVI,
                                    warmup_instructions=500)


@functools.lru_cache(maxsize=1)
def _small():
    """A small (program, trace) pair the property replays (built once;
    hypothesis forbids function-scoped fixtures)."""
    program = get_program("li", scale=0.01, seed=1)
    return program, record_trace(program)


class TestARVIProperty:
    """Kernel == interpreted at any (depth, mode, warmup, budget) draw —
    the fused pass's precomputed confidence stream and live BVIT/RSE
    replay must agree with the engine cutting off mid-stream."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_kernel_matches_interpreted_at_any_draw(self, data):
        program, trace = _small()
        depth = data.draw(st.sampled_from([20, 40, 60]), label="depth")
        mode = data.draw(st.sampled_from(MODES), label="mode")
        warmup = data.draw(st.integers(0, 60), label="warmup")
        budget = data.draw(st.integers(0, trace.length), label="budget")
        interpreted = arvi_engine(
            program, core=TraceReplayCore(program, trace), depth=depth,
            mode=mode, warmup=warmup, budget=budget)
        kernel = kernel_run(program, trace, machine_for_depth(depth),
                            LevelTwoKind.ARVI, warmup_instructions=warmup,
                            value_mode=mode, max_instructions=budget)
        assert kernel == interpreted
