"""Tests for bandwidth limiter, retirement windows, FUs and rename."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.bandwidth import BandwidthLimiter
from repro.pipeline.func_units import FunctionalUnitPool, FunctionalUnits
from repro.pipeline.config import machine_for_depth
from repro.pipeline.rename import RenameError, RenameMap
from repro.pipeline.rob import RetirementWindow


class TestBandwidthLimiter:
    def test_width_slots_per_cycle(self):
        limiter = BandwidthLimiter(4)
        assert [limiter.schedule(0) for _ in range(4)] == [0, 0, 0, 0]
        assert limiter.schedule(0) == 1

    def test_advance_resets_count(self):
        limiter = BandwidthLimiter(2)
        limiter.schedule(0)
        limiter.schedule(0)
        assert limiter.schedule(5) == 5
        assert limiter.schedule(5) == 5
        assert limiter.schedule(5) == 6

    def test_requests_behind_cursor_served_at_cursor(self):
        limiter = BandwidthLimiter(2)
        limiter.schedule(10)
        assert limiter.schedule(3) == 10

    def test_width_validated(self):
        with pytest.raises(ValueError):
            BandwidthLimiter(0)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100),
           st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bandwidth_property(self, requests, width):
        requests = sorted(requests)
        limiter = BandwidthLimiter(width)
        grants = [limiter.schedule(req) for req in requests]
        assert grants == sorted(grants)
        for req, grant in zip(requests, grants):
            assert grant >= req
        # No cycle is granted more than `width` slots.
        from collections import Counter
        for cycle, count in Counter(grants).items():
            assert count <= width


class TestRetirementWindow:
    def test_no_stall_below_capacity(self):
        window = RetirementWindow("ROB", 4)
        for commit in (10, 11, 12):
            assert window.earliest_allocation(5) == 5
            window.allocate(commit)

    def test_stall_when_full(self):
        window = RetirementWindow("ROB", 2)
        window.allocate(10)
        window.allocate(11)
        # Full: next allocation must wait for the oldest commit (10) + 1.
        assert window.earliest_allocation(5) == 11
        window.allocate(20)
        assert window.occupancy == 2
        assert window.full_stalls == 1

    def test_no_stall_if_requested_after_free(self):
        window = RetirementWindow("ROB", 1)
        window.allocate(10)
        assert window.earliest_allocation(50) == 50

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RetirementWindow("x", 0)


class TestFunctionalUnitPool:
    def test_parallel_servers(self):
        pool = FunctionalUnitPool("alu", 2)
        assert pool.issue(0) == 0
        assert pool.issue(0) == 0
        assert pool.issue(0) == 1  # both busy at cycle 0

    def test_pipelined_unit_accepts_next_cycle(self):
        pool = FunctionalUnitPool("alu", 1)
        assert pool.issue(0, occupancy=1) == 0
        assert pool.issue(0, occupancy=1) == 1

    def test_unpipelined_unit_blocks(self):
        pool = FunctionalUnitPool("div", 1)
        assert pool.issue(0, occupancy=20) == 0
        assert pool.issue(1, occupancy=20) == 20

    def test_later_request_no_conflict(self):
        pool = FunctionalUnitPool("alu", 1)
        pool.issue(0)
        assert pool.issue(10) == 10

    def test_busy_accounting(self):
        pool = FunctionalUnitPool("alu", 1)
        pool.issue(0, occupancy=3)
        assert pool.operations == 1
        assert pool.busy_cycles == 3

    def test_count_validated(self):
        with pytest.raises(ValueError):
            FunctionalUnitPool("x", 0)

    def test_machine_pools(self):
        units = FunctionalUnits(machine_for_depth(20))
        assert units.int_alu.count == 4
        assert units.int_muldiv.count == 1
        assert units.dcache_port.count == 2


class TestRenameMap:
    def test_identity_initial_mapping(self):
        rename = RenameMap(64)
        for logical in range(32):
            assert rename.lookup(logical) == logical

    def test_rename_allocates_fresh_register(self):
        rename = RenameMap(64)
        new, displaced = rename.rename_dest(5)
        assert new not in range(32)
        assert displaced == 5
        assert rename.lookup(5) == new

    def test_release_recycles(self):
        rename = RenameMap(34)
        new1, displaced1 = rename.rename_dest(1)
        new2, displaced2 = rename.rename_dest(2)
        assert rename.free_count == 0
        rename.release(displaced1)
        new3, _ = rename.rename_dest(3)
        assert new3 == displaced1

    def test_underflow_raises(self):
        rename = RenameMap(33)
        rename.rename_dest(0)
        with pytest.raises(RenameError):
            rename.rename_dest(1)

    def test_snapshot_restore(self):
        rename = RenameMap(64)
        snapshot = rename.snapshot()
        new1, _ = rename.rename_dest(3)
        new2, _ = rename.rename_dest(4)
        rename.restore(snapshot, [new1, new2])
        assert rename.lookup(3) == 3
        assert rename.lookup(4) == 4
        assert rename.free_count == 32

    def test_restore_validates_snapshot(self):
        rename = RenameMap(64)
        with pytest.raises(RenameError):
            rename.restore((1, 2, 3), [])

    def test_too_few_physical_registers(self):
        with pytest.raises(ValueError):
            RenameMap(16)

    @given(st.lists(st.integers(0, 31), max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_live_registers_always_distinct(self, dests):
        """No two logical registers may map to the same physical one."""
        rename = RenameMap(32 + 64)
        displaced_queue = []
        for logical in dests:
            if rename.free_count == 0:
                rename.release(displaced_queue.pop(0))
            _, displaced = rename.rename_dest(logical)
            displaced_queue.append(displaced)
            live = rename.live_physical_registers()
            assert len(live) == 32
