"""Cache/TLB/memory hierarchy tests, with an LRU model equivalence check."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.caches import MemoryHierarchy, SetAssociativeCache, TLB
from repro.pipeline.config import CacheConfig, TLBConfig, machine_for_depth


def small_cache(sets=2, assoc=2, line=16):
    size = sets * assoc * line
    return SetAssociativeCache(CacheConfig("test", size, assoc, line, 1))


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.access(0x104) is True  # same line

    def test_line_granularity(self):
        cache = small_cache(line=16)
        cache.access(0x100)
        assert cache.access(0x10F) is True
        assert cache.access(0x110) is False

    def test_lru_eviction_order(self):
        # 2 sets x 2 ways, 16 B lines: addresses with the same set index.
        cache = small_cache(sets=2, assoc=2)
        a, b, c = 0x000, 0x020, 0x040     # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)                   # a is MRU
        cache.access(c)                   # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_probe_does_not_fill(self):
        cache = small_cache()
        assert cache.probe(0x100) is False
        assert cache.access(0x100) is False   # still a miss

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(0x100)
        cache.invalidate_all()
        assert not cache.probe(0x100)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate() == 0.5

    def test_power_of_two_line_required(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheConfig("bad", 96 * 2, 2, 24, 1))

    @given(st.lists(st.integers(0, 1023), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_ordered_dict_lru_model(self, addresses):
        """Exact-LRU equivalence against an OrderedDict reference."""
        cache = small_cache(sets=2, assoc=2, line=16)
        model: list[OrderedDict] = [OrderedDict() for _ in range(2)]
        for addr in addresses:
            line = addr // 16
            set_idx, tag = line % 2, line // 2
            model_set = model[set_idx]
            model_hit = tag in model_set
            if model_hit:
                model_set.move_to_end(tag)
            else:
                if len(model_set) >= 2:
                    model_set.popitem(last=False)
                model_set[tag] = True
            assert cache.access(addr) is model_hit


class TestTLB:
    def test_miss_penalty_then_hit(self):
        tlb = TLB(TLBConfig("t", entries=4, assoc=2, miss_penalty=30))
        assert tlb.access(0x12345) == 30
        assert tlb.access(0x12345) == 0

    def test_page_granularity(self):
        tlb = TLB(TLBConfig("t", entries=4, assoc=2, page_bytes=8192))
        tlb.access(0)
        assert tlb.access(8191) == 0
        assert tlb.access(8192) == 30

    def test_capacity_eviction(self):
        tlb = TLB(TLBConfig("t", entries=2, assoc=1, page_bytes=8192))
        tlb.access(0 * 8192)
        tlb.access(2 * 8192)   # same set (2 sets, stride 2)
        assert tlb.access(0 * 8192) == 30


class TestMemoryHierarchy:
    def test_l1_hit_latency(self):
        hierarchy = MemoryHierarchy(machine_for_depth(20))
        hierarchy.data_latency(0x1000)           # cold miss
        assert hierarchy.data_latency(0x1000) == \
            hierarchy.config.dcache.hit_latency  # TLB and L1 now warm

    def test_miss_latency_ordering(self):
        hierarchy = MemoryHierarchy(machine_for_depth(20))
        cold = hierarchy.data_latency(0x2000)
        warm = hierarchy.data_latency(0x2000)
        assert cold > warm

    def test_l2_faster_than_memory(self):
        config = machine_for_depth(20)
        hierarchy = MemoryHierarchy(config)
        hierarchy.data_latency(0x3000)           # into L1+L2 (+TLB)
        # Evict from tiny... instead: an address only in L2 after L1 eviction
        # is cheaper than a fresh memory access. Simulate by comparing
        # constants directly:
        l2_cost = config.dcache.hit_latency + config.l2cache.hit_latency
        mem_cost = l2_cost + config.memory_latency
        assert l2_cost < mem_cost

    def test_instruction_and_data_paths_independent(self):
        hierarchy = MemoryHierarchy(machine_for_depth(20))
        hierarchy.instruction_latency(0x4000)
        stats = hierarchy.stats()
        assert stats.l1i_misses == 1
        assert stats.l1d_misses == 0

    def test_stats_aggregation(self):
        hierarchy = MemoryHierarchy(machine_for_depth(20))
        hierarchy.data_latency(0x100)
        hierarchy.data_latency(0x100)
        stats = hierarchy.stats()
        assert stats.l1d_hits == 1
        assert stats.l1d_misses == 1
        assert stats.dtlb_misses == 1
