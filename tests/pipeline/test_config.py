"""Machine configuration (paper Tables 2/4) tests."""

import pytest

from repro.pipeline.config import (
    CacheConfig,
    MachineConfig,
    PredictorLatencies,
    TLBConfig,
    machine_for_depth,
    table2_rows,
    table4_rows,
)


class TestMachineForDepth:
    @pytest.mark.parametrize("depth", [20, 40, 60])
    def test_valid_depths(self, depth):
        config = machine_for_depth(depth)
        assert config.pipeline_depth == depth

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            machine_for_depth(30)

    def test_latencies_scale_with_depth(self):
        """Table 2: cache/memory latencies grow with pipeline length."""
        shallow, mid, deep = (machine_for_depth(d) for d in (20, 40, 60))
        assert (shallow.dcache.hit_latency < mid.dcache.hit_latency
                < deep.dcache.hit_latency)
        assert (shallow.l2cache.hit_latency < mid.l2cache.hit_latency
                < deep.l2cache.hit_latency)
        assert (shallow.memory_latency < mid.memory_latency
                < deep.memory_latency)

    def test_predictor_latencies_table4(self):
        """Table 4: L1 is 1 cycle; ARVI is 6/12/18; hybrid 2/4/6."""
        for depth, hybrid, arvi in ((20, 2, 6), (40, 4, 12), (60, 6, 18)):
            lat = machine_for_depth(depth).predictor_latencies
            assert lat.level1 == 1
            assert lat.level2_hybrid == hybrid
            assert lat.level2_arvi == arvi

    def test_overrides(self):
        config = machine_for_depth(20, rob_entries=64)
        assert config.rob_entries == 64
        assert config.pipeline_depth == 20


class TestTable2Values:
    def test_paper_parameters(self):
        config = machine_for_depth(20)
        assert config.fetch_width == 4
        assert config.rob_entries == 256
        assert config.lsq_entries == 32
        assert config.int_alus == 4
        assert config.int_muldiv == 1
        assert config.icache.size_bytes == 64 * 1024
        assert config.icache.assoc == 4
        assert config.icache.line_bytes == 32
        assert config.l2cache.size_bytes == 512 * 1024
        assert config.itlb.entries == 64
        assert config.dtlb.entries == 128
        assert config.itlb.miss_penalty == 30

    def test_physical_registers_cover_early_rename(self):
        """Early rename needs a physical register per ROB entry."""
        config = machine_for_depth(20)
        assert config.num_phys_regs == 32 + 256

    def test_frontend_depth(self):
        assert machine_for_depth(20).frontend_depth == 18
        assert machine_for_depth(60).frontend_depth == 58


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig("x", 64 * 1024, 4, 32, 2)
        assert cache.num_sets == 512

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 1000, 3, 32, 1)

    def test_tlb_sets(self):
        assert TLBConfig("x", 64, 4).num_sets == 16


class TestRenderedTables:
    def test_table2_rows_cover_parameters(self):
        rows = dict(table2_rows(machine_for_depth(20)))
        assert rows["ROB entries"] == "256"
        assert "4 ALUs" in rows["Integer units"]
        assert "64 KB" in rows["L1I"]

    def test_table4_rows(self):
        rows = {name: (l20, l40, l60)
                for name, _, l20, l40, l60 in table4_rows()}
        assert rows["Level-1 hybrid"] == (1, 1, 1)
        assert rows["Level-2 hybrid"] == (2, 4, 6)
        assert rows["Level-2 ARVI"] == (6, 12, 18)
