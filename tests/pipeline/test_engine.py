"""Timing engine integration tests.

These exercise the engine end to end on small programs and check the
microarchitectural behaviours the paper's evaluation depends on: IPC
bounds, dependence serialization, misprediction penalties scaling with
pipeline depth, ARVI's branch classification, and bookkeeping invariants.
"""

import pytest

from repro.core import ARVIConfig, ValueMode
from repro.isa import AsmBuilder, eq, ge, nez
from repro.isa.regs import a0, s0, s1, t0, t1, t2, t3, v0, zero
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor, simulate
from repro.predictors.twolevel import LevelTwoKind
from tests.conftest import build_counted_loop, build_memory_loop


def independent_ops_program(count=400):
    """Long stream of independent ALU ops: should approach IPC = width."""
    b = AsmBuilder("independent")
    b.label("main")
    regs = [t0, t1, t2, t3]
    for i in range(count):
        b.addi(regs[i % 4], zero, i & 0xFF)
    b.halt()
    return b.build()


def serial_chain_program(count=400):
    """Fully serial dependence chain: IPC must be ~1 at best."""
    b = AsmBuilder("serial")
    b.label("main")
    b.li(t0, 1)
    for _ in range(count):
        b.addi(t0, t0, 1)
    b.halt()
    return b.build()


class TestBasicExecution:
    def test_runs_to_completion(self, tiny_machine):
        result = simulate(build_counted_loop(20), tiny_machine)
        assert result.total_instructions > 40
        assert result.cycles > 0

    def test_ipc_never_exceeds_width(self, tiny_machine):
        result = simulate(independent_ops_program(), tiny_machine)
        assert result.ipc <= tiny_machine.fetch_width + 1e-9

    def test_independent_ops_reach_high_ipc(self, tiny_machine):
        result = simulate(independent_ops_program(800), tiny_machine)
        assert result.ipc > 2.0

    def test_serial_chain_limits_ipc(self, tiny_machine):
        result = simulate(serial_chain_program(800), tiny_machine)
        assert result.ipc <= 1.05

    def test_memory_program_counts_loads_stores(self, tiny_machine):
        result = simulate(build_memory_loop(16), tiny_machine)
        assert result.loads >= 16
        assert result.stores >= 16

    def test_max_instructions_budget(self, tiny_machine):
        b = AsmBuilder()
        b.label("main")
        b.j("main")
        predictor = build_predictor(LevelTwoKind.HYBRID, tiny_machine)
        engine = PipelineEngine(b.build(), tiny_machine, predictor)
        result = engine.run(max_instructions=100)
        assert result.total_instructions == 100


class TestBranchTiming:
    @staticmethod
    def unpredictable_branch_program(iterations=300):
        """Branch on the low bit of an LCG — effectively random."""
        b = AsmBuilder("lcg-branch")
        b.label("main")
        b.li(s0, 12345)
        b.li(s1, 0)
        with b.for_range(t0, 0, iterations):
            b.li(t1, 1103515245)
            b.mult(s0, s0, t1)
            b.addi(s0, s0, 12345)
            b.srli(t2, s0, 16)
            b.andi(t2, t2, 1)
            with b.if_(nez(t2)):
                b.addi(s1, s1, 1)
        b.halt()
        return b.build()

    def test_mispredictions_cost_more_on_deeper_pipelines(self):
        program = self.unpredictable_branch_program()
        cycles = {}
        for depth in (20, 60):
            config = machine_for_depth(depth)
            result = simulate(program, config, LevelTwoKind.HYBRID)
            cycles[depth] = result.cycles
            assert result.prediction_accuracy < 0.95  # genuinely hard
        assert cycles[60] > cycles[20] * 1.5

    def test_biased_branch_is_learned(self, tiny_machine):
        program = build_counted_loop(200)
        result = simulate(program, tiny_machine, LevelTwoKind.HYBRID,
                          warmup_instructions=100)
        assert result.prediction_accuracy > 0.95

    def test_override_accounting(self, tiny_machine):
        program = self.unpredictable_branch_program()
        result = simulate(program, tiny_machine, LevelTwoKind.HYBRID)
        assert result.overrides >= 0
        assert (result.overrides_helpful + result.overrides_harmful
                <= result.overrides)


class TestArviIntegration:
    @staticmethod
    def value_determined_branch_program(iterations=400):
        """Branch outcome fully determined by a committed register value.

        Outcomes follow a period-7 key schedule that defeats short
        history but is trivially value-predictable.
        """
        b = AsmBuilder("value-branch")
        keys = [1, 0, 1, 1, 0, 0, 1]
        b.data_word("keys", *keys)
        b.label("main")
        b.la(s0, "keys")
        b.li(s1, 0)
        b.li(t3, 0)
        with b.for_range(t0, 0, iterations):
            b.slli(t1, s1, 2)
            b.add(t1, t1, s0)
            b.lw(t2, t1, 0)
            b.addi(s1, s1, 1)
            with b.if_(ge(s1, len(keys), imm=True)):
                b.li(s1, 0)
            # Spacer work so the key commits before its use next iteration.
            for _ in range(6):
                b.add(t3, t3, t2)
            with b.if_(nez(t2)):
                b.addi(t3, t3, 1)
        b.halt()
        return b.build()

    def test_classification_present(self, tiny_machine):
        result = simulate(build_memory_loop(64), tiny_machine,
                          LevelTwoKind.ARVI)
        assert result.calculated.branches + result.load.branches > 0
        assert result.arvi_lookups > 0

    def test_value_modes_run(self, tiny_machine):
        program = build_memory_loop(32)
        for mode in ValueMode:
            result = simulate(program, tiny_machine, LevelTwoKind.ARVI,
                              value_mode=mode)
            assert result.total_instructions > 0

    def test_perfect_mode_classifies_all_calculated(self, tiny_machine):
        result = simulate(build_memory_loop(64), tiny_machine,
                          LevelTwoKind.ARVI,
                          value_mode=ValueMode.PERFECT)
        assert result.load.branches == 0

    def test_arvi_beats_hybrid_on_value_branch(self, tiny_machine):
        program = self.value_determined_branch_program()
        hybrid = simulate(program, tiny_machine, LevelTwoKind.HYBRID,
                          warmup_instructions=2000)
        arvi = simulate(program, tiny_machine, LevelTwoKind.ARVI,
                        warmup_instructions=2000)
        assert arvi.prediction_accuracy >= hybrid.prediction_accuracy

    def test_arvi_config_override(self, tiny_machine):
        result = simulate(
            build_memory_loop(32), tiny_machine, LevelTwoKind.ARVI,
            arvi_config=ARVIConfig(sets=64, ways=2))
        assert result.total_instructions > 0


class TestEngineInvariants:
    def test_commit_cycles_monotone_and_complete_before_commit(self,
                                                               tiny_machine):
        records = []
        predictor = build_predictor(LevelTwoKind.HYBRID, tiny_machine)
        engine = PipelineEngine(
            build_memory_loop(32), tiny_machine, predictor,
            observers=[lambda rec, dyn: records.append(rec)])
        engine.run()
        assert records
        last_commit = 0
        for record in records:
            assert record.fetch <= record.dispatch <= record.issue
            assert record.issue < record.complete < record.commit
            assert record.commit >= last_commit
            last_commit = record.commit

    def test_frontend_depth_respected(self, tiny_machine):
        records = []
        predictor = build_predictor(LevelTwoKind.HYBRID, tiny_machine)
        engine = PipelineEngine(
            build_counted_loop(10), tiny_machine, predictor,
            observers=[lambda rec, dyn: records.append(rec)])
        engine.run()
        for record in records:
            assert (record.issue - record.fetch
                    >= tiny_machine.frontend_depth)

    def test_warmup_excluded_from_stats(self, tiny_machine):
        program = build_counted_loop(100)
        full = simulate(program, tiny_machine)
        partial = simulate(program, tiny_machine, warmup_instructions=150)
        assert partial.instructions == full.total_instructions - 150
        assert partial.cond_branches < full.cond_branches

    def test_store_load_forwarding_visible(self, tiny_machine):
        """A store immediately reloaded should not pay a full miss twice."""
        b = AsmBuilder()
        b.data_space("buf", 1)
        b.label("main")
        b.la(t0, "buf")
        b.li(t1, 42)
        b.sw(t1, t0, 0)
        b.lw(t2, t0, 0)
        b.halt()
        result = simulate(b.build(), tiny_machine)
        assert result.total_instructions > 0

    def test_deterministic_given_same_inputs(self, tiny_machine):
        program = build_memory_loop(32)
        first = simulate(program, tiny_machine, LevelTwoKind.ARVI)
        second = simulate(program, tiny_machine, LevelTwoKind.ARVI)
        assert first.cycles == second.cycles
        assert first.final_correct == second.final_correct

    def test_ras_tracks_calls(self, tiny_machine):
        b = AsmBuilder()
        b.label("main")
        for _ in range(3):
            b.jal("leaf")
        b.halt()
        b.label("leaf")
        b.jr()
        result = simulate(b.build(), tiny_machine)
        assert result.ras_accuracy == 1.0
