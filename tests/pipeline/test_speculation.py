"""Engine integration of the speculation subsystem (DESIGN.md §2.2-§2.3).

The headline property: under ``speculation="wrongpath"`` the engine
actually drives ``FastDDT.rollback_to`` on its live DDT, and a
hardware-faithful reference DDT fed the *same* in-engine script (every
allocate/commit/rollback the engine issues) agrees with it after every
squash — the §2.3 cross-check, promoted from synthetic unit-test scripts
to the real pipeline.
"""

import pytest

from repro.experiments.plan import ExperimentPoint
from repro.experiments.runner import run_point
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor, simulate
from repro.predictors.twolevel import LevelTwoKind
from tests.conftest import build_memory_loop
from tests.pipeline.test_engine import TestBranchTiming

SCALE = 0.05
WARMUP = 500


def lcg_program(iterations=200):
    """Effectively random branches: guarantees mispredictions."""
    return TestBranchTiming.unpredictable_branch_program(iterations)


class TestWrongPathMode:
    def test_acceptance_m88ksim_hybrid_depth20(self):
        """The ISSUE acceptance point: wrong-path work and in-engine
        rollbacks on the m88ksim hybrid (baseline) config at depth 20."""
        result = run_point(
            ExperimentPoint("m88ksim", "baseline", 20,
                            speculation="wrongpath"),
            scale=SCALE, warmup=WARMUP)
        assert result.speculation == "wrongpath"
        assert result.wrong_path_instructions > 0
        assert result.rollbacks > 0
        assert result.squashed_tokens == result.wrong_path_instructions

    def test_wrong_path_pollutes_the_memory_hierarchy(self):
        result = simulate(lcg_program(), machine_for_depth(
            20, speculation="wrongpath"), LevelTwoKind.HYBRID)
        memory = result.memory
        assert memory.wrong_path_l1i_accesses > 0
        assert result.wrong_path_branches > 0
        # Demand counters keep counting independently of pollution.
        assert memory.l1i_hits + memory.l1i_misses > 0

    def test_wrong_path_loads_access_the_dcache(self):
        # Loads on both sides of an unpredictable branch, so every
        # mispredict sends the wrong path straight into a load.
        from repro.isa import AsmBuilder, nez
        from repro.isa.regs import s0, s1, t0, t1, t2, t3

        b = AsmBuilder("wp-loads")
        b.data_word("table", *range(16))
        b.label("main")
        b.la(s0, "table")
        b.li(s1, 12345)
        with b.for_range(t0, 0, 200):
            b.li(t1, 1103515245)
            b.mult(s1, s1, t1)
            b.addi(s1, s1, 12345)
            b.srli(t2, s1, 16)
            b.andi(t2, t2, 1)
            with b.if_(nez(t2)):
                b.lw(t3, s0, 0)
            b.lw(t3, s0, 4)
        b.halt()
        result = simulate(b.build(), machine_for_depth(
            20, speculation="wrongpath"), LevelTwoKind.HYBRID)
        assert result.wrong_path_loads > 0
        assert result.memory.wrong_path_l1d_accesses >= result.wrong_path_loads

    def test_architectural_results_unaffected_by_wrong_path(self):
        """Same committed instruction stream in both modes: speculation
        changes timing/pollution, never architectural behaviour."""
        program = lcg_program()
        redirect = simulate(program, machine_for_depth(20),
                            LevelTwoKind.HYBRID)
        wrongpath = simulate(program, machine_for_depth(
            20, speculation="wrongpath"), LevelTwoKind.HYBRID)
        assert wrongpath.total_instructions == redirect.total_instructions
        assert wrongpath.cond_branches == redirect.cond_branches
        assert wrongpath.loads == redirect.loads
        assert wrongpath.stores == redirect.stores

    def test_deterministic(self):
        program = lcg_program()
        config = machine_for_depth(20, speculation="wrongpath")
        first = simulate(program, config, LevelTwoKind.HYBRID)
        second = simulate(program, config, LevelTwoKind.HYBRID)
        assert first == second

    def test_arvi_configuration_supports_wrongpath(self):
        result = simulate(build_memory_loop(32), machine_for_depth(
            20, speculation="wrongpath"), LevelTwoKind.ARVI)
        assert result.total_instructions > 0
        assert result.speculation == "wrongpath"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="speculation"):
            machine_for_depth(20, speculation="sideways")


class TestInEngineRollbackCrossCheck:
    """Satellite: the in-engine DDT script, cross-checked bit-for-bit."""

    def run_checked(self, program, kind=LevelTwoKind.HYBRID):
        config = machine_for_depth(20, speculation="wrongpath")
        predictor = build_predictor(kind, config)
        engine = PipelineEngine(program, config, predictor,
                                ddt_cross_check=True)
        result = engine.run()
        return engine, result

    def test_reference_ddt_agrees_after_every_squash(self):
        engine, result = self.run_checked(lcg_program())
        # The run completing at all means every mirrored allocate/commit/
        # rollback agreed (divergence raises DDTCrossCheckError); make
        # sure the property was actually exercised, then re-verify the
        # final chain state explicitly.
        assert result.rollbacks > 0
        assert engine.ddt.rollback_checks == result.rollbacks
        assert engine.ddt.operations > result.total_instructions
        engine.ddt.verify_chains()

    def test_cross_check_matches_unchecked_run(self):
        program = lcg_program()
        _engine, checked = self.run_checked(program)
        unchecked = simulate(program, machine_for_depth(
            20, speculation="wrongpath"), LevelTwoKind.HYBRID)
        assert checked == unchecked

    def test_cross_check_with_arvi_level2(self):
        engine, result = self.run_checked(build_memory_loop(48),
                                          kind=LevelTwoKind.ARVI)
        assert engine.ddt.rollback_checks == result.rollbacks
        engine.ddt.verify_chains()


class TestRedirectModeUntouched:
    def test_default_machine_is_redirect(self):
        assert machine_for_depth(20).speculation == "redirect"

    def test_redirect_reports_zero_wrong_path_activity(self):
        result = simulate(lcg_program(), machine_for_depth(20),
                          LevelTwoKind.HYBRID)
        assert result.speculation == "redirect"
        assert result.wrong_path_instructions == 0
        assert result.rollbacks == 0
        assert result.wrong_path_fills == 0
