"""Engine <-> ARVI interaction semantics.

These tests pin the behaviours that make the paper's mechanism work end
to end inside the pipeline model: which registers form the RSE set at a
real prediction, when values count as committed, and that the current-
value configuration never leaks oracle (uncommitted) values.
"""

import pytest

from repro.core import ValueMode
from repro.isa import AsmBuilder, nez
from repro.isa.regs import s0, s1, s2, s3, t0, t1, t2, zero
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind


def capture_requests(program, *, value_mode=ValueMode.CURRENT,
                     machine=None, pc_filter=None, max_instructions=50_000):
    """Run with ARVI, recording every ARVIRequest the engine builds."""
    machine = machine or machine_for_depth(20)
    predictor = build_predictor(LevelTwoKind.ARVI, machine)
    engine = PipelineEngine(program, machine, predictor,
                            value_mode=value_mode)
    requests = []
    original = engine._build_arvi_request

    def spy(dyn, src_pregs, fetch):
        request = original(dyn, src_pregs, fetch)
        if pc_filter is None or dyn.pc == pc_filter:
            requests.append((dyn, request))
        return request

    engine._build_arvi_request = spy
    engine.run(max_instructions)
    return requests


class TestRegisterSetFormation:
    def test_committed_operand_is_own_leaf_with_its_value(self):
        """A branch on a long-committed register sees that register,
        available, with its architectural value."""
        b = AsmBuilder()
        b.label("main")
        b.li(s0, 7)
        for _ in range(200):          # s0 commits long before the branch
            b.addi(t0, t0, 1)
        b.label("the_branch")
        b.bne(s0, zero, "done")
        b.nop()
        b.label("done")
        b.halt()
        program = b.build()
        requests = capture_requests(program,
                                    pc_filter=program.labels["the_branch"])
        assert len(requests) == 1
        _, request = requests[0]
        s0_view = next(v for v in request.regset if v.value == 7)
        assert s0_view.available

    def test_fresh_load_makes_load_branch(self):
        """A branch immediately after its feeding load is a load branch."""
        b = AsmBuilder()
        b.data_word("flag", 1)
        b.label("main")
        with b.for_range(s1, 0, 50):
            b.la(t0, "flag")
            b.lw(t1, t0, 0)
            with b.if_(nez(t1)):
                b.addi(s2, s2, 1)
        b.halt()
        program = b.build()
        requests = capture_requests(program)
        # Find the branch instances whose chain includes the fresh load.
        load_branches = [
            req for dyn, req in requests
            if any(not view.available for view in req.regset)
        ]
        assert load_branches, "expected load-branch instances"

    def test_current_mode_never_uses_uncommitted_values(self):
        """In CURRENT mode every available view's value must equal the
        committed shadow value — no oracle leakage."""
        from tests.conftest import build_memory_loop
        program = build_memory_loop(64)
        machine = machine_for_depth(20)
        predictor = build_predictor(LevelTwoKind.ARVI, machine)
        engine = PipelineEngine(program, machine, predictor,
                                value_mode=ValueMode.CURRENT)
        mismatches = []
        original = engine._build_arvi_request

        def spy(dyn, src_pregs, fetch):
            request = original(dyn, src_pregs, fetch)
            for view in request.regset:
                if view.available:
                    shadow = engine.shadow_values.read(view.preg)
                    if view.value != shadow:
                        mismatches.append((dyn.seq, view))
                    if engine._preg_pending[view.preg]:
                        mismatches.append((dyn.seq, "pending-available"))
            return request

        engine._build_arvi_request = spy
        engine.run()
        assert not mismatches

    def test_perfect_mode_marks_everything_available(self):
        from tests.conftest import build_memory_loop
        requests = capture_requests(build_memory_loop(32),
                                    value_mode=ValueMode.PERFECT)
        assert requests
        for _, request in requests:
            assert all(view.available for view in request.regset)

    def test_loadback_availability_is_superset_of_current(self):
        """Load back can only move branches from load to calculated."""
        from tests.conftest import build_memory_loop
        program = build_memory_loop(64)
        current = capture_requests(program, value_mode=ValueMode.CURRENT)
        loadback = capture_requests(program, value_mode=ValueMode.LOAD_BACK)
        calc_current = sum(
            all(v.available for v in req.regset) for _, req in current)
        calc_loadback = sum(
            all(v.available for v in req.regset) for _, req in loadback)
        assert calc_loadback >= calc_current


class TestDepthKeys:
    def test_depth_grows_along_serial_chain(self):
        """Deeper in a dependence chain, the depth key is larger."""
        b = AsmBuilder()
        b.label("main")
        with b.for_range(s1, 0, 30):
            b.li(t0, 3)
            b.addi(t0, t0, 1)
            b.addi(t0, t0, 1)
            b.addi(t0, t0, 1)
            b.addi(t0, t0, 1)
            with b.if_(nez(t0)):
                b.addi(s2, s2, 1)
        b.halt()
        program = b.build()
        requests = capture_requests(program)
        depths = [
            req.branch_token - req.oldest_chain_token
            for _, req in requests if req.oldest_chain_token is not None
        ]
        assert depths and max(depths) >= 5


class TestRenameIntegration:
    def test_no_rename_for_r0_destinations(self):
        """Writes to $zero must not consume physical registers."""
        b = AsmBuilder()
        b.label("main")
        for _ in range(600):           # more than the free list holds
            b.add(zero, s0, s1)
        b.halt()
        machine = machine_for_depth(20)
        predictor = build_predictor(LevelTwoKind.HYBRID, machine)
        engine = PipelineEngine(b.build(), machine, predictor)
        engine.run()  # would raise RenameError on free-list underflow

    def test_free_list_never_underflows_on_workload(self):
        from repro.workloads import get_program
        program = get_program("li", scale=0.05)
        machine = machine_for_depth(20)
        predictor = build_predictor(LevelTwoKind.ARVI, machine)
        engine = PipelineEngine(program, machine, predictor)
        engine.run()
        assert engine.rename.free_count >= 0
