"""Compiled replay kernel (DESIGN.md §10).

The hard invariant, mirroring the trace suite one level up: a kernel
replay of a lowered committed trace is bit-for-bit equal (``==``) to the
interpreted replay *and* to the live functional run, across workloads,
predictor kinds, pipeline depths, warmups and replay budgets — with or
without numpy.  Anything the kernel cannot express is a loud
``KernelUnsupported`` (or ``TraceError`` for truncated recordings),
never silent divergence; :func:`~repro.experiments.runner.execute_point`
then falls back to the interpreted path and says so via
``kernel_source``.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arvi import ValueMode
from repro.experiments.plan import ExperimentPoint, build_plan
from repro.experiments.runner import execute_point
from repro.experiments.scheduler import run_plan
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.pipeline.kernel import (
    KernelUnsupported,
    ensure_lowered,
    is_lowered,
    kernel_run,
    lowering_backend,
)
from repro.pipeline.trace import TraceError, TraceReplayCore, record_trace
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program

SCALE = 0.05


@pytest.fixture(scope="module")
def program():
    return get_program("m88ksim", scale=SCALE, seed=1)


@pytest.fixture(scope="module")
def trace(program):
    return record_trace(program)


def engine_result(program, *, core=None, kind=LevelTwoKind.HYBRID,
                  depth=20, warmup=500, budget=None,
                  speculation="redirect"):
    config = machine_for_depth(depth, speculation=speculation)
    predictor = build_predictor(kind, config)
    engine = PipelineEngine(program, config, predictor,
                            value_mode=ValueMode.CURRENT,
                            warmup_instructions=warmup, core=core)
    return engine.run() if budget is None else engine.run(budget)


class TestEquality:
    @pytest.mark.parametrize("kind", [LevelTwoKind.HYBRID,
                                      LevelTwoKind.NONE])
    @pytest.mark.parametrize("depth", [20, 60])
    @pytest.mark.parametrize("warmup", [0, 500])
    def test_kernel_equals_interpreted_equals_live(self, program, trace,
                                                   kind, depth, warmup):
        live = engine_result(program, kind=kind, depth=depth, warmup=warmup)
        interpreted = engine_result(
            program, core=TraceReplayCore(program, trace), kind=kind,
            depth=depth, warmup=warmup)
        kernel = kernel_run(program, trace, machine_for_depth(depth), kind,
                            warmup_instructions=warmup)
        assert interpreted == live
        assert kernel == interpreted

    @pytest.mark.parametrize("workload", ["compress", "li"])
    def test_other_workloads(self, workload):
        program = get_program(workload, scale=0.02, seed=1)
        trace = record_trace(program)
        interpreted = engine_result(
            program, core=TraceReplayCore(program, trace), warmup=100)
        kernel = kernel_run(program, trace, machine_for_depth(20),
                            warmup_instructions=100)
        assert kernel == interpreted == engine_result(program, warmup=100)

    def test_lowered_form_is_shared_across_configs(self, program, trace):
        lowered = ensure_lowered(program, trace)
        assert is_lowered(trace, program)
        assert ensure_lowered(program, trace) is lowered
        for depth in (20, 40, 60):
            kernel_run(program, trace, machine_for_depth(depth))
        assert ensure_lowered(program, trace) is lowered


@functools.lru_cache(maxsize=1)
def _small():
    """A small (program, trace) pair the budget property replays
    (built once; hypothesis forbids function-scoped fixtures)."""
    program = get_program("li", scale=0.01, seed=1)
    return program, record_trace(program)


class TestBudgetProperty:
    """Kernel == interpreted at *every* replay budget and warmup — the
    truncation arithmetic (prefix sums, bisected branch windows, RAS
    pops) must agree with the engine cutting off mid-stream."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_kernel_matches_interpreted_at_any_budget(self, data):
        program, trace = _small()
        budget = data.draw(st.integers(0, trace.length), label="budget")
        warmup = data.draw(st.integers(0, 60), label="warmup")
        depth = data.draw(st.sampled_from([20, 40, 60]), label="depth")
        interpreted = engine_result(
            program, core=TraceReplayCore(program, trace), depth=depth,
            warmup=warmup, budget=budget)
        kernel = kernel_run(program, trace, machine_for_depth(depth),
                            warmup_instructions=warmup,
                            max_instructions=budget)
        assert kernel == interpreted


class TestFallback:
    def test_wrongpath_is_unsupported(self, program, trace):
        with pytest.raises(KernelUnsupported, match="redirect"):
            kernel_run(program, trace,
                       machine_for_depth(20, speculation="wrongpath"))

    def test_unsupported_messages_name_the_workload(self, program, trace):
        # Fallbacks in a grid are attributed from the run ledger; the
        # message itself must say *whose* replay declined.
        with pytest.raises(KernelUnsupported, match="m88ksim"):
            kernel_run(program, trace,
                       machine_for_depth(20, speculation="wrongpath"))

    def test_truncated_trace_raises_instead_of_diverging(self, program):
        short = record_trace(program, max_instructions=50)
        with pytest.raises(TraceError, match="exhausted"):
            kernel_run(program, short, machine_for_depth(20))

    def test_budget_truncated_recording_replays_within_budget(self,
                                                              program):
        short = record_trace(program, max_instructions=50)
        interpreted = engine_result(
            program, core=TraceReplayCore(program, short), warmup=0,
            budget=50)
        kernel = kernel_run(program, short, machine_for_depth(20),
                            warmup_instructions=0, max_instructions=50)
        assert kernel == interpreted

    def test_wrong_program_rejected(self, trace):
        other = get_program("compress", scale=SCALE, seed=1)
        with pytest.raises(TraceError, match="does not match"):
            kernel_run(other, trace, machine_for_depth(20))


class TestNumpyFallback:
    """numpy is optional: the pure-Python lowering pass must produce the
    exact same lowered form (and therefore the exact same results)."""

    def test_forced_fallback_matches(self, program, monkeypatch):
        fresh = record_trace(program)
        with_numpy_available = lowering_backend()
        monkeypatch.setenv("REPRO_KERNEL_NUMPY", "0")
        assert lowering_backend() == "python"
        lowered = ensure_lowered(program, fresh)
        assert lowered.backend == "python"
        pure = kernel_run(program, fresh, machine_for_depth(40),
                          warmup_instructions=500)
        monkeypatch.delenv("REPRO_KERNEL_NUMPY")
        assert lowering_backend() == with_numpy_available
        # Against a numpy-lowered (or, numpy absent, independently
        # lowered) fresh trace *and* the interpreted replay.
        second = record_trace(program)
        assert pure == kernel_run(program, second, machine_for_depth(40),
                                  warmup_instructions=500)
        assert pure == engine_result(
            program, core=TraceReplayCore(program, second), depth=40)

    def test_lowered_arrays_identical_across_backends(self, program,
                                                      monkeypatch):
        with_numpy = ensure_lowered(program, record_trace(program))
        monkeypatch.setenv("REPRO_KERNEL_NUMPY", "0")
        pure = ensure_lowered(program, record_trace(program))
        for field in ("kclass", "byte_pcs", "dep1", "dep2", "mem_pos",
                      "mem_addr", "store_dep", "load_prefix",
                      "store_prefix", "branch_pos", "branch_pcs",
                      "branch_taken", "jr_pos", "jr_correct_cum",
                      "_hasres"):
            assert getattr(with_numpy, field) == getattr(pure, field), field
        mask = ~(machine_for_depth(20).icache.line_bytes - 1)
        assert with_numpy.codes_for(mask) == pure.codes_for(mask)
        # The ARVI pass's densified committed values (numpy scatter vs
        # the pure-Python cursor walk) must agree element-for-element.
        assert with_numpy.values() == pure.values()


class TestExecutePoint:
    """The REPRO_KERNEL knob and the kernel_source observability."""

    def _point(self, **overrides):
        fields = dict(benchmark="m88ksim", configuration="baseline",
                      pipeline_depth=40, scale=SCALE, warmup=500)
        fields.update(overrides)
        return ExperimentPoint(**fields).resolve()

    def test_kernel_on_off_equality_and_source(self, program, trace,
                                               monkeypatch):
        point = self._point()
        info_on, info_off = {}, {}
        on = execute_point(point, trace=trace, info=info_on)
        monkeypatch.setenv("REPRO_KERNEL", "0")
        off = execute_point(point, trace=trace, info=info_off)
        assert on == off
        assert info_on["kernel_source"] == "kernel"
        assert info_off["kernel_source"] == "interpreted"

    def test_live_points_report_live(self, trace):
        info = {}
        execute_point(self._point(), trace=False, info=info)
        assert info["kernel_source"] == "live"

    def test_arvi_configuration_replays_through_kernel(self, trace):
        # Since the fused ARVI pass landed, the paper's own grid axis
        # replays compiled too — no more interpreted fallback.
        info = {}
        arvi = execute_point(self._point(configuration="current"),
                             trace=trace, info=info)
        assert info["kernel_source"] == "kernel"
        assert arvi == execute_point(self._point(configuration="current"),
                                     trace=False)

    def test_wrongpath_points_stay_live(self):
        info = {}
        execute_point(self._point(benchmark="li", scale=0.01, warmup=50,
                                  speculation="wrongpath"), info=info)
        assert info["kernel_source"] == "live"


class TestProgressPhase:
    """The scheduler satellite: one-time lowering is its own
    ``phase="lower"`` event and never advances the completed counter."""

    def _run(self, events):
        plan = build_plan(("baseline",), (20, 40, 60), ("li",),
                          scale=0.01, warmup=50)
        results = run_plan(plan, jobs=1, use_cache=False, batch=True,
                           backend="serial", progress=events.append)
        return plan, results

    def test_lowering_is_its_own_phase(self):
        events = []
        plan, results = self._run(events)
        assert len(results) == len(plan)
        lower = [e for e in events if e.phase == "lower"]
        points = [e for e in events if e.phase == "point"]
        assert len(lower) == 1            # one workload identity -> once
        assert len(points) == len(plan)
        # The lower event precedes every completed point of its batch
        # and does not advance the counter.
        assert events.index(lower[0]) < min(
            events.index(e) for e in points
            if e.batch_id == lower[0].batch_id)
        assert lower[0].completed == 0
        assert [e.completed for e in points] == list(
            range(1, len(plan) + 1))

    def test_no_lower_phase_with_kernel_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        events = []
        plan, results = self._run(events)
        assert len(results) == len(plan)
        assert [e.phase for e in events] == ["point"] * len(plan)
