"""Trace-record/replay core (DESIGN.md §8).

The hard invariant: a replayed committed stream drives the timing engine
to a ``SimulationResult`` bit-for-bit equal (``==``) to the live
functional core, across configurations and depths — and the serialized
form round-trips losslessly.  Malformed traces are loud ``TraceError``\\ s
(the store layer turns them into misses), never silent divergence.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arvi import ValueMode
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.pipeline.functional import FunctionalCore
from repro.pipeline.trace import (
    CommittedTrace,
    TraceError,
    TraceRecorder,
    TraceReplayCore,
    record_trace,
)
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program

SCALE = 0.05


@pytest.fixture(scope="module")
def program():
    return get_program("m88ksim", scale=SCALE, seed=1)


@pytest.fixture(scope="module")
def trace(program):
    return record_trace(program)


def engine_result(program, *, core=None, kind=LevelTwoKind.HYBRID,
                  mode=ValueMode.CURRENT, depth=20, warmup=500,
                  speculation="redirect"):
    config = machine_for_depth(depth, speculation=speculation)
    predictor = build_predictor(kind, config)
    engine = PipelineEngine(program, config, predictor, value_mode=mode,
                            warmup_instructions=warmup, core=core)
    return engine.run()


class TestRecording:
    def test_stream_fidelity_field_by_field(self, program, trace):
        """Every engine-consumed DynInst field replays exactly (operand
        values are deliberately not recorded and replay as zero)."""
        live = FunctionalCore(program)
        replay = TraceReplayCore(program, trace)
        for expected in live.run():
            actual = replay.step()
            assert actual is not None
            for field in ("seq", "pc", "op", "rd", "rs1", "rs2", "result",
                          "taken", "next_pc", "addr", "store_value",
                          "is_load", "is_store", "is_cond_branch"):
                assert getattr(actual, field) == getattr(expected, field), (
                    field, expected.seq)
            assert actual.sval1 == 0 and actual.sval2 == 0
        assert replay.step() is None
        assert replay.halted == live.halted
        assert replay.instruction_count == live.instruction_count

    def test_recorder_is_single_use(self, program):
        recorder = TraceRecorder(program)
        recorder.record()
        with pytest.raises(TraceError, match="single-use"):
            recorder.record()

    def test_budget_truncated_recording(self, program):
        short = record_trace(program, max_instructions=100)
        assert short.length == 100
        assert not short.halted

    def test_columns_are_compact(self, program, trace):
        # Sparse columns: only branches/memory ops/stores consume entries.
        assert trace.branch_count < trace.length
        assert len(trace.addrs) < trace.length
        assert len(trace.store_values) <= len(trace.addrs)
        assert len(trace.taken_bits) == (trace.branch_count + 7) // 8


class TestReplayEquality:
    @pytest.mark.parametrize("kind,mode", [
        (LevelTwoKind.HYBRID, ValueMode.CURRENT),
        (LevelTwoKind.ARVI, ValueMode.CURRENT),
        (LevelTwoKind.ARVI, ValueMode.LOAD_BACK),
        (LevelTwoKind.ARVI, ValueMode.PERFECT),
    ])
    @pytest.mark.parametrize("depth", [20, 60])
    def test_replay_equals_live_simulation(self, program, trace, kind,
                                           mode, depth):
        live = engine_result(program, kind=kind, mode=mode, depth=depth)
        replayed = engine_result(
            program, core=TraceReplayCore(program, trace), kind=kind,
            mode=mode, depth=depth)
        assert replayed == live

    def test_one_trace_drives_many_engines(self, program, trace):
        """The materialized stream is shared: replaying twice reuses the
        same DynInst objects and still matches the live run."""
        first = engine_result(program, core=TraceReplayCore(program, trace))
        second = engine_result(program, core=TraceReplayCore(program, trace))
        live = engine_result(program)
        assert first == second == live
        assert trace.materialize(program) is trace.materialize(program)


class TestRoundTrip:
    def test_serialize_load_replay(self, program, trace):
        loaded = CommittedTrace.from_bytes(trace.to_bytes())
        assert loaded.length == trace.length
        assert loaded.pcs == trace.pcs
        assert loaded.results == trace.results
        assert loaded.taken_bits == trace.taken_bits
        assert loaded.addrs == trace.addrs
        assert loaded.store_values == trace.store_values
        assert loaded.halted == trace.halted
        assert (engine_result(program, core=TraceReplayCore(program, loaded))
                == engine_result(program))

    @pytest.mark.parametrize("mangle", [
        lambda blob: b"",
        lambda blob: b"NOTATRACE" + blob[9:],
        lambda blob: blob[:40],
        lambda blob: blob[:-8],
        lambda blob: blob + b"trailing-garbage",
    ])
    def test_malformed_bytes_raise(self, trace, mangle):
        with pytest.raises(TraceError):
            CommittedTrace.from_bytes(mangle(trace.to_bytes()))

    def test_format_version_mismatch_raises(self, trace, monkeypatch):
        import repro.pipeline.trace as trace_module

        blob = trace.to_bytes()
        monkeypatch.setattr(trace_module, "TRACE_FORMAT_VERSION", 999)
        with pytest.raises(TraceError, match="format"):
            CommittedTrace.from_bytes(blob)


@functools.lru_cache(maxsize=1)
def _fuzz_blob() -> bytes:
    """A small serialized trace the fuzz property corrupts (built once;
    hypothesis forbids function-scoped fixtures)."""
    return record_trace(get_program("li", scale=0.01, seed=1)).to_bytes()


class TestWireFuzz:
    """The shipped-trace integrity property (ISSUE 5): traces travel to
    distributed queue workers as bytes, so *any* truncation or bit flip
    — framing, header, digest, or a single column value — must raise
    ``TraceError``.  A silently divergent replay is the one failure mode
    a distributed backend can never tolerate."""

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_truncation_and_bitflips_always_raise(self, data):
        blob = _fuzz_blob()
        if data.draw(st.booleans(), label="truncate"):
            cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
            corrupted = blob[:cut]
        else:
            pos = data.draw(st.integers(0, len(blob) - 1), label="pos")
            bit = data.draw(st.integers(0, 7), label="bit")
            mutated = bytearray(blob)
            mutated[pos] ^= 1 << bit
            corrupted = bytes(mutated)
        with pytest.raises(TraceError):
            CommittedTrace.from_bytes(corrupted)

    def test_column_bitflip_is_caught_by_checksum(self, trace):
        """A flipped result value passes every structural check; only
        the digest can (and must) reject it."""
        blob = bytearray(trace.to_bytes())
        blob[-3] ^= 0x10                 # inside the store_values column
        with pytest.raises(TraceError, match="checksum"):
            CommittedTrace.from_bytes(bytes(blob))


class TestGuards:
    def test_wrongpath_rejects_replay_core(self, program, trace):
        with pytest.raises(ValueError, match="wrongpath"):
            engine_result(program, core=TraceReplayCore(program, trace),
                          speculation="wrongpath")

    def test_wrong_program_rejected(self, trace):
        other = get_program("compress", scale=SCALE, seed=1)
        with pytest.raises(TraceError, match="does not match"):
            TraceReplayCore(other, trace)

    def test_engine_requires_matching_program(self, program, trace):
        other = get_program("li", scale=SCALE, seed=1)
        config = machine_for_depth(20)
        with pytest.raises(ValueError, match="different program"):
            PipelineEngine(other, config,
                           build_predictor(LevelTwoKind.HYBRID, config),
                           core=TraceReplayCore(program, trace))

    def test_exhausted_trace_raises_instead_of_diverging(self, program):
        short = record_trace(program, max_instructions=50)
        core = TraceReplayCore(program, short)
        for _ in range(50):
            assert core.step() is not None
        with pytest.raises(TraceError, match="exhausted"):
            core.step()

    def test_take_stream_respects_budget_and_freshness(self, program, trace):
        core = TraceReplayCore(program, trace)
        assert core.take_stream(trace.length - 1) is None  # would truncate
        stream = core.take_stream(10_000_000)
        assert stream is not None and len(stream) == trace.length
        assert core.halted and core.instruction_count == trace.length
        assert core.step() is None
        # A partially stepped core can't hand over wholesale.
        stepped = TraceReplayCore(program, trace)
        stepped.step()
        assert stepped.take_stream(10_000_000) is None

    def test_truncated_trace_engine_run_raises(self, program):
        short = record_trace(program, max_instructions=50)
        with pytest.raises(TraceError, match="exhausted"):
            engine_result(program, core=TraceReplayCore(program, short))
