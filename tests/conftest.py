"""Shared fixtures: small programs and machines used across test modules."""

from __future__ import annotations

import os

import pytest

from repro.isa import AsmBuilder, nez
from repro.isa.regs import s0, t0, t1, t2, zero
from repro.pipeline.config import machine_for_depth


@pytest.fixture(scope="session", autouse=True)
def isolated_result_cache(tmp_path_factory):
    """Point the experiment-service result cache at a throwaway directory.

    The unit suite must always *compute* results — replaying from the
    repo-level persistent cache could mask simulation changes whose
    author forgot to bump ``PLAN_SCHEMA_VERSION``, and test runs should
    not mutate ``benchmarks/results/cache/`` as a side effect.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("result-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def isolated_trace_store(tmp_path_factory):
    """Point the on-disk committed-trace store at a throwaway directory.

    Disk mode is off by default (``REPRO_TRACE=1`` is in-memory only),
    but any test that switches ``REPRO_TRACE=disk`` must never read or
    mutate ``benchmarks/results/traces/``.
    """
    previous = os.environ.get("REPRO_TRACE_DIR")
    os.environ["REPRO_TRACE_DIR"] = str(
        tmp_path_factory.mktemp("trace-store"))
    yield
    if previous is None:
        os.environ.pop("REPRO_TRACE_DIR", None)
    else:
        os.environ["REPRO_TRACE_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def isolated_obs_dir(tmp_path_factory):
    """Point telemetry run ledgers at a throwaway directory.

    Telemetry is off by default, but CI runs one tier-1 leg with
    ``REPRO_OBS=1`` (the suite must pass identically with the flight
    recorder on), and no test run may write into
    ``benchmarks/results/obs/``.
    """
    previous = os.environ.get("REPRO_OBS_DIR")
    os.environ["REPRO_OBS_DIR"] = str(tmp_path_factory.mktemp("obs"))
    yield
    if previous is None:
        os.environ.pop("REPRO_OBS_DIR", None)
    else:
        os.environ["REPRO_OBS_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def isolated_resilience_dirs(tmp_path_factory):
    """Isolate the resilience layer (DESIGN.md §12) from the repo and env.

    * deadletter quarantine and run manifests go to throwaway dirs —
      tests must never write ``benchmarks/results/deadletter/`` or
      ``.../manifests/``;
    * ``REPRO_FSYNC=0`` — durability fsyncs are pure overhead on tmpfs
      test dirs (the fsync behaviour itself is unit-tested explicitly);
    * any ambient chaos/timeout/manifest knobs are cleared so the suite
      is deterministic regardless of the invoking shell.
    """
    saved = {name: os.environ.get(name) for name in (
        "REPRO_DEADLETTER_DIR", "REPRO_MANIFEST_DIR", "REPRO_FSYNC",
        "REPRO_FAULTS", "REPRO_MANIFEST", "REPRO_POINT_TIMEOUT",
        "REPRO_DEGRADE", "REPRO_DEADLETTER",
        "REPRO_SERVE", "REPRO_SERVE_PORT", "REPRO_VIEWS")}
    os.environ["REPRO_DEADLETTER_DIR"] = str(
        tmp_path_factory.mktemp("deadletter"))
    os.environ["REPRO_MANIFEST_DIR"] = str(
        tmp_path_factory.mktemp("manifests"))
    os.environ["REPRO_FSYNC"] = "0"
    for name in ("REPRO_FAULTS", "REPRO_MANIFEST", "REPRO_POINT_TIMEOUT",
                 "REPRO_DEGRADE", "REPRO_DEADLETTER",
                 "REPRO_SERVE", "REPRO_SERVE_PORT", "REPRO_VIEWS"):
        os.environ.pop(name, None)
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


@pytest.fixture
def tiny_machine():
    """The 20-stage paper machine."""
    return machine_for_depth(20)


def build_counted_loop(iterations: int = 10) -> "Program":
    """sum(1..n) via a count-down loop; result in t1."""
    b = AsmBuilder("counted-loop")
    b.label("main")
    b.li(t0, iterations)
    b.li(t1, 0)
    with b.while_(nez(t0)):
        b.add(t1, t1, t0)
        b.addi(t0, t0, -1)
    b.halt()
    return b.build()


def build_memory_loop(words: int = 16) -> "Program":
    """Writes i*3 to a table then sums it back; result in t2."""
    b = AsmBuilder("memory-loop")
    b.data_space("table", words)
    b.label("main")
    b.la(s0, "table")
    with b.for_range(t0, 0, words):
        b.slli(t1, t0, 2)
        b.add(t1, t1, s0)
        b.add(t2, t0, t0)
        b.add(t2, t2, t0)
        b.sw(t2, t1, 0)
    b.li(t2, 0)
    with b.for_range(t0, 0, words):
        b.slli(t1, t0, 2)
        b.add(t1, t1, s0)
        b.lw(t1, t1, 0)
        b.add(t2, t2, t1)
    b.halt()
    return b.build()


@pytest.fixture
def counted_loop_program():
    return build_counted_loop()


@pytest.fixture
def memory_loop_program():
    return build_memory_loop()
