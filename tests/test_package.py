"""Public API surface tests."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_types_exported(self):
        assert repro.DDT is not None
        assert repro.FastDDT is not None
        assert repro.ARVIPredictor is not None
        assert repro.LevelTwoKind is not None
        assert callable(repro.simulate)
        assert callable(repro.machine_for_depth)

    def test_subpackages_importable(self):
        import repro.applications
        import repro.core
        import repro.experiments
        import repro.isa
        import repro.pipeline
        import repro.predictors
        import repro.workloads
        assert repro.workloads.BENCHMARKS
