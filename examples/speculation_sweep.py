#!/usr/bin/env python3
"""Speculation-mode depth sweep: redirect vs. materialized wrong path.

Runs the m88ksim hybrid and ARVI(current) configurations at 20/40/60
stages through the experiment service in *both* speculation modes and
prints the wrong-path/pollution comparison table — how much speculative
work a mispredicted branch wastes, and what it does to the caches, as the
pipeline deepens (cf. Mittal's survey, arXiv:1804.00261, on wrong-path
effects being first-order).

Each mode has its own cache keys, so warm re-runs replay instantly; set
``REPRO_CACHE=0`` to force recomputation.  ``REPRO_SCALE`` / ``REPRO_JOBS``
are honoured as everywhere else (the CI smoke job runs this script at a
small scale).

Run:  python examples/speculation_sweep.py
"""

from repro.experiments import render_speculation_comparison, run_suite
from repro.pipeline.config import PIPELINE_DEPTHS
from repro.speculation import SPECULATION_MODES

BENCHMARKS = ("m88ksim",)
CONFIGURATIONS = ("baseline", "current")


def main() -> None:
    results = []
    for mode in SPECULATION_MODES:
        print(f"-- speculation={mode}")
        grid = run_suite(
            configurations=CONFIGURATIONS, depths=PIPELINE_DEPTHS,
            benchmarks=BENCHMARKS, speculation=mode,
            progress=lambda e: print(
                f"  [{e.completed}/{e.total}] {e.point.benchmark}/"
                f"{e.point.configuration}/{e.point.pipeline_depth} "
                f"({e.source}, {e.elapsed:.1f}s)"))
        results.extend(grid.values())
    print()
    print(render_speculation_comparison(
        results,
        title="Wrong-path work and cache pollution across pipeline depths"))
    print("\nExpected shape: deeper pipelines resolve branches later, so")
    print("each misprediction drags more wrong-path instructions through")
    print("the frontend and leaves more speculative fills in the caches.")


if __name__ == "__main__":
    main()
