#!/usr/bin/env python3
"""Quickstart: write a small program, simulate it, compare predictors.

Builds a loop whose inner trip count is decided by a table value loaded
two loop bodies ahead of its use — so the deciding register is
*committed* when the loop-exit branch is fetched, exactly the situation
the ARVI predictor exploits (paper Section 4).  Runs it on the 20-stage
paper machine with the two-level 2Bc-gskew baseline and with ARVI as the
second level.

Run:  python examples/quickstart.py
"""

import random

from repro import LevelTwoKind, ValueMode, machine_for_depth, simulate
from repro.isa import AsmBuilder, nez
from repro.isa.regs import s0, s1, s2, s3, s4, s5, t0, t1, t2

OUTER_ITERATIONS = 1100  # each runs two unrolled bodies
# A long pseudo-random trip-count sequence: far too long for branch
# history to memorize, but each *value* still fully determines the inner
# loop's exit iteration — exactly what ARVI exploits.
_RNG = random.Random(42)
TRIP_COUNTS = [_RNG.randrange(10) for _ in range(512)]


def build_program():
    """A value-determined nested loop (a miniature m88ksim pattern).

    The body is unrolled twice with two count registers loaded directly
    (no move chains): each count is consumed one full unrolled iteration
    — about 50 instructions — after its load, so it is committed and its
    value reaches ARVI's BVIT index while the chain-depth tag still
    identifies the inner-loop iteration.
    """
    b = AsmBuilder("quickstart")
    b.data_word("trip_counts", *TRIP_COUNTS)
    b.label("main")
    b.la(s0, "trip_counts")
    b.li(s2, 0)              # work accumulator
    b.lw(s4, s0, 0)          # prime both count registers
    b.lw(s5, s0, 4)
    b.li(s3, 2)              # next table index
    with b.for_range(s1, 0, OUTER_ITERATIONS):
        for count_reg in (s4, s5):
            b.move(t1, count_reg)    # committed trip count
            # Refill this slot for use one unrolled iteration from now.
            b.slli(t0, s3, 2)
            b.add(t0, t0, s0)
            b.lw(count_reg, t0, 0)
            b.addi(s3, s3, 1)
            b.andi(s3, s3, len(TRIP_COUNTS) - 1)
            # Spacer arithmetic, then the value-determined inner loop.
            b.add(s2, s2, t1)
            b.slli(t2, s2, 1)
            b.xor(s2, s2, t2)
            with b.while_(nez(t1)):
                b.addi(t1, t1, -1)
                b.addi(s2, s2, 1)
    b.halt()
    return b.build()


def main() -> None:
    program = build_program()
    machine = machine_for_depth(20)
    print(f"program: {len(program)} static instructions\n")

    baseline = simulate(program, machine, LevelTwoKind.HYBRID,
                        warmup_instructions=4000)
    arvi = simulate(program, machine, LevelTwoKind.ARVI,
                    value_mode=ValueMode.CURRENT,
                    warmup_instructions=4000)

    print("--- two-level 2Bc-gskew baseline ---")
    print(baseline.summary())
    print("\n--- ARVI second-level predictor ---")
    print(arvi.summary())
    print(f"\nIPC change with ARVI: "
          f"{100 * (arvi.ipc / baseline.ipc - 1):+.1f}%")
    print("The trip-count register is committed at prediction time, so")
    print("ARVI indexes the BVIT with its value, and the chain-depth tag")
    print("identifies the loop iteration: the exit becomes predictable.")


if __name__ == "__main__":
    main()
