"""Live-view service smoke: served views == post-hoc views, mid-run reads.

Boots ``python -m repro.serve`` (the HTTP/SSE streaming tier, DESIGN.md
§14) over a queue-backed grid, reads ``/healthz`` and ``/views`` *while
the grid is still running* — exercising the many-concurrent-readers
path against live snapshots — then checks the view-identity invariant
three ways once the grid drains:

* the final snapshot **served over HTTP** must byte-equal
* the final snapshot the service **wrote to disk** (``--output``), and
* their identity views must byte-equal an **in-process post-hoc**
  :func:`repro.experiments.aggregate.build_views` over a fresh serial
  run of the same plan (which itself must equal the distributed run —
  the standing bit-for-bit invariant, extended to views).

CI runs this at ``REPRO_SCALE=0.05`` as the serve-smoke gate and
uploads the snapshot JSON as an artifact; locally::

    REPRO_SCALE=0.05 python examples/serve_smoke.py
"""

import json
import os
import pathlib
import re
import subprocess
import sys
import time
import urllib.request

from repro.experiments.aggregate import build_views, identity_json
from repro.experiments.plan import build_plan
from repro.experiments.scheduler import run_plan

GRID = dict(configurations=("baseline", "current"), depths=(20, 40),
            benchmarks=("li", "compress"))
OUTPUT = pathlib.Path("serve-smoke-views.json")


def get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def served_identity(views: dict) -> str:
    from repro.experiments.aggregate import IDENTITY_VIEWS, canonical_json

    return canonical_json({name: views[name] for name in IDENTITY_VIEWS})


def main() -> None:
    env = {**os.environ,
           "PYTHONPATH": "src" + os.pathsep + os.environ.get(
               "PYTHONPATH", ""),
           "REPRO_CACHE": "0",
           "REPRO_QUEUE_WORKERS": "2"}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--backend", "queue", "--jobs", "2", "--no-cache",
         "--benchmarks", ",".join(GRID["benchmarks"]),
         "--configurations", ",".join(GRID["configurations"]),
         "--depths", ",".join(str(d) for d in GRID["depths"]),
         "--output", str(OUTPUT), "--linger", "30"],
        env=env, stdout=subprocess.PIPE, stderr=None, text=True)
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no service URL in banner: {banner!r}"
        base = match.group(0)
        print(f"[serve-smoke] service up at {base}")

        versions, midrun_reads = [], 0
        deadline = time.monotonic() + 1800
        while True:
            assert time.monotonic() < deadline, "grid never finished"
            assert proc.poll() is None, "service died mid-grid"
            health = get(base + "/healthz")
            versions.append(health["version"])
            if health["done"]:
                break
            if health["results"]:
                get(base + "/views/figure6")      # live mid-run read
                midrun_reads += 1
            time.sleep(0.2)
        assert versions == sorted(versions), "versions went backwards"
        print(f"[serve-smoke] observed versions {versions[0]} -> "
              f"{versions[-1]} across {len(versions)} health polls, "
              f"{midrun_reads} mid-run view reads")

        served = get(base + "/views")             # the served final state
        assert served["done"] is True
    finally:
        if proc.poll() is None:
            proc.terminate()
        proc.wait(timeout=120)
    assert proc.returncode in (0, -15), f"service exited {proc.returncode}"

    written = json.loads(OUTPUT.read_text())
    assert served == written, "served final snapshot != --output snapshot"

    plan = build_plan(**GRID)
    serial = run_plan(plan, jobs=1, use_cache=False, backend="serial")
    posthoc = identity_json(build_views(serial))
    assert served_identity(served["views"]) == posthoc, (
        "live-served views diverged from the post-hoc build")
    status = served["views"]["status"]
    assert status["done"] == len(plan) and status["failed"] == 0
    print(f"[serve-smoke] OK: {status['done']} points; live-served views "
          f"== post-hoc views byte-for-byte (version {served['version']}, "
          f"sources {status['sources']})")


if __name__ == "__main__":
    main()
