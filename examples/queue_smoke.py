"""Queue-backend smoke: distributed grid == serial grid, traces shipped.

Runs a Figure-5-shaped redirect grid (plus a small wrongpath slice)
twice — once on the serial backend, once on the queue backend with two
``python -m repro.worker`` subprocesses draining a filesystem broker —
and asserts the results are bit-for-bit equal (``==``).  Also asserts
that every redirect batch reached its worker with a *shipped* committed
trace (the cluster shares one functional run per workload) while
wrongpath batches ran live.  CI runs this at ``REPRO_SCALE=0.05`` with
``REPRO_OBS=1`` as the queue-backend gate — each run then writes a
merged telemetry ledger (DESIGN.md §11) that CI schema-validates with
``python -m repro.obs validate`` and uploads as an artifact; locally::

    REPRO_SCALE=0.05 python examples/queue_smoke.py
"""

from repro.experiments.backends import QueueBackend
from repro.experiments.runner import run_suite

GRID = dict(configurations=("baseline", "current"), depths=(20, 40),
            benchmarks=("m88ksim", "compress"))


def run_mode(speculation: str) -> None:
    serial = run_suite(**GRID, speculation=speculation, jobs=1,
                       use_cache=False, backend="serial")
    backend = QueueBackend(workers=2, lease_timeout=60.0, poll=0.02,
                           timeout=1800.0)
    queued = run_suite(**GRID, speculation=speculation, jobs=2,
                       use_cache=False, backend=backend)
    assert queued == serial, (
        f"queue backend diverged from serial in {speculation} mode")
    sources = set(backend.trace_sources.values())
    expected = {"shipped"} if speculation == "redirect" else {"live"}
    assert sources == expected, (
        f"{speculation} batches used traces {sources}, expected {expected}")
    print(f"[queue-smoke] {speculation}: {len(queued)} points equal across "
          f"serial/queue; per-batch trace_source: "
          f"{dict(sorted(backend.trace_sources.items()))}")
    for (benchmark, configuration, depth), result in sorted(queued.items()):
        print(f"  {benchmark:10s} {configuration:8s} depth {depth:2d}  "
              f"accuracy {result.prediction_accuracy:.4f}  "
              f"ipc {result.ipc:.3f}")


def main() -> None:
    run_mode("redirect")
    run_mode("wrongpath")
    print("[queue-smoke] OK: distributed results are bit-for-bit equal")


if __name__ == "__main__":
    main()
