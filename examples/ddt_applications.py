#!/usr/bin/env python3
"""The Section 3 applications of on-line dependence tracking, in one tour.

Runs the ``li`` workload with every observer attached, then exercises the
standalone application models:

1. chain-length statistics (the per-row DDT counters);
2. criticality detection via chain length vs measured slack;
3. branch-decoupled (BEX) chain extraction;
4. selective value prediction site selection;
5. chain-length-aware issue scheduling;
6. SMT fetch policies (ICOUNT vs chain metrics).

Run:  python examples/ddt_applications.py
"""

from repro.applications import (
    BexExtractor,
    ChainLengthObserver,
    CriticalityObserver,
    ThreadModel,
    run_selective_value_prediction,
)
from repro.applications.scheduling import compare_policies as sched_policies
from repro.applications.smt_fetch import compare_policies as smt_policies
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program


def main() -> None:
    program = get_program("li", scale=0.4)
    machine = machine_for_depth(20)

    chains = ChainLengthObserver()
    criticality = CriticalityObserver()
    bex = BexExtractor(max_chain=8)
    predictor = build_predictor(LevelTwoKind.HYBRID, machine)
    engine = PipelineEngine(program, machine, predictor,
                            observers=[chains, criticality, bex])
    result = engine.run()
    print(f"ran li: {result.total_instructions} instructions, "
          f"IPC {result.ipc:.3f}\n")

    print("1. dependence chain lengths (DDT row counters)")
    stats = chains.stats
    print(f"   mean chain {stats.mean():.2f}, "
          f"median {stats.percentile(0.5)}, "
          f"p90 {stats.percentile(0.9)}; "
          f"loads {stats.mean_for(stats.load_histogram):.2f}, "
          f"branches {stats.mean_for(stats.branch_histogram):.2f}\n")

    print("2. criticality detection (chain length vs commit slack)")
    print(f"   {criticality.report()}\n")

    print("3. branch-decoupled execution (BEX) chain extraction")
    report = bex.report
    print(f"   {report.branches} branches, mean chain "
          f"{report.mean_chain_length():.2f}, "
          f"{100 * report.decoupleable_fraction:.0f}% decoupleable "
          f"(chain <= 8)\n")

    print("4. selective value prediction (Calder-style selection)")
    selection = run_selective_value_prediction(program, threshold=3,
                                               max_instructions=60_000)
    print(f"   {selection.selected_sites}/{selection.total_sites} sites "
          f"selected, {100 * selection.coverage:.0f}% dynamic coverage; "
          f"last-value accuracy {selection.selected_accuracy:.3f} on "
          f"selected vs {selection.overall_accuracy:.3f} overall\n")

    print("5. chain-length-aware issue scheduling (makespans, width 2)")
    print(f"   {sched_policies(size=240, width=2, seed=1)}\n")

    print("6. SMT fetch policies (throughput, 4 threads)")
    throughputs = smt_policies(cycles=3000)
    for policy, value in throughputs.items():
        print(f"   {policy:12s} {value:.3f} instructions/cycle")


if __name__ == "__main__":
    main()
