"""Chaos smoke: seeded fault schedules vs the queue backend (ISSUE 8).

Computes a fault-free serial baseline, then re-runs the same grid on
the queue backend under several ``REPRO_FAULTS`` seeds (profile
``mixed``: worker crashes, transient broker I/O errors, payload
corruption, partial writes, heartbeat stalls, slow points) and asserts
the resilience property end to end: every chaotic run either completes
**bit-for-bit equal** to the baseline or fails with a **typed** error —
never a hang (a queue timeout fails the run), never silent divergence.

Each run executes under ``REPRO_OBS=1``; afterwards the merged run
ledger is checked for the ``kind="fault"`` events the injector logs, so
the flight recorder provably records what was injected where.  CI runs
this as the ``chaos-smoke`` job at ``REPRO_SCALE=0.05`` and uploads the
ledgers (always) and the deadletter quarantine (on failure); locally::

    REPRO_SCALE=0.05 REPRO_OBS=1 python examples/chaos_smoke.py
"""

import os

from repro.experiments.backends import QueueBackend
from repro.experiments.broker import QueueError
from repro.experiments.runner import run_suite
from repro.faults.policy import PointTimeout, RetriesExhausted
from repro.obs import obs_root
from repro.obs.ledger import read_events

GRID = dict(configurations=("baseline", "current"), depths=(20, 40),
            benchmarks=("compress",))
SEEDS = (1, 2, 3)
PROFILE = os.environ.get("CHAOS_PROFILE", "mixed")


def newest_run_events() -> list[dict]:
    root = obs_root()
    runs = sorted(path for path in root.iterdir()
                  if path.is_dir() and path.name.startswith("run-"))
    if not runs:
        return []
    ledger = runs[-1] / "ledger.jsonl"
    return read_events(ledger) if ledger.exists() else []


def main() -> None:
    os.environ.pop("REPRO_FAULTS", None)
    serial = run_suite(**GRID, jobs=1, use_cache=False, backend="serial")
    print(f"[chaos-smoke] baseline: {len(serial)} points (serial, "
          "fault-free)")

    total_faults = 0
    for seed in SEEDS:
        spec = f"{seed}:{PROFILE}"
        os.environ["REPRO_FAULTS"] = spec
        backend = QueueBackend(workers=2, lease_timeout=5.0, poll=0.02,
                               timeout=900.0, max_attempts=4)
        try:
            try:
                chaotic = run_suite(**GRID, jobs=2, use_cache=False,
                                    backend=backend)
            except (QueueError, RetriesExhausted, PointTimeout) as exc:
                assert "timed out" not in str(exc), (
                    f"REPRO_FAULTS={spec} hung the grid: {exc}")
                outcome = f"typed failure ({type(exc).__name__})"
            else:
                assert chaotic == serial, (
                    f"REPRO_FAULTS={spec} silently diverged from the "
                    "fault-free baseline")
                outcome = "bit-identical"
        finally:
            os.environ.pop("REPRO_FAULTS", None)

        faults = [event for event in newest_run_events()
                  if event.get("kind") == "fault"]
        for event in faults:
            attrs = event.get("attrs") or {}
            assert attrs.get("fault") and attrs.get("site"), (
                f"fault event missing attribution: {event}")
            assert attrs.get("spec") == spec
        total_faults += len(faults)
        injected = sorted({(a.get("fault"), a.get("site")) for a in
                           ((e.get("attrs") or {}) for e in faults)})
        print(f"[chaos-smoke] REPRO_FAULTS={spec}: {outcome}; "
              f"{len(faults)} fault(s) in the run ledger "
              f"{injected if injected else ''}".rstrip())

    assert total_faults > 0, (
        f"no faults injected across seeds {SEEDS} — the chaos harness "
        "is not wired in")
    print(f"[chaos-smoke] OK: {len(SEEDS)} seeded schedules, "
          f"{total_faults} injected faults, no hangs, no divergence")


if __name__ == "__main__":
    main()
