#!/usr/bin/env python3
"""The paper's m88ksim case study (Figure 7), examined per branch.

Reproduces the analysis of Section 6: the ``lookupdisasm`` while-loop
branches are *load branches* (their chains end in pending pointer-chase
loads), yet ARVI predicts them almost perfectly because the committed key
value plus the chain-depth tag identifies every (key, iteration) pair —
and the static hash table makes each pair's outcome deterministic.

Run:  python examples/m88ksim_case_study.py
"""

from collections import defaultdict

from repro.core import ValueMode
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program


def run_with_branch_profile(kind, value_mode=ValueMode.CURRENT,
                            scale=0.6, warmup=8000):
    """Run m88ksim collecting per-PC final-prediction accuracy."""
    program = get_program("m88ksim", scale=scale)
    config = machine_for_depth(20)
    predictor = build_predictor(kind, config)
    engine = PipelineEngine(program, config, predictor,
                            value_mode=value_mode,
                            warmup_instructions=warmup)

    profile = defaultdict(lambda: [0, 0])
    original = engine._resolve_branch

    def spy(dyn, decision, fetch, complete, measured):
        outcome = original(dyn, decision, fetch, complete, measured)
        if measured:
            entry = profile[dyn.pc]
            entry[0] += 1
            entry[1] += decision.final_pred == dyn.taken
        return outcome

    engine._resolve_branch = spy
    result = engine.run()
    return program, result, profile


def main() -> None:
    program, hybrid_result, hybrid_profile = run_with_branch_profile(
        LevelTwoKind.HYBRID)
    _, arvi_result, arvi_profile = run_with_branch_profile(
        LevelTwoKind.ARVI)

    walk = program.labels["walk"]
    null_check, opcode_check = walk, walk + 2

    print("m88ksim lookupdisasm kernel (paper Figure 7)")
    print("=" * 56)
    print(f"overall accuracy : hybrid {hybrid_result.prediction_accuracy:.4f}"
          f"  vs ARVI {arvi_result.prediction_accuracy:.4f}")
    print(f"overall IPC      : hybrid {hybrid_result.ipc:.3f}"
          f"  vs ARVI {arvi_result.ipc:.3f}"
          f"  ({100 * (arvi_result.ipc / hybrid_result.ipc - 1):+.1f}%)")
    print(f"load-branch rate : {arvi_result.load_branch_rate:.2f}"
          f"  (calc acc {arvi_result.calculated.accuracy:.4f},"
          f" load acc {arvi_result.load.accuracy:.4f})")
    print()
    print("the two while-loop branches of Figure 7:")
    for label, pc in (("ptr != NULL ", null_check),
                      ("opcode != key", opcode_check)):
        h_n, h_c = hybrid_profile[pc]
        a_n, a_c = arvi_profile[pc]
        print(f"  {label} @pc={pc}: "
              f"hybrid {h_c / max(h_n, 1):.4f} ({h_n} seen)  ->  "
              f"ARVI {a_c / max(a_n, 1):.4f} ({a_n} seen)")
    print()
    print("Both walk branches depend on pending loads (load branches),")
    print("but the committed key + chain-depth tag make them predictable")
    print("for ARVI — the paper's central m88ksim observation.")


if __name__ == "__main__":
    main()
