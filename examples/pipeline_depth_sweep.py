#!/usr/bin/env python3
"""Mini Figure 6: how ARVI's advantage scales with pipeline depth.

Simulates two contrasting benchmarks (m88ksim — value-determined exits;
go — hard, structureless branches) at 20/40/60 stages and prints
normalized IPC, showing the paper's trend: deeper pipelines magnify the
benefit of better prediction.

Run:  python examples/pipeline_depth_sweep.py   (takes a couple of minutes)
"""

from repro.core import ValueMode
from repro.experiments.report import format_table
from repro.pipeline.config import PIPELINE_DEPTHS, machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program

BENCHMARKS = ("m88ksim", "go")
SCALE = 0.5
WARMUP = 6000


def run(benchmark: str, depth: int, kind: LevelTwoKind):
    program = get_program(benchmark, scale=SCALE)
    config = machine_for_depth(depth)
    engine = PipelineEngine(
        program, config, build_predictor(kind, config),
        value_mode=ValueMode.CURRENT, warmup_instructions=WARMUP)
    return engine.run()


def main() -> None:
    rows = []
    for benchmark in BENCHMARKS:
        for depth in PIPELINE_DEPTHS:
            baseline = run(benchmark, depth, LevelTwoKind.HYBRID)
            arvi = run(benchmark, depth, LevelTwoKind.ARVI)
            rows.append([
                benchmark, depth,
                baseline.prediction_accuracy, arvi.prediction_accuracy,
                arvi.ipc / baseline.ipc,
            ])
    print(format_table(
        ["benchmark", "depth", "baseline acc", "ARVI acc",
         "normalized IPC"],
        rows, title="ARVI vs two-level 2Bc-gskew across pipeline depths"))
    print("\nExpected shape: m88ksim gains large and growing with depth;")
    print("go gains small (hard load branches with little value structure).")


if __name__ == "__main__":
    main()
