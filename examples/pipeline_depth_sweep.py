#!/usr/bin/env python3
"""Mini Figure 6: how ARVI's advantage scales with pipeline depth.

Simulates two contrasting benchmarks (m88ksim — value-determined exits;
go — hard, structureless branches) at 20/40/60 stages and prints
normalized IPC, showing the paper's trend: deeper pipelines magnify the
benefit of better prediction.

The grid goes through the experiment service: points are sharded across
``REPRO_JOBS`` worker processes (default: all CPUs) and completed points
are replayed from the result cache, so a re-run after the first is nearly
instant.  Set ``REPRO_CACHE=0`` to force recomputation.

Run:  python examples/pipeline_depth_sweep.py
"""

from repro.experiments import format_table, run_suite
from repro.pipeline.config import PIPELINE_DEPTHS

BENCHMARKS = ("m88ksim", "go")
SCALE = 0.5
WARMUP = 6000


def main() -> None:
    grid = run_suite(
        configurations=("baseline", "current"), depths=PIPELINE_DEPTHS,
        benchmarks=BENCHMARKS, scale=SCALE, warmup=WARMUP,
        progress=lambda e: print(
            f"  [{e.completed}/{e.total}] {e.point.benchmark}/"
            f"{e.point.configuration}/{e.point.pipeline_depth} "
            f"({e.source}, {e.elapsed:.1f}s)"))
    rows = []
    for benchmark in BENCHMARKS:
        for depth in PIPELINE_DEPTHS:
            baseline = grid[(benchmark, "baseline", depth)]
            arvi = grid[(benchmark, "current", depth)]
            rows.append([
                benchmark, depth,
                baseline.prediction_accuracy, arvi.prediction_accuracy,
                arvi.ipc / baseline.ipc,
            ])
    print(format_table(
        ["benchmark", "depth", "baseline acc", "ARVI acc",
         "normalized IPC"],
        rows, title="ARVI vs two-level 2Bc-gskew across pipeline depths"))
    print("\nExpected shape: m88ksim gains large and growing with depth;")
    print("go gains small (hard load branches with little value structure).")


if __name__ == "__main__":
    main()
