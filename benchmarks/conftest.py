"""Shared benchmark helpers.

Every figure/table benchmark writes its rendered output to
``benchmarks/results/<name>.txt`` (so the regenerated paper artifacts
survive pytest's output capture) and also prints it.  ``REPRO_SCALE`` and
``REPRO_WARMUP`` rescale the simulations (see DESIGN.md §2 on windows);
``REPRO_JOBS`` shards the figure grids across worker processes and
completed points replay from ``benchmarks/results/cache/`` (DESIGN.md §6).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture
def save_result():
    """Write rendered figure/table text to the results directory."""

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@pytest.fixture(scope="session")
def warmup() -> int:
    return int(os.environ.get("REPRO_WARMUP", "10000"))
