"""Regenerate paper Tables 1-4 and the hardware sizing claims.

These are configuration-derived tables; the benchmark times their
(re)generation and the assertions pin the paper's stated values.
"""

from repro.experiments.tables import (
    render_all,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    storage_summary,
)


def test_table1_arvi_access_steps(benchmark, save_result):
    text = benchmark(render_table1)
    save_result("table1_arvi_access", text)
    assert "BVIT" in text


def test_table2_architectural_parameters(benchmark, save_result):
    text = benchmark(render_table2)
    save_result("table2_machine", text)
    assert "256" in text          # ROB entries
    assert "4 ALUs" in text


def test_table3_benchmarks(benchmark, save_result):
    text = benchmark(render_table3)
    save_result("table3_benchmarks", text)
    for name in ("gcc", "compress", "go", "ijpeg", "li", "m88ksim",
                 "perl", "vortex"):
        assert name in text


def test_table4_predictor_latencies(benchmark, save_result):
    text = benchmark(render_table4)
    save_result("table4_latencies", text)
    # Paper Table 4: ARVI 6/12/18 cycles; hybrid 2/4/6.
    assert "6        12        18" in text.replace("  ", "  ")


def test_section2_hardware_sizing(benchmark, save_result):
    text = benchmark(storage_summary)
    save_result("section2_sizing", text)
    # Paper: 80 x 72 DDT = 5760 bits; 72 x 11 shadow = 792 bits.
    assert "5760 bits" in text
    assert "792 bits" in text


def test_render_all_regenerates_every_artifact(benchmark, save_result):
    """One-shot regeneration of every configuration-derived artifact;
    its keys are the result-file names the individual benches write."""
    artifacts = benchmark(render_all)
    assert set(artifacts) == {
        "table1_arvi_access", "table2_machine", "table3_benchmarks",
        "table4_latencies", "section2_sizing",
    }
    for name, text in artifacts.items():
        save_result(name, text)
