"""Regenerate paper Figure 5: calculated vs load branch behaviour.

* 5(a): load-branch fraction per benchmark at 20/40/60 stages — the paper
  reports a large fraction (most SPECint branches are load-evaluate-
  branch) that grows slightly with depth.
* 5(b): load branches predict worse than calculated branches.
"""

from repro.experiments.figure5 import run_figure5
from repro.experiments.report import arithmetic_mean
from repro.pipeline.config import PIPELINE_DEPTHS
from repro.workloads.registry import BENCHMARKS


def test_figure5(benchmark, save_result, scale, warmup):
    # Points shard across REPRO_JOBS workers and replay from the result
    # cache when warm (run_figure5 resolves both from the environment).
    data = benchmark.pedantic(
        lambda: run_figure5(scale=scale, warmup=warmup),
        rounds=1, iterations=1)
    save_result("figure5", data.render())

    # Shape 1: the load-branch fraction is substantial on average.
    rates_20 = [data.load_rates[(bench, 20)] for bench in BENCHMARKS]
    assert arithmetic_mean(rates_20) > 0.35

    # Shape 2: the mean fraction does not shrink with pipeline depth
    # (the paper observes a slight increase).
    mean_by_depth = {
        depth: arithmetic_mean(
            [data.load_rates[(bench, depth)] for bench in BENCHMARKS])
        for depth in PIPELINE_DEPTHS
    }
    assert mean_by_depth[60] >= mean_by_depth[20] - 0.02

    # Shape 3: calculated branches predict better than load branches on
    # average and for nearly every benchmark.
    calc = [data.calc_accuracy[bench] for bench in BENCHMARKS]
    load = [data.load_accuracy[bench] for bench in BENCHMARKS]
    assert arithmetic_mean(calc) > arithmetic_mean(load)
    better = sum(c > l for c, l in zip(calc, load))
    assert better >= len(BENCHMARKS) - 1

    benchmark.extra_info["mean_load_rate_20"] = round(mean_by_depth[20], 3)
    benchmark.extra_info["mean_load_rate_60"] = round(mean_by_depth[60], 3)
    benchmark.extra_info["mean_calc_acc"] = round(arithmetic_mean(calc), 4)
    benchmark.extra_info["mean_load_acc"] = round(arithmetic_mean(load), 4)
