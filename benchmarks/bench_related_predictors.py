"""Related-work baseline comparison (paper Section 7 context).

The paper argues history/path predictors are reaching the limit of their
input information ("only small incremental improvements").  This bench
runs the classic alternatives the paper cites — bimodal, gshare,
local-history two-level [36], Bi-Mode [21], 2Bc-gskew [26] — as single-
level predictors on the workload suite, then the two-level ARVI
configuration, showing the ARVI's value information buys more than
swapping between history organizations.
"""

from repro.experiments.report import arithmetic_mean, format_table
from repro.experiments.runner import run_suite as run_grid
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskew
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.twolevel import LevelTwoKind, TwoLevelPredictor
from repro.workloads.registry import get_program

SUITE = ("compress", "go", "li", "m88ksim", "perl")

SINGLE_LEVEL = (
    ("bimodal", lambda: BimodalPredictor(16384)),
    ("gshare", lambda: GsharePredictor(16384)),
    ("local 2-level", lambda: LocalHistoryPredictor(4096, 12)),
    ("bi-mode", lambda: BiModePredictor(8192)),
    ("2Bc-gskew", lambda: TwoBcGskew(8192)),
)


def run_suite(scale, warmup):
    config = machine_for_depth(20)
    rows = []
    for label, factory in SINGLE_LEVEL:
        accuracies = []
        for name in SUITE:
            predictor = TwoLevelPredictor(factory(), LevelTwoKind.NONE)
            engine = PipelineEngine(get_program(name, scale=scale), config,
                                    predictor, warmup_instructions=warmup)
            accuracies.append(engine.run().prediction_accuracy)
        rows.append([label] + accuracies
                    + [arithmetic_mean(accuracies)])
    # The two-level ARVI configuration for contrast, via the experiment
    # service (parallel across the suite, cache-replayed when warm).
    grid = run_grid(configurations=("current",), depths=(20,),
                    benchmarks=SUITE, scale=scale, warmup=warmup)
    accuracies = [grid[(name, "current", 20)].prediction_accuracy
                  for name in SUITE]
    rows.append(["2-level ARVI"] + accuracies
                + [arithmetic_mean(accuracies)])
    return rows


def test_related_work_predictors(benchmark, save_result, scale, warmup):
    rows = benchmark.pedantic(lambda: run_suite(scale, warmup),
                              rounds=1, iterations=1)
    save_result("related_predictors", format_table(
        ["predictor"] + list(SUITE) + ["mean"], rows,
        title="Prediction accuracy: history-based baselines vs ARVI "
              "(20-stage)", float_format="{:.4f}"))

    means = {row[0]: row[-1] for row in rows}
    # History organizations cluster; ARVI's value information leads.
    assert means["2-level ARVI"] == max(means.values())
    assert means["2Bc-gskew"] >= means["bimodal"]
    # The paper's "small incremental improvements" observation: the
    # spread across history-based designs is much smaller than ARVI's
    # edge over the best of them.
    history_means = [mean for name, mean in means.items()
                     if name != "2-level ARVI"]
    assert (means["2-level ARVI"] - max(history_means)) > 0
