"""Paper Figure 7 / Section 6 m88ksim case study.

The single ``lookupdisasm`` while-loop branch drives the paper's headline
per-benchmark result: the hash-table contents never vary, so the loop
trip count is fully determined by the key's value, and ARVI — keying the
BVIT on (PC, key value) with the chain-depth tag as the iteration number
— predicts it nearly perfectly while the history-based hybrid cannot.
"""

from repro.experiments.report import format_table
from repro.experiments.runner import run_suite


def run_case_study(scale, warmup):
    grid = run_suite(configurations=("baseline", "current"), depths=(20,),
                     benchmarks=("m88ksim",), scale=scale, warmup=warmup)
    return grid[("m88ksim", "baseline", 20)], grid[("m88ksim", "current", 20)]


def test_m88ksim_case_study(benchmark, save_result, scale, warmup):
    hybrid, arvi = benchmark.pedantic(
        lambda: run_case_study(scale, warmup), rounds=1, iterations=1)

    rows = [
        ["prediction accuracy", hybrid.prediction_accuracy,
         arvi.prediction_accuracy],
        ["IPC", hybrid.ipc, arvi.ipc],
        ["MPKI", hybrid.mpki, arvi.mpki],
        ["load-branch rate", "-", arvi.load_branch_rate],
        ["calculated accuracy", "-", arvi.calculated.accuracy],
        ["load-branch accuracy", "-", arvi.load.accuracy],
    ]
    text = format_table(
        ["metric", "2-level gskew", "ARVI current"],
        rows, title="m88ksim case study (paper Figure 7), 20-stage",
        float_format="{:.4f}")
    save_result("m88ksim_case_study", text)

    gain = 100 * (arvi.ipc / hybrid.ipc - 1)
    benchmark.extra_info["ipc_gain_pct"] = round(gain, 1)

    # The paper's shape: a large accuracy jump driving a large IPC gain,
    # with near-perfect calculated-branch prediction.
    assert arvi.prediction_accuracy > hybrid.prediction_accuracy + 0.02
    assert gain > 10.0
    assert arvi.calculated.accuracy > 0.99
    # The walk branches are load branches yet still predict well —
    # the committed key + depth tag carry the information.
    assert arvi.load_branch_rate > 0.5
    assert arvi.load.accuracy > 0.9
