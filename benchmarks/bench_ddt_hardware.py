"""Microbenchmarks of the dependence-tracking hardware models.

Sections 2 and 4 argue the DDT/RSE are cheap structures; these benches
measure the *simulation* cost of each primitive (allocate/commit, chain
read, RSE extraction, BVIT lookup) and pin the paper's sizing claims.
The FastDDT-vs-reference comparison quantifies why the engine uses the
sliding-window implementation.
"""

import random

from repro.core.bvit import BVIT
from repro.core.ddt import DDT, FastDDT
from repro.core.hashing import bvit_index, depth_key, register_set_tag
from repro.core.rse import ChainInfoTable


def drive_ddt(ddt, operations=2000, num_regs=72, seed=7):
    rng = random.Random(seed)
    for _ in range(operations):
        if ddt.in_flight >= ddt.num_entries - 1:
            ddt.commit_oldest()
        dest = rng.randrange(1, num_regs)
        srcs = (rng.randrange(num_regs), rng.randrange(num_regs))
        ddt.allocate(dest, srcs)
        if ddt.in_flight > 40 and rng.random() < 0.5:
            ddt.commit_oldest()
    return ddt


def test_fast_ddt_throughput(benchmark):
    """Engine-side DDT: allocate/commit mix on the 21264 geometry."""
    benchmark(lambda: drive_ddt(FastDDT(72, 80)))


def test_reference_ddt_throughput(benchmark):
    """Hardware-faithful DDT (explicit column clears) for comparison."""
    benchmark(lambda: drive_ddt(DDT(72, 80), operations=400))


def test_chain_read_latency(benchmark):
    ddt = drive_ddt(FastDDT(72, 80))

    def read_chains():
        total = 0
        for reg in range(72):
            total += len(ddt.chain_tokens(reg))
        return total

    benchmark(read_chains)


def test_rse_extraction(benchmark):
    ddt = FastDDT(72, 80)
    chains = ChainInfoTable()
    rng = random.Random(3)
    for _ in range(60):
        if ddt.in_flight >= 79:
            chains.discard(ddt.commit_oldest())
        dest = rng.randrange(1, 72)
        srcs = (rng.randrange(72), rng.randrange(72))
        token = ddt.allocate(dest, srcs)
        chains.insert(token, dest, srcs, is_load=rng.random() < 0.3)

    def extract():
        tokens = ddt.chain_tokens(5, 6)
        return chains.extract(tokens, branch_srcs=(5, 6))

    benchmark(extract)


def test_bvit_lookup_update(benchmark):
    bvit = BVIT(2048, 4)
    rng = random.Random(11)
    keys = [(rng.randrange(2048), rng.randrange(8), rng.randrange(32))
            for _ in range(256)]
    for index, id_tag, depth in keys:
        bvit.update(index, id_tag, depth, taken=True)

    def lookup_all():
        hits = 0
        for index, id_tag, depth in keys:
            if bvit.lookup(index, id_tag, depth) is not None:
                hits += 1
        return hits

    assert lookup_all() == len(keys)
    benchmark(lookup_all)


def test_hash_units(benchmark):
    rng = random.Random(13)
    value_sets = [[rng.randrange(2048) for _ in range(6)]
                  for _ in range(128)]

    def hash_all():
        out = 0
        for pc, values in enumerate(value_sets):
            out ^= bvit_index(pc, values)
            out ^= register_set_tag(values)
            out ^= depth_key(100 + pc, 90)
        return out

    benchmark(hash_all)


def test_paper_sizing_claims(benchmark):
    """Section 2: 4-wide, 80-in-flight, 72-preg machine => 5760-bit DDT."""

    def sizes():
        ddt = DDT(72, 80)
        return ddt.storage_bits, ddt.storage_bytes

    bits, size_bytes = benchmark(sizes)
    assert bits == 5760
    assert size_bytes == 720   # the paper quotes ~730 bytes of RAM
