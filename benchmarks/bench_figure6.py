"""Regenerate paper Figure 6: accuracy and normalized IPC at each depth.

Paper headlines this harness must reproduce in *shape* (who wins, growth
with depth), not absolute magnitude:

* ARVI current value beats the two-level 2Bc-gskew baseline on mean
  normalized IPC (paper: +12.6% at 20 stages, +15.6% at 60 stages);
* m88ksim is the standout winner (value-determined loop exits);
* perfect value bounds the mean from above;
* the relative gain does not shrink as the pipeline deepens.
"""

import pytest

from repro.experiments.figure6 import run_figure6
from repro.workloads.registry import BENCHMARKS


@pytest.mark.parametrize("depth", [20, 40, 60])
def test_figure6(benchmark, save_result, scale, warmup, depth):
    data = benchmark.pedantic(
        lambda: run_figure6(depth, scale=scale, warmup=warmup),
        rounds=1, iterations=1)
    save_result(f"figure6_depth{depth}", data.render())

    current_gain = data.mean_ipc_gain_percent("current")
    loadback_gain = data.mean_ipc_gain_percent("load back")
    perfect_gain = data.mean_ipc_gain_percent("perfect")
    benchmark.extra_info["mean_gain_current_pct"] = round(current_gain, 1)
    benchmark.extra_info["mean_gain_loadback_pct"] = round(loadback_gain, 1)
    benchmark.extra_info["mean_gain_perfect_pct"] = round(perfect_gain, 1)

    # Shape 1: ARVI current value wins on mean normalized IPC.
    assert current_gain > 3.0

    # Shape 2: m88ksim is the top gainer (paper's showcase benchmark).
    gains = {bench: data.normalized_ipc(bench, "current")
             for bench in BENCHMARKS}
    top = max(gains, key=gains.get)
    assert gains["m88ksim"] >= sorted(gains.values())[-2], (
        f"m88ksim should be among the top gainers, got {gains}")

    # Shape 3: load back is at least as good as current value on the mean
    # (the paper reports a slight improvement).
    assert loadback_gain >= current_gain - 1.5

    # Shape 4: the perfect-value bound exceeds current value on the mean.
    assert perfect_gain >= current_gain - 1.0

    # Shape 5: ARVI's mean accuracy beats the baseline's.
    mean_acc = {
        config: sum(data.accuracy(bench, config) for bench in BENCHMARKS)
        / len(BENCHMARKS)
        for config in ("baseline", "current")
    }
    assert mean_acc["current"] > mean_acc["baseline"]
