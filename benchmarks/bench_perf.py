"""Tracked simulator-performance benchmark (DESIGN.md §7-§8).

Runs the ``repro.bench`` harness — simulated-instructions/sec and
per-point wall time for m88ksim/compress in both speculation modes, the
trace-replay vs live-core comparison (whose replay==live equality is a
hard correctness gate), and the batched/traced cold grids — and
refreshes ``BENCH_perf.json`` at the repository root so the perf
trajectory is tracked alongside the paper artifacts.  ``REPRO_SCALE``
rescales the measured points exactly like the figure benchmarks (the
recorded baseline is only comparable at its own scale).
"""

from __future__ import annotations

from repro.bench import run_bench


def test_perf_harness(save_result, scale):
    lines: list[str] = []
    report = run_bench(scale=scale, echo=lines.append)

    text = "\n".join(["simulator performance (repro.bench)", ""] + lines)
    save_result("perf_harness", text)

    # Informational harness, but the measurements themselves must be sane.
    assert report["points"], "no points measured"
    for key, sample in report["points"].items():
        assert sample["sim_ips"] > 0, f"{key}: bad throughput"
    trace = report.get("trace_replay")
    if trace is not None:
        # measure_trace_replay raised already if replay != live; here we
        # only sanity-check the recorded numbers.
        for benchmark, sample in trace.items():
            assert sample["replay_sim_ips"] > 0, f"{benchmark}: bad replay"
            assert sample["record_seconds"] >= 0
    grid = report.get("grid_batching")
    if grid is not None:
        assert grid["batched_seconds"] > 0
    grid_trace = report.get("grid_trace")
    if grid_trace is not None:
        assert grid_trace["traced_seconds"] > 0
