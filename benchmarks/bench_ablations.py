"""Ablations of the design choices DESIGN.md calls out.

Beyond reproducing the paper's figures, these benches isolate each ARVI
ingredient on the benchmarks where it matters:

* depth tag (Section 4.5)  — loop-iteration disambiguation: m88ksim
  collapses without it;
* id tag (Section 4.4)     — the path signature;
* confidence gating        — L1 filtering of easy branches;
* BVIT geometry            — sets/ways sweep;
* chain-length scheduling  — the Section 3 issue-priority application.
"""

import pytest

from repro.applications.scheduling import compare_policies
from repro.core.arvi import ARVIConfig, ValueMode
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentPoint, run_point
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program

ABLATION_BENCHMARKS = ("m88ksim", "li", "compress")


def run_arvi(benchmark_name, scale, warmup, arvi_config=None,
             confidence=None):
    if confidence is None:
        # The common case maps onto the experiment service directly: the
        # "current" configuration with an explicit ARVI geometry.
        return run_point(ExperimentPoint(benchmark_name, "current", 20),
                         scale=scale, warmup=warmup,
                         arvi_config=arvi_config)
    # A custom confidence estimator is an engine-level knob the service
    # does not key on; build the engine directly.
    program = get_program(benchmark_name, scale=scale)
    config = machine_for_depth(20)
    predictor = build_predictor(LevelTwoKind.ARVI, config, arvi_config)
    predictor.confidence = confidence
    engine = PipelineEngine(program, config, predictor,
                            value_mode=ValueMode.CURRENT,
                            warmup_instructions=warmup)
    return engine.run()


def test_ablation_depth_tag(benchmark, save_result, scale, warmup):
    """Without the depth tag, same-path loop iterations alias (m88ksim)."""

    def run():
        rows = []
        for name in ABLATION_BENCHMARKS:
            with_tag = run_arvi(name, scale, warmup)
            without = run_arvi(name, scale, warmup,
                               ARVIConfig(use_depth_tag=False))
            rows.append([name, with_tag.prediction_accuracy,
                         without.prediction_accuracy])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_depth_tag", format_table(
        ["benchmark", "with depth tag", "without"], rows,
        title="Ablation: chain-depth tag (Section 4.5)",
        float_format="{:.4f}"))
    by_name = {row[0]: row for row in rows}
    # m88ksim relies on the depth tag to separate loop iterations.
    assert by_name["m88ksim"][1] > by_name["m88ksim"][2]


def test_ablation_id_tag(benchmark, save_result, scale, warmup):
    def run():
        rows = []
        for name in ABLATION_BENCHMARKS:
            with_tag = run_arvi(name, scale, warmup)
            without = run_arvi(name, scale, warmup,
                               ARVIConfig(use_id_tag=False))
            rows.append([name, with_tag.prediction_accuracy,
                         without.prediction_accuracy])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_id_tag", format_table(
        ["benchmark", "with id tag", "without"], rows,
        title="Ablation: register-set id tag (Section 4.4)",
        float_format="{:.4f}"))
    # The id tag should never hurt much on average.
    mean_with = sum(r[1] for r in rows) / len(rows)
    mean_without = sum(r[2] for r in rows) / len(rows)
    assert mean_with >= mean_without - 0.01


def test_ablation_allocation_gating(benchmark, save_result, scale, warmup):
    """BVIT allocation restricted to hard branches vs open allocation."""

    def run():
        rows = []
        for name in ABLATION_BENCHMARKS:
            gated = run_arvi(name, scale, warmup)
            open_alloc = run_arvi(name, scale, warmup,
                                  ARVIConfig(allocate_only_hard=False))
            rows.append([name, gated.prediction_accuracy,
                         open_alloc.prediction_accuracy])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_allocation", format_table(
        ["benchmark", "hard-only allocation", "open allocation"], rows,
        title="Ablation: BVIT allocation filtering (Section 5)",
        float_format="{:.4f}"))


def test_ablation_confidence_threshold(benchmark, save_result, scale,
                                       warmup):
    """Confidence threshold sweep: how much filtering is right."""

    def run():
        rows = []
        for threshold in (4, 8, 14):
            result = run_arvi(
                "m88ksim", scale, warmup,
                confidence=ConfidenceEstimator(threshold=threshold))
            rows.append([threshold, result.prediction_accuracy,
                         result.ipc])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_confidence", format_table(
        ["threshold", "accuracy", "IPC"], rows,
        title="Ablation: confidence threshold (m88ksim, 20-stage)",
        float_format="{:.4f}"))


def test_ablation_bvit_geometry(benchmark, save_result, scale, warmup):
    """BVIT sets x ways sweep on the most BVIT-hungry benchmark."""

    def run():
        rows = []
        for sets, ways in ((256, 4), (1024, 4), (2048, 4), (2048, 1)):
            result = run_arvi(
                "m88ksim", scale, warmup,
                ARVIConfig(sets=sets, ways=ways,
                           index_bits=max(4, sets.bit_length() - 1)))
            rows.append([f"{sets}x{ways}", result.prediction_accuracy,
                         result.bvit_hit_rate])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_bvit_geometry", format_table(
        ["geometry", "accuracy", "BVIT hit rate"], rows,
        title="Ablation: BVIT geometry (m88ksim, 20-stage)",
        float_format="{:.4f}"))
    by_geometry = {row[0]: row for row in rows}
    # Associativity matters: direct-mapped thrashes (paper Section 4.1).
    assert (by_geometry["2048x4"][1] >= by_geometry["2048x1"][1] - 0.005)


def test_ablation_chain_scheduling(benchmark, save_result):
    """Section 3 application: chain-length-aware issue priority."""

    def run():
        rows = []
        for seed in range(6):
            makespans = compare_policies(size=240, width=2, seed=seed)
            rows.append([seed, makespans["oldest-first"],
                         makespans["chain-priority"], makespans["random"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_scheduling", format_table(
        ["seed", "oldest-first", "chain-priority", "random"], rows,
        title="Ablation: chain-length-aware issue scheduling (Section 3)"))
    oldest = sum(row[1] for row in rows)
    chain = sum(row[2] for row in rows)
    assert chain <= oldest  # chain priority is at least as good overall
