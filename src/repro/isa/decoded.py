"""Pre-decoded static instruction table (the simulation hot path).

The timing engine, the functional core and the wrong-path fetcher all
inspect the *same* static instruction millions of times per run.  The
seed implementation re-derived everything per dynamic instance (category
properties, source tuples, opcode ``if/elif`` chains); this module decodes
each static instruction exactly once into a flat per-PC table of slotted
records holding

* the raw opcode int and the functional-unit latency class,
* the source-register tuple and the destination template
  (``needs_dest`` — writes a renamable destination register),
* the category flags the engine branches on (``is_load`` / ``is_store`` /
  ``is_cond_branch``),
* the immediate and resolved control-flow target.

:meth:`repro.isa.program.Program.decoded` builds and caches one
:class:`DecodedProgram` per program; consumers index it by PC.  The table
is purely derived data — the :class:`~repro.isa.instructions.Instruction`
objects stay the source of truth (``tests/isa/test_decoded.py`` checks the
table against them field by field over every registered workload).
"""

from __future__ import annotations

from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    COND_BRANCH_OPS,
    LOAD_OPS,
    MULDIV_OPS,
    STORE_OPS,
    Instruction,
    Op,
)

# Functional-unit latency classes (engine _execute dispatch).
FU_ALU = 0      # single-cycle integer ALU (reg/imm ALU ops and branches)
FU_OTHER = 1    # frontend-resolved control / NOP / HALT (1 cycle)
FU_LOAD = 2     # address generation + D-cache access
FU_STORE = 3    # address/data staged into the LSQ
FU_MULT = 4     # pipelined multiplier
FU_DIV = 5      # unpipelined divider (DIV and REM)

_OP_HALT = int(Op.HALT)

#: Opcodes whose functional handlers always produce ``DynInst.result``
#: (reg/imm ALU including LUI, mult/div, loads, and the link writers).
#: Stores, branches, J/JR, NOP and HALT never do.  The trace layer
#: (``pipeline/trace.py``) relies on this being a pure opcode property to
#: reconstruct result presence without per-instruction flags.
RESULT_OPS = frozenset(
    ALU_REG_OPS | MULDIV_OPS | ALU_IMM_OPS | LOAD_OPS
    | {int(Op.JAL), int(Op.JALR)}
)


def _fu_class(opcode: int) -> int:
    if opcode in LOAD_OPS:
        return FU_LOAD
    if opcode in STORE_OPS:
        return FU_STORE
    if opcode == int(Op.MULT):
        return FU_MULT
    if opcode in (int(Op.DIV), int(Op.REM)):
        return FU_DIV
    if (opcode in ALU_REG_OPS or opcode in ALU_IMM_OPS
            or opcode in COND_BRANCH_OPS):
        return FU_ALU
    return FU_OTHER


class DecodedInst:
    """One static instruction, flattened for indexed hot-path dispatch."""

    __slots__ = (
        "pc", "inst", "op", "rd", "rs1", "rs2", "imm", "target",
        "sources", "needs_dest", "is_load", "is_store", "is_cond_branch",
        "is_halt", "has_result", "fu_class", "byte_pc",
    )

    def __init__(self, pc: int, inst: Instruction) -> None:
        self.pc = pc
        self.inst = inst
        self.op = inst.opcode
        self.rd = inst.rd
        self.rs1 = inst.rs1
        self.rs2 = inst.rs2
        self.imm = inst.imm
        self.target = inst.target
        self.sources = inst.sources()
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.is_cond_branch = inst.is_cond_branch
        self.is_halt = inst.opcode == _OP_HALT
        # Destination template: writes a renamable physical register
        # (stores carry rs2 data but allocate no destination; r0 writes
        # are architectural discards and never rename).
        self.needs_dest = (inst.rd is not None and inst.rd != 0
                           and not self.is_store)
        self.has_result = inst.opcode in RESULT_OPS
        self.fu_class = _fu_class(inst.opcode)
        self.byte_pc = pc * 4


class DecodedProgram:
    """Flat per-PC decode of a program; index with ``decoded[pc]``."""

    __slots__ = ("insts",)

    def __init__(self, instructions: list[Instruction]) -> None:
        self.insts = [DecodedInst(pc, inst)
                      for pc, inst in enumerate(instructions)]

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, pc: int) -> DecodedInst:
        return self.insts[pc]

    def static_columns(self) -> tuple[list[int], list[int], list[int],
                                      list[int], list[int], list[int]]:
        """Per-PC columns for the trace-lowering pass (pipeline.kernel).

        Returns ``(kernel_class, src1, src2, writer, ras, has_result)``,
        one entry per static PC, with ``-1`` for absent registers:

        * ``kernel_class`` — the FU latency class, except conditional
          branches (FU_ALU plus resolution) get their own class
          ``KCLASS_BRANCH`` so the replay loop needs no second flag;
        * ``src1`` / ``src2`` — the (up to two) source registers;
        * ``writer`` — the renamable destination register, or ``-1``
          (``needs_dest`` already excludes stores and r0 writes);
        * ``ras`` — return-address-stack event: ``RAS_PUSH`` (JAL),
          ``RAS_POP`` (JR), or 0 (JALR deliberately neither — it links
          through the ALU and is predicted like any indirect jump);
        * ``has_result`` — 1 when the opcode produces ``DynInst.result``
          (the trace's sparse ``results`` column has an entry), else 0 —
          the cursor the ARVI lowering uses to densify committed values.
        """
        kernel_class: list[int] = []
        src1: list[int] = []
        src2: list[int] = []
        writer: list[int] = []
        ras: list[int] = []
        has_result: list[int] = []
        for d in self.insts:
            kernel_class.append(
                KCLASS_BRANCH if d.is_cond_branch else d.fu_class)
            sources = d.sources
            src1.append(sources[0] if len(sources) > 0 else -1)
            src2.append(sources[1] if len(sources) > 1 else -1)
            writer.append(d.rd if d.needs_dest else -1)
            ras.append(RAS_PUSH if d.op == _OP_JAL
                       else RAS_POP if d.op == _OP_JR else 0)
            has_result.append(1 if d.has_result else 0)
        return kernel_class, src1, src2, writer, ras, has_result


#: Kernel class for conditional branches in :meth:`DecodedProgram.
#: static_columns` — FU classes 0-5 keep their values, branches split
#: off from FU_ALU so the replay kernel dispatches on one code.
KCLASS_BRANCH = 6

#: RAS event codes in ``static_columns``' ``ras`` column.
RAS_PUSH = 1
RAS_POP = 2

_OP_JAL = int(Op.JAL)
_OP_JR = int(Op.JR)
