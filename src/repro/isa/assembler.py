"""Two-pass text assembler.

The programmatic :class:`~repro.isa.builder.AsmBuilder` is the primary way
to author workloads; this module additionally accepts classic assembler
text, which is convenient for tests, examples and quick experiments::

    .data
    table:  .word 1, 2, 3
    buf:    .space 16
    .text
    main:   la   $t0, table
            lw   $t1, 0($t0)
    loop:   addi $t1, $t1, -1
            bne  $t1, $zero, loop
            halt

Supported directives: ``.text``, ``.data``, ``.word v, ...``,
``.space n_bytes``.  Pseudo-instructions: ``li``, ``la``, ``move``, ``neg``,
``not``, ``b`` (unconditional branch).  Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

import re

from repro.isa import regs
from repro.isa.builder import AsmBuilder
from repro.isa.instructions import Instruction, Op, parse_reg
from repro.isa.program import Program

_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(\$?\w+)\s*\)$")

_RRR_OPS = {
    "add": Op.ADD, "sub": Op.SUB, "and": Op.AND, "or": Op.OR,
    "xor": Op.XOR, "nor": Op.NOR, "sll": Op.SLL, "srl": Op.SRL,
    "sra": Op.SRA, "slt": Op.SLT, "sltu": Op.SLTU, "mult": Op.MULT,
    "div": Op.DIV, "rem": Op.REM,
}
_RRI_OPS = {
    "addi": Op.ADDI, "andi": Op.ANDI, "ori": Op.ORI, "xori": Op.XORI,
    "slti": Op.SLTI, "slli": Op.SLLI, "srli": Op.SRLI, "srai": Op.SRAI,
}
_LOAD_OPS = {"lw": Op.LW, "lb": Op.LB, "lbu": Op.LBU}
_STORE_OPS = {"sw": Op.SW, "sb": Op.SB}
_BRANCH_OPS = {
    "beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
    "ble": Op.BLE, "bgt": Op.BGT,
}


class AssemblyError(ValueError):
    """Raised on malformed assembly input, with line information."""

    def __init__(self, lineno: int, line: str, message: str) -> None:
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")
        self.lineno = lineno


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as exc:
        raise ValueError(f"bad integer {token!r}") from exc


def _split_operands(rest: str) -> list[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


def assemble(text: str, name: str = "program") -> Program:
    """Assemble source text into a :class:`Program`."""
    builder = AsmBuilder(name=name)
    in_data = False
    pending_data_label: str | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        try:
            # Leading labels (possibly several, e.g. "a: b: add ...").
            while True:
                match = re.match(r"^(\.?\w+)\s*:\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if in_data:
                    pending_data_label = label
                else:
                    builder.label(label)
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""

            if mnemonic == ".text":
                in_data = False
            elif mnemonic == ".data":
                in_data = True
            elif mnemonic == ".word":
                values = [_parse_int(tok) for tok in _split_operands(rest)]
                builder.data_word(pending_data_label, *values)
                pending_data_label = None
            elif mnemonic == ".space":
                nbytes = _parse_int(rest)
                if nbytes % 4:
                    raise ValueError(".space must be word aligned")
                builder.data_space(pending_data_label, nbytes // 4)
                pending_data_label = None
            elif in_data:
                raise ValueError("instruction inside .data section")
            else:
                _assemble_instruction(builder, mnemonic, rest)
        except AssemblyError:
            raise
        except Exception as exc:
            raise AssemblyError(lineno, raw, str(exc)) from exc

    return builder.build()


def _assemble_instruction(builder: AsmBuilder, mnemonic: str,
                          rest: str) -> None:
    ops = _split_operands(rest)

    if mnemonic in _RRR_OPS:
        rd, rs1, rs2 = (parse_reg(tok) for tok in ops)
        builder.emit(Instruction(_RRR_OPS[mnemonic], rd=rd, rs1=rs1, rs2=rs2))
    elif mnemonic in _RRI_OPS:
        rd, rs1 = parse_reg(ops[0]), parse_reg(ops[1])
        builder.emit(Instruction(_RRI_OPS[mnemonic], rd=rd, rs1=rs1,
                                 imm=_parse_int(ops[2])))
    elif mnemonic == "lui":
        builder.lui(parse_reg(ops[0]), _parse_int(ops[1]))
    elif mnemonic in _LOAD_OPS:
        rd = parse_reg(ops[0])
        offset, base = _parse_mem_operand(ops[1])
        builder.emit(Instruction(_LOAD_OPS[mnemonic], rd=rd, rs1=base,
                                 imm=offset))
    elif mnemonic in _STORE_OPS:
        rt = parse_reg(ops[0])
        offset, base = _parse_mem_operand(ops[1])
        builder.emit(Instruction(_STORE_OPS[mnemonic], rs1=base, rs2=rt,
                                 imm=offset))
    elif mnemonic in _BRANCH_OPS:
        rs1, rs2 = parse_reg(ops[0]), parse_reg(ops[1])
        builder.emit(Instruction(_BRANCH_OPS[mnemonic], rs1=rs1, rs2=rs2,
                                 target=ops[2]))
    elif mnemonic in ("j", "b"):
        builder.j(ops[0])
    elif mnemonic == "jal":
        builder.jal(ops[0])
    elif mnemonic == "jr":
        builder.jr(parse_reg(ops[0]) if ops else regs.ra)
    elif mnemonic == "li":
        builder.li(parse_reg(ops[0]), _parse_int(ops[1]))
    elif mnemonic == "la":
        builder.la(parse_reg(ops[0]), ops[1])
    elif mnemonic == "move":
        builder.move(parse_reg(ops[0]), parse_reg(ops[1]))
    elif mnemonic == "neg":
        builder.neg(parse_reg(ops[0]), parse_reg(ops[1]))
    elif mnemonic == "not":
        builder.not_(parse_reg(ops[0]), parse_reg(ops[1]))
    elif mnemonic == "nop":
        builder.nop()
    elif mnemonic == "halt":
        builder.halt()
    else:
        raise ValueError(f"unknown mnemonic {mnemonic!r}")


def _parse_mem_operand(token: str) -> tuple[int, int]:
    """Parse ``offset(base)`` into (offset, base register)."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise ValueError(f"bad memory operand {token!r}")
    return _parse_int(match.group(1)), parse_reg(match.group(2))
