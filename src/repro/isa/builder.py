"""Structured assembly builder.

``AsmBuilder`` emits instructions programmatically and layers structured
control flow (``if_`` / ``ifelse`` / ``while_`` / ``loop`` / ``for_range``)
and function scaffolding (``func`` / ``call`` / ``ret``) on top of raw
opcode emitters.  The synthetic SPEC95-int workloads are written against
this API.

Conditions are lightweight ``Cond`` objects built by the ``eq``/``ne``/
``lt``/``ge``/``le``/``gt`` helpers; an integer right-hand side is
materialized into the reserved scratch register ``$at`` at the comparison
point (inside the loop for ``while_``), so loop-carried conditions against
immediates behave as expected.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.isa import regs
from repro.isa.instructions import (
    NEGATED_BRANCH,
    Instruction,
    Op,
    validate,
)
from repro.isa.program import DATA_BASE, DEFAULT_MEMORY_BYTES, Program


@dataclass(frozen=True)
class Cond:
    """A branch condition that is true when ``op(rs, rt)`` holds."""

    op: Op
    rs: int
    rt: int | None = None
    imm: int | None = None  # immediate RHS, materialized into $at

    def materialize(self, builder: "AsmBuilder") -> tuple[Op, int, int]:
        if self.rt is not None:
            return self.op, self.rs, self.rt
        builder.li(regs.at, self.imm or 0)
        return self.op, self.rs, regs.at


def _cond(op: Op, rs: int, rhs: int | None, *, is_imm: bool) -> Cond:
    if is_imm:
        return Cond(op, rs, rt=None, imm=rhs)
    return Cond(op, rs, rt=rhs)


def eq(rs: int, rhs: int, *, imm: bool = False) -> Cond:
    return _cond(Op.BEQ, rs, rhs, is_imm=imm)


def ne(rs: int, rhs: int, *, imm: bool = False) -> Cond:
    return _cond(Op.BNE, rs, rhs, is_imm=imm)


def lt(rs: int, rhs: int, *, imm: bool = False) -> Cond:
    return _cond(Op.BLT, rs, rhs, is_imm=imm)


def ge(rs: int, rhs: int, *, imm: bool = False) -> Cond:
    return _cond(Op.BGE, rs, rhs, is_imm=imm)


def le(rs: int, rhs: int, *, imm: bool = False) -> Cond:
    return _cond(Op.BLE, rs, rhs, is_imm=imm)


def gt(rs: int, rhs: int, *, imm: bool = False) -> Cond:
    return _cond(Op.BGT, rs, rhs, is_imm=imm)


def eqz(rs: int) -> Cond:
    return Cond(Op.BEQ, rs, rt=regs.zero)


def nez(rs: int) -> Cond:
    return Cond(Op.BNE, rs, rt=regs.zero)


class IfElseBlock:
    """Context manager for an if/else region; see ``AsmBuilder.ifelse``."""

    def __init__(self, builder: "AsmBuilder", cond: Cond) -> None:
        self._b = builder
        self._cond = cond
        self._else_label = builder.new_label("else")
        self._end_label = builder.new_label("endif")
        self._has_else = False

    def __enter__(self) -> "IfElseBlock":
        op, rs, rt = self._cond.materialize(self._b)
        self._b.emit(Instruction(NEGATED_BRANCH[op], rs1=rs, rs2=rt,
                                 target=self._else_label))
        return self

    def else_(self) -> None:
        if self._has_else:
            raise RuntimeError("else_() called twice")
        self._has_else = True
        self._b.j(self._end_label)
        self._b.label(self._else_label)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        if not self._has_else:
            self._b.label(self._else_label)
        self._b.label(self._end_label)


@dataclass
class _LoopFrame:
    top_label: str
    end_label: str
    continue_label: str


@dataclass
class _FuncFrame:
    name: str
    saved: tuple[int, ...]
    end_label: str


class AsmBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program",
                 memory_bytes: int = DEFAULT_MEMORY_BYTES) -> None:
        self.name = name
        self.memory_bytes = memory_bytes
        self._insts: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._data_words: dict[int, int] = {}
        self._data_labels: dict[str, int] = {}
        self._data_cursor = DATA_BASE
        self._label_counter = 0
        self._loop_stack: list[_LoopFrame] = []
        self._func_stack: list[_FuncFrame] = []

    # -- label / emission machinery -----------------------------------------

    def new_label(self, prefix: str = "L") -> str:
        self._label_counter += 1
        return f".{prefix}_{self._label_counter}"

    def label(self, name: str) -> str:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return name

    def emit(self, inst: Instruction) -> Instruction:
        self._insts.append(inst)
        return inst

    @property
    def pc(self) -> int:
        return len(self._insts)

    # -- data segment --------------------------------------------------------

    def data_word(self, label: str | None, *values: int) -> int:
        """Allocate consecutive initialized words; returns the base address."""
        base = self._data_cursor
        for value in values:
            self._data_words[self._data_cursor] = value & 0xFFFFFFFF
            self._data_cursor += 4
        if label is not None:
            self._bind_data_label(label, base)
        return base

    def data_space(self, label: str | None, n_words: int) -> int:
        """Allocate zero-initialized space; returns the base address."""
        base = self._data_cursor
        self._data_cursor += 4 * n_words
        if label is not None:
            self._bind_data_label(label, base)
        return base

    def _bind_data_label(self, label: str, addr: int) -> None:
        if label in self._data_labels:
            raise ValueError(f"duplicate data label {label!r}")
        self._data_labels[label] = addr

    def data_addr(self, label: str) -> int:
        return self._data_labels[label]

    def set_data_word(self, addr: int, value: int) -> None:
        """Overwrite an already-allocated data word (e.g. to link nodes
        whose addresses were only known after allocation)."""
        if addr % 4:
            raise ValueError(f"unaligned data word at {addr:#x}")
        if not DATA_BASE <= addr < self._data_cursor:
            raise ValueError(f"word at {addr:#x} was never allocated")
        self._data_words[addr] = value & 0xFFFFFFFF

    # -- raw ALU emitters ----------------------------------------------------

    def _rrr(self, op: Op, rd: int, rs1: int, rs2: int) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def add(self, rd, rs1, rs2):
        return self._rrr(Op.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._rrr(Op.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._rrr(Op.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._rrr(Op.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._rrr(Op.XOR, rd, rs1, rs2)

    def nor(self, rd, rs1, rs2):
        return self._rrr(Op.NOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._rrr(Op.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._rrr(Op.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        return self._rrr(Op.SRA, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._rrr(Op.SLT, rd, rs1, rs2)

    def sltu(self, rd, rs1, rs2):
        return self._rrr(Op.SLTU, rd, rs1, rs2)

    def mult(self, rd, rs1, rs2):
        return self._rrr(Op.MULT, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._rrr(Op.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._rrr(Op.REM, rd, rs1, rs2)

    def _rri(self, op: Op, rd: int, rs1: int, imm: int) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    def addi(self, rd, rs1, imm):
        return self._rri(Op.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        return self._rri(Op.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        return self._rri(Op.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        return self._rri(Op.XORI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        return self._rri(Op.SLTI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        return self._rri(Op.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        return self._rri(Op.SRLI, rd, rs1, imm)

    def srai(self, rd, rs1, imm):
        return self._rri(Op.SRAI, rd, rs1, imm)

    def lui(self, rd, imm):
        return self.emit(Instruction(Op.LUI, rd=rd, imm=imm))

    # -- memory emitters -------------------------------------------------------

    def lw(self, rd, base, offset=0):
        return self.emit(Instruction(Op.LW, rd=rd, rs1=base, imm=offset))

    def lb(self, rd, base, offset=0):
        return self.emit(Instruction(Op.LB, rd=rd, rs1=base, imm=offset))

    def lbu(self, rd, base, offset=0):
        return self.emit(Instruction(Op.LBU, rd=rd, rs1=base, imm=offset))

    def sw(self, rt, base, offset=0):
        return self.emit(Instruction(Op.SW, rs1=base, rs2=rt, imm=offset))

    def sb(self, rt, base, offset=0):
        return self.emit(Instruction(Op.SB, rs1=base, rs2=rt, imm=offset))

    # -- control emitters ------------------------------------------------------

    def _branch(self, op: Op, rs1: int, rs2: int, target: str) -> Instruction:
        return self.emit(Instruction(op, rs1=rs1, rs2=rs2, target=target))

    def beq(self, rs1, rs2, target):
        return self._branch(Op.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        return self._branch(Op.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        return self._branch(Op.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target):
        return self._branch(Op.BGE, rs1, rs2, target)

    def ble(self, rs1, rs2, target):
        return self._branch(Op.BLE, rs1, rs2, target)

    def bgt(self, rs1, rs2, target):
        return self._branch(Op.BGT, rs1, rs2, target)

    def j(self, target):
        return self.emit(Instruction(Op.J, target=target))

    def jal(self, target):
        return self.emit(Instruction(Op.JAL, rd=regs.ra, target=target))

    def jr(self, rs1=regs.ra):
        return self.emit(Instruction(Op.JR, rs1=rs1))

    def nop(self):
        return self.emit(Instruction(Op.NOP))

    def halt(self):
        return self.emit(Instruction(Op.HALT))

    # -- pseudo-instructions ---------------------------------------------------

    def li(self, rd: int, imm: int) -> None:
        """Load a 32-bit constant (one or two instructions)."""
        imm &= 0xFFFFFFFF
        if imm >= 0x8000_0000:
            signed = imm - (1 << 32)
        else:
            signed = imm
        if -32768 <= signed < 32768:
            self.addi(rd, regs.zero, signed)
            return
        upper = (imm >> 16) & 0xFFFF
        lower = imm & 0xFFFF
        self.lui(rd, upper)
        if lower:
            self.ori(rd, rd, lower)

    def la(self, rd: int, data_label: str) -> None:
        """Load the address of a data label (resolved at build time)."""
        self.li(rd, self._data_labels[data_label])

    def move(self, rd: int, rs: int) -> None:
        self.or_(rd, rs, regs.zero)

    def neg(self, rd: int, rs: int) -> None:
        self.sub(rd, regs.zero, rs)

    def not_(self, rd: int, rs: int) -> None:
        self.nor(rd, rs, regs.zero)

    def push(self, *registers: int) -> None:
        self.addi(regs.sp, regs.sp, -4 * len(registers))
        for i, reg in enumerate(registers):
            self.sw(reg, regs.sp, 4 * i)

    def pop(self, *registers: int) -> None:
        for i, reg in enumerate(registers):
            self.lw(reg, regs.sp, 4 * i)
        self.addi(regs.sp, regs.sp, 4 * len(registers))

    def call(self, target: str) -> None:
        self.jal(target)

    # -- structured control flow -------------------------------------------

    def if_(self, cond: Cond) -> IfElseBlock:
        """``with b.if_(cond): ...`` — body runs when cond holds."""
        return IfElseBlock(self, cond)

    def ifelse(self, cond: Cond) -> IfElseBlock:
        """Like ``if_`` but the block object's ``else_()`` splits branches."""
        return IfElseBlock(self, cond)

    @contextlib.contextmanager
    def while_(self, cond: Cond):
        """``with b.while_(cond): ...`` — pre-tested loop."""
        top = self.new_label("while")
        end = self.new_label("endwhile")
        frame = _LoopFrame(top_label=top, end_label=end, continue_label=top)
        self._loop_stack.append(frame)
        self.label(top)
        op, rs, rt = cond.materialize(self)
        self.emit(Instruction(NEGATED_BRANCH[op], rs1=rs, rs2=rt, target=end))
        try:
            yield frame
        finally:
            self._loop_stack.pop()
        self.j(top)
        self.label(end)

    @contextlib.contextmanager
    def loop(self):
        """Infinite loop; exit with ``break_()``."""
        top = self.new_label("loop")
        end = self.new_label("endloop")
        frame = _LoopFrame(top_label=top, end_label=end, continue_label=top)
        self._loop_stack.append(frame)
        self.label(top)
        try:
            yield frame
        finally:
            self._loop_stack.pop()
        self.j(top)
        self.label(end)

    @contextlib.contextmanager
    def for_range(self, reg: int, start: int, stop: int | None = None,
                  *, stop_reg: int | None = None, step: int = 1):
        """Counted loop: ``for reg in range(start, stop, step)``.

        The bound is either an immediate ``stop`` (materialized into ``$at``
        each iteration) or a register ``stop_reg``.
        """
        if (stop is None) == (stop_reg is None):
            raise ValueError("pass exactly one of stop / stop_reg")
        if step == 0:
            raise ValueError("step must be nonzero")
        self.li(reg, start)
        top = self.new_label("for")
        cont = self.new_label("forcont")
        end = self.new_label("endfor")
        frame = _LoopFrame(top_label=top, end_label=end, continue_label=cont)
        self._loop_stack.append(frame)
        self.label(top)
        cmp_op = Op.BGE if step > 0 else Op.BLE
        if stop_reg is not None:
            self.emit(Instruction(cmp_op, rs1=reg, rs2=stop_reg, target=end))
        else:
            self.li(regs.at, stop)
            self.emit(Instruction(cmp_op, rs1=reg, rs2=regs.at, target=end))
        try:
            yield frame
        finally:
            self._loop_stack.pop()
        self.label(cont)
        self.addi(reg, reg, step)
        self.j(top)
        self.label(end)

    def break_(self) -> None:
        if not self._loop_stack:
            raise RuntimeError("break_ outside loop")
        self.j(self._loop_stack[-1].end_label)

    def continue_(self) -> None:
        if not self._loop_stack:
            raise RuntimeError("continue_ outside loop")
        self.j(self._loop_stack[-1].continue_label)

    # -- functions -----------------------------------------------------------

    @contextlib.contextmanager
    def func(self, name: str, save: tuple[int, ...] = ()):
        """Define a function: label, prologue saving ``ra`` + ``save`` regs.

        ``ret()`` inside the body jumps to a shared epilogue which restores
        the saved registers and returns; the epilogue is emitted at block
        exit (with a fall-through return if the body doesn't end in one).
        """
        end = self.new_label(f"ret_{name}")
        frame = _FuncFrame(name=name, saved=tuple(save), end_label=end)
        self._func_stack.append(frame)
        self.label(name)
        self.push(regs.ra, *frame.saved)
        try:
            yield frame
        finally:
            self._func_stack.pop()
        self.label(end)
        self.pop(regs.ra, *frame.saved)
        self.jr(regs.ra)

    def ret(self) -> None:
        """Return from the innermost ``func`` (jumps to its epilogue)."""
        if not self._func_stack:
            raise RuntimeError("ret outside func")
        self.j(self._func_stack[-1].end_label)

    # -- build -----------------------------------------------------------------

    def build(self, entry: str | int | None = None) -> Program:
        """Resolve labels, validate every instruction, return the Program."""
        resolved: list[Instruction] = []
        for inst in self._insts:
            target = inst.target
            if inst.is_control and isinstance(target, str):
                if target not in self._labels:
                    raise ValueError(f"undefined label {target!r}")
                target = self._labels[target]
            new = Instruction(inst.op, rd=inst.rd, rs1=inst.rs1,
                              rs2=inst.rs2, imm=inst.imm, target=target,
                              label=inst.label)
            validate(new)
            resolved.append(new)
        if entry is None:
            entry_pc = self._labels.get("main", 0)
        elif isinstance(entry, str):
            entry_pc = self._labels[entry]
        else:
            entry_pc = entry
        return Program(
            instructions=resolved,
            labels=dict(self._labels),
            data_words=dict(self._data_words),
            data_labels=dict(self._data_labels),
            entry=entry_pc,
            memory_bytes=self.memory_bytes,
            name=self.name,
        )
