"""RISC instruction set, assembler and structured program builder."""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.builder import AsmBuilder, Cond, eq, eqz, ge, gt, le, lt, ne, nez
from repro.isa.instructions import (
    Instruction,
    Op,
    branch_taken,
    disassemble,
    parse_reg,
    to_s32,
    to_u32,
)
from repro.isa.program import DATA_BASE, STACK_TOP, Program

__all__ = [
    "AsmBuilder",
    "AssemblyError",
    "Cond",
    "DATA_BASE",
    "Instruction",
    "Op",
    "Program",
    "STACK_TOP",
    "assemble",
    "branch_taken",
    "disassemble",
    "eq",
    "eqz",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "nez",
    "parse_reg",
    "to_s32",
    "to_u32",
]
