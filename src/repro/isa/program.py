"""Program container: assembled instructions plus an initialized data image.

Memory layout (byte addresses):

* text: instructions are indexed by PC (one per word, byte address pc*4);
* data: words placed by the builder/assembler starting at ``DATA_BASE``;
* stack: ``$sp`` is initialized to ``STACK_TOP`` and grows down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, disassemble

DATA_BASE = 0x0001_0000
STACK_TOP = 0x000F_FF00
DEFAULT_MEMORY_BYTES = 0x0010_0000  # 1 MiB


@dataclass
class Program:
    """An assembled program ready for functional execution."""

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    data_words: dict[int, int] = field(default_factory=dict)
    data_labels: dict[str, int] = field(default_factory=dict)
    entry: int = 0
    memory_bytes: int = DEFAULT_MEMORY_BYTES
    name: str = "program"
    # Lazily built derived views (excluded from eq/repr): the pre-decoded
    # instruction table and the pristine initial-memory image template.
    _decoded: object = field(default=None, init=False, repr=False,
                             compare=False)
    _memory_image: bytes | None = field(default=None, init=False,
                                        repr=False, compare=False)

    def __post_init__(self) -> None:
        for addr in self.data_words:
            if addr % 4 != 0:
                raise ValueError(f"unaligned data word at {addr:#x}")
            if not 0 <= addr < self.memory_bytes:
                raise ValueError(f"data word outside memory at {addr:#x}")
        for inst in self.instructions:
            if inst.is_control and isinstance(inst.target, str):
                raise ValueError(
                    f"unresolved label {inst.target!r} in {disassemble(inst)}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def decoded(self):
        """The flat pre-decoded per-PC table (built once, then cached)."""
        if self._decoded is None:
            from repro.isa.decoded import DecodedProgram
            self._decoded = DecodedProgram(self.instructions)
        return self._decoded

    def initial_memory(self) -> bytearray:
        """Build the initial memory image (little-endian words).

        The pristine image is rendered once and copied per call — every
        simulation point on a shared program gets a fresh image without
        re-walking the data-word dict.
        """
        if self._memory_image is None:
            mem = bytearray(self.memory_bytes)
            for addr, word in self.data_words.items():
                mem[addr:addr + 4] = (word & 0xFFFFFFFF).to_bytes(4, "little")
            self._memory_image = bytes(mem)
        return bytearray(self._memory_image)

    def listing(self) -> str:
        """Human-readable disassembly listing with labels."""
        by_pc: dict[int, list[str]] = {}
        for label, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in by_pc.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"  {pc:5d}: {disassemble(inst)}")
        return "\n".join(lines)
