"""Instruction set definition for the reproduction's RISC ISA.

The paper evaluates with SimpleScalar's PISA instruction set.  PISA itself
(and SPEC95 binaries for it) are unavailable, so we define a compact
PISA-flavoured RISC ISA: 32 integer registers with ``r0`` hardwired to
zero, three-operand ALU ops, displacement-addressed loads/stores, and
compare-and-branch conditional branches.  Conditional branches read two
register operands, matching the paper's model of a branch as "a decision
based on the relationship between two values" (Section 4).

Program counters are instruction indices (one word per instruction); the
byte address of an instruction is ``pc * 4`` for cache purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
NUM_LOGICAL_REGS = 32


def to_u32(value: int) -> int:
    """Wrap an integer to its unsigned 32-bit representation."""
    return value & WORD_MASK


def to_s32(value: int) -> int:
    """Wrap an integer to its signed (two's complement) 32-bit value."""
    value &= WORD_MASK
    return value - (1 << WORD_BITS) if value >= (1 << (WORD_BITS - 1)) else value


class Op(enum.IntEnum):
    """Opcodes. IntEnum so hot paths can compare raw ints."""

    # Three-operand register ALU.
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    NOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLTU = enum.auto()
    # Long-latency integer ops (dedicated mult/div unit).
    MULT = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    # Immediate ALU.
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLTI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SRAI = enum.auto()
    LUI = enum.auto()
    # Memory.
    LW = enum.auto()
    LB = enum.auto()
    LBU = enum.auto()
    SW = enum.auto()
    SB = enum.auto()
    # Conditional branches (reg-reg compare).
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLE = enum.auto()
    BGT = enum.auto()
    # Unconditional control.
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    JALR = enum.auto()
    # Misc.
    NOP = enum.auto()
    HALT = enum.auto()


# --- Opcode categories (frozensets of raw ints for fast membership). ------

ALU_REG_OPS = frozenset(
    int(o)
    for o in (
        Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR,
        Op.SLL, Op.SRL, Op.SRA, Op.SLT, Op.SLTU,
    )
)
MULDIV_OPS = frozenset(int(o) for o in (Op.MULT, Op.DIV, Op.REM))
ALU_IMM_OPS = frozenset(
    int(o)
    for o in (
        Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI,
        Op.SLLI, Op.SRLI, Op.SRAI, Op.LUI,
    )
)
LOAD_OPS = frozenset(int(o) for o in (Op.LW, Op.LB, Op.LBU))
STORE_OPS = frozenset(int(o) for o in (Op.SW, Op.SB))
COND_BRANCH_OPS = frozenset(
    int(o) for o in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT)
)
JUMP_OPS = frozenset(int(o) for o in (Op.J, Op.JAL, Op.JR, Op.JALR))
CONTROL_OPS = COND_BRANCH_OPS | JUMP_OPS

# Branch condition negation, used by the structured builder to emit
# "branch around the body if the condition is false".
NEGATED_BRANCH = {
    Op.BEQ: Op.BNE,
    Op.BNE: Op.BEQ,
    Op.BLT: Op.BGE,
    Op.BGE: Op.BLT,
    Op.BLE: Op.BGT,
    Op.BGT: Op.BLE,
}

REG_ALIASES = {
    "zero": 0, "at": 1, "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13,
    "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23,
    "t8": 24, "t9": 25, "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "ra": 31,
}
REG_NAMES = {num: name for name, num in REG_ALIASES.items()}


def parse_reg(token: str) -> int:
    """Parse a register token like ``$t0``, ``t0``, ``$5`` or ``r5``."""
    tok = token.strip().lstrip("$")
    if tok in REG_ALIASES:
        return REG_ALIASES[tok]
    if tok.startswith("r") and tok[1:].isdigit():
        num = int(tok[1:])
    elif tok.isdigit():
        num = int(tok)
    else:
        raise ValueError(f"unknown register {token!r}")
    if not 0 <= num < NUM_LOGICAL_REGS:
        raise ValueError(f"register number out of range: {token!r}")
    return num


@dataclass(slots=True)
class Instruction:
    """One static instruction.

    ``rd`` is the destination logical register (or ``None``); ``rs1``/``rs2``
    are source logical registers (or ``None``); ``imm`` is the immediate /
    displacement; ``target`` is a branch/jump target — a label string before
    assembly and an instruction index afterwards.

    Category flags (``is_load``, ``is_cond_branch``, ...) and the source
    tuple are decoded once at construction — static instructions are
    inspected millions of times on the simulation hot path, so they are
    plain attributes, not properties.
    """

    op: Op
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | str | None = None
    label: str | None = field(default=None, compare=False)
    # Decode-once category flags (derived; excluded from eq/repr).
    opcode: int = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_cond_branch: bool = field(init=False, repr=False, compare=False)
    is_jump: bool = field(init=False, repr=False, compare=False)
    is_control: bool = field(init=False, repr=False, compare=False)
    is_muldiv: bool = field(init=False, repr=False, compare=False)
    _sources: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        opcode = int(self.op)
        self.opcode = opcode
        self.is_load = opcode in LOAD_OPS
        self.is_store = opcode in STORE_OPS
        self.is_mem = self.is_load or self.is_store
        self.is_cond_branch = opcode in COND_BRANCH_OPS
        self.is_jump = opcode in JUMP_OPS
        self.is_control = self.is_cond_branch or self.is_jump
        self.is_muldiv = opcode in MULDIV_OPS
        if self.rs1 is not None:
            if self.rs2 is not None:
                self._sources = (self.rs1, self.rs2)
            else:
                self._sources = (self.rs1,)
        elif self.rs2 is not None:
            self._sources = (self.rs2,)
        else:
            self._sources = ()

    def sources(self) -> tuple[int, ...]:
        """Logical source registers actually read by this instruction."""
        return self._sources

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return disassemble(self)


def _r(reg: int | None) -> str:
    if reg is None:
        return "?"
    return f"${REG_NAMES.get(reg, f'r{reg}')}"


def disassemble(inst: Instruction) -> str:
    """Render an instruction in assembler syntax (for logs and errors)."""
    op = inst.op
    name = op.name.lower()
    if int(op) in ALU_REG_OPS or int(op) in MULDIV_OPS:
        return f"{name} {_r(inst.rd)}, {_r(inst.rs1)}, {_r(inst.rs2)}"
    if int(op) in ALU_IMM_OPS:
        if op is Op.LUI:
            return f"{name} {_r(inst.rd)}, {inst.imm:#x}"
        return f"{name} {_r(inst.rd)}, {_r(inst.rs1)}, {inst.imm}"
    if int(op) in LOAD_OPS:
        return f"{name} {_r(inst.rd)}, {inst.imm}({_r(inst.rs1)})"
    if int(op) in STORE_OPS:
        return f"{name} {_r(inst.rs2)}, {inst.imm}({_r(inst.rs1)})"
    if int(op) in COND_BRANCH_OPS:
        return f"{name} {_r(inst.rs1)}, {_r(inst.rs2)}, {inst.target}"
    if op in (Op.J, Op.JAL):
        return f"{name} {inst.target}"
    if op is Op.JR:
        return f"{name} {_r(inst.rs1)}"
    if op is Op.JALR:
        return f"{name} {_r(inst.rd)}, {_r(inst.rs1)}"
    return name


def validate(inst: Instruction) -> None:
    """Raise ``ValueError`` if the instruction's operands are malformed."""
    op = int(inst.op)

    def need(cond: bool, what: str) -> None:
        if not cond:
            raise ValueError(f"{disassemble(inst)}: {what}")

    in_range = lambda r: r is not None and 0 <= r < NUM_LOGICAL_REGS
    if op in ALU_REG_OPS or op in MULDIV_OPS:
        need(in_range(inst.rd), "needs destination register")
        need(in_range(inst.rs1) and in_range(inst.rs2), "needs two sources")
    elif op in ALU_IMM_OPS:
        need(in_range(inst.rd), "needs destination register")
        if inst.op is not Op.LUI:
            need(in_range(inst.rs1), "needs one source")
    elif op in LOAD_OPS:
        need(in_range(inst.rd), "load needs destination")
        need(in_range(inst.rs1), "load needs base register")
    elif op in STORE_OPS:
        need(in_range(inst.rs1), "store needs base register")
        need(in_range(inst.rs2), "store needs value register")
    elif op in COND_BRANCH_OPS:
        need(in_range(inst.rs1) and in_range(inst.rs2), "branch needs two sources")
        need(inst.target is not None, "branch needs target")
    elif inst.op in (Op.J, Op.JAL):
        need(inst.target is not None, "jump needs target")
    elif inst.op in (Op.JR, Op.JALR):
        need(in_range(inst.rs1), "jr needs target register")
    if inst.rd == 0 and inst.rd is not None and op not in STORE_OPS:
        # Writing r0 is legal (it is a discard) but usually a bug in
        # hand-written kernels; allow it silently (NOP is encoded this way).
        pass


def branch_taken(op: Op, lhs: int, rhs: int) -> bool:
    """Evaluate a conditional branch on signed 32-bit operand values."""
    a, b = to_s32(lhs), to_s32(rhs)
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return a < b
    if op is Op.BGE:
        return a >= b
    if op is Op.BLE:
        return a <= b
    if op is Op.BGT:
        return a > b
    raise ValueError(f"not a conditional branch: {op}")
