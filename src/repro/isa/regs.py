"""Named logical register constants.

``at`` (r1) is reserved as the builder's scratch register: the structured
builder materializes immediate branch operands there, so kernels must not
keep live values in it across builder-emitted control flow.
"""

zero = 0
at = 1
v0, v1 = 2, 3
a0, a1, a2, a3 = 4, 5, 6, 7
t0, t1, t2, t3, t4, t5, t6, t7 = 8, 9, 10, 11, 12, 13, 14, 15
s0, s1, s2, s3, s4, s5, s6, s7 = 16, 17, 18, 19, 20, 21, 22, 23
t8, t9 = 24, 25
k0, k1 = 26, 27
gp, sp, fp, ra = 28, 29, 30, 31

CALLER_SAVED = (t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, a0, a1, a2, a3, v0, v1)
CALLEE_SAVED = (s0, s1, s2, s3, s4, s5, s6, s7)
