"""Shared infrastructure for the synthetic SPEC95-int workloads.

Each workload module exposes ``build(scale=1.0, seed=...) -> Program``.
The kernels are written against :class:`~repro.isa.builder.AsmBuilder` and
bake seeded input data into the program's data segment, so every run is
deterministic.  ``scale`` multiplies the dynamic instruction count
(resolution of the experiments) without changing branch character.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.isa.program import Program


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry: one SPEC95-int stand-in (paper Table 3 row)."""

    name: str
    build: Callable[..., Program]
    description: str
    branch_character: str
    paper_dataset: str = "ref"
    paper_window: str = ""

    def instantiate(self, scale: float = 1.0, seed: int = 1) -> Program:
        return self.build(scale=scale, seed=seed)


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration count, keeping it at least ``minimum``."""
    return max(minimum, int(round(base * scale)))


def rng_for(seed: int, stream: str) -> random.Random:
    """Independent deterministic stream per (seed, purpose)."""
    return random.Random(f"{seed}:{stream}")


def skewed_bytes(rng: random.Random, count: int,
                 alphabet: int = 26, repeat_bias: float = 0.55) -> list[int]:
    """Text-like byte stream: repeating phrases with a skewed alphabet.

    ``repeat_bias`` is the probability of re-emitting a recent phrase,
    giving compress-style workloads realistic dictionary hit behaviour.
    """
    phrases: list[list[int]] = []
    out: list[int] = []
    while len(out) < count:
        if phrases and rng.random() < repeat_bias:
            out.extend(rng.choice(phrases))
        else:
            length = rng.randint(3, 9)
            phrase = [rng.randrange(alphabet) + 1 for _ in range(length)]
            phrases.append(phrase)
            if len(phrases) > 24:
                phrases.pop(0)
            out.extend(phrase)
    return out[:count]


def pack_words(values: list[int]) -> list[int]:
    """Mask arbitrary ints into 32-bit words for the data segment."""
    return [value & 0xFFFFFFFF for value in values]
