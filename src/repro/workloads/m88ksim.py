"""m88ksim stand-in: the paper's Figure 7 ``lookupdisasm`` kernel.

A hash table of linked lists whose contents never change: the number of
iterations needed to find (or miss) a key is fully determined by the key's
value.  In real m88ksim the key is produced by instruction decode hundreds
of instructions before the lookup, so its register is *committed* when the
while-loop branches are fetched.  We reproduce that with a four-deep
software-pipelined key rotation (each key is loaded three lookup bodies
before its use), which keeps the key committed across the realistic range
of IPC — the essential precondition for the paper's headline result.

ARVI then keys the BVIT on (branch PC, key value) with the chain-depth tag
embodying the walk iteration count; since the table is static, every
(key, iteration) pair has a deterministic outcome and ARVI approaches
perfect prediction, while history-based predictors see an irregular exit
pattern.  The walk branches remain *load branches* (their chains end in
the pending ``ptr``/``ptr->opcode`` loads) — high load-branch rate with
high accuracy, matching the paper's Figures 5 and 6 for m88ksim.
"""

from __future__ import annotations

from repro.isa import AsmBuilder, ge, nez
from repro.isa.program import Program
from repro.isa.regs import (
    a0, k0, k1, s0, s1, s2, s3, s4, s5, s6, s7, t0, t1, t2, t3, t8, v0, zero,
)
from repro.workloads.common import rng_for, scaled

HASHVAL = 32          # power of two: bucket = key & (HASHVAL - 1)
MAX_CHAIN = 4
NUM_KEYS = 128
ABSENT_KEY_FRACTION = 0.2
STREAM_WORDS = 32768  # 128 KB: streams through the 64 KB L1 (misses to L2)
_KEY_REGS = (s4, s5, s6, s7)


def _build_hash_table(seed: int):
    """Static table: per-bucket chains of (opcode, next) nodes."""
    rng = rng_for(seed, "m88ksim-table")
    buckets: list[list[int]] = []
    for bucket in range(HASHVAL):
        length = min(rng.choice([0, 1, 1, 2, 2, 3, 3, 4, 4]), MAX_CHAIN)
        opcodes = []
        seen = set()
        while len(opcodes) < length:
            opcode = bucket + HASHVAL * rng.randint(1, 4000)
            if opcode not in seen:
                seen.add(opcode)
                opcodes.append(opcode)
        buckets.append(opcodes)
    return buckets


def _choose_keys(buckets, seed: int) -> list[int]:
    """Irregular key sequence: mostly present opcodes, some misses."""
    rng = rng_for(seed, "m88ksim-keys")
    present = [op for bucket in buckets for op in bucket]
    keys = []
    for _ in range(NUM_KEYS):
        if present and rng.random() > ABSENT_KEY_FRACTION:
            keys.append(rng.choice(present))
        else:
            bucket = rng.randrange(HASHVAL)
            taken = set(buckets[bucket])
            while True:
                absent = bucket + HASHVAL * rng.randint(4001, 8000)
                if absent not in taken:
                    keys.append(absent)
                    break
    return keys


def build(scale: float = 1.0, seed: int = 1) -> Program:
    iterations = scaled(800, scale)  # outer iterations, 4 lookups each
    buckets = _build_hash_table(seed)
    keys = _choose_keys(buckets, seed)

    b = AsmBuilder("m88ksim")
    node_addr: dict[int, int] = {}
    for bucket_ops in buckets:
        for opcode in bucket_ops:
            node_addr[opcode] = b.data_space(None, 2)
    b.data_word("hashtab", *[
        node_addr[ops[0]] if ops else 0 for ops in buckets
    ])
    for bucket_ops in buckets:
        for position, opcode in enumerate(bucket_ops):
            addr = node_addr[opcode]
            nxt = (node_addr[bucket_ops[position + 1]]
                   if position + 1 < len(bucket_ops) else 0)
            b.set_data_word(addr, opcode)
            b.set_data_word(addr + 4, nxt)
    b.data_word("keys", *keys)

    stream_base = b.data_space("stream", STREAM_WORDS)

    b.label("main")
    b.la(s0, "keys")
    b.li(s2, 0)            # checksum
    b.li(s3, 0)            # hit counter
    b.la(k0, "stream")     # streaming cursor (simulator-state traffic)
    b.li(k1, stream_base + 4 * STREAM_WORDS)
    # Prime the four-deep key pipeline: keyreg[k] = keys[k].
    for k, reg in enumerate(_KEY_REGS):
        b.lw(reg, s0, 4 * k)
    b.li(s1, len(_KEY_REGS))  # next key index
    with b.for_range(t8, 0, iterations):
        for reg in _KEY_REGS:
            # Stream through a 128 KB table (the simulated CPU state in
            # real m88ksim): the L1 miss keeps commit lagging behind the
            # walk, so dependence chains stay in flight across it.
            b.lw(t3, k0, 0)
            b.add(s2, s2, t3)
            b.addi(k0, k0, 4)
            with b.if_(ge(k0, k1)):
                b.la(k0, "stream")
            # Lookup with a key loaded three bodies ago (committed).
            b.move(a0, reg)
            b.jal("lookupdisasm")
            with b.if_(nez(v0)):
                b.addi(s3, s3, 1)
            # Refill this slot for use three bodies from now.
            b.slli(t0, s1, 2)
            b.add(t0, t0, s0)
            b.lw(reg, t0, 0)
            b.addi(s1, s1, 1)
            b.andi(s1, s1, NUM_KEYS - 1)
            # Decode-phase filler: integer work on the checksum.
            b.add(s2, s2, a0)
            b.slli(t1, s2, 1)
            b.xor(s2, s2, t1)
            b.srli(t2, s2, 3)
            b.add(s2, s2, t2)
    b.halt()

    # INSTAB *lookupdisasm(UINT key)  — paper Figure 7.  Leaf function,
    # no prologue: the walk chain stays short enough for the 5-bit depth
    # tag to distinguish every iteration.
    b.label("lookupdisasm")
    b.andi(t0, a0, HASHVAL - 1)
    b.slli(t0, t0, 2)
    b.la(t1, "hashtab")
    b.add(t1, t1, t0)
    b.lw(v0, t1, 0)                     # ptr = hashtab[key % HASHVAL]
    b.label("walk")
    b.beq(v0, zero, "walk_done")        # while (ptr != NULL
    b.lw(t2, v0, 0)                     #        && ptr->opcode
    b.beq(t2, a0, "walk_done")          #        != key)
    b.lw(v0, v0, 4)                     #   ptr = ptr->next
    b.j("walk")
    b.label("walk_done")
    b.jr()
    return b.build()
