"""ijpeg stand-in: blocked image transform with clipping and quantization.

Fixed-count loops over 8-sample blocks dominate (well predicted by
everything); the interesting branches are range clipping and the
quantization compare, whose operands come from loads a short distance
before the branch — close enough that hoisting the load (the paper's
*load back* configuration) converts many of them from load branches into
calculated branches.  ijpeg is the benchmark where load back visibly helps
in the paper (Section 6).
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eqz, ge, gt, lt
from repro.isa.program import Program
from repro.isa.regs import (
    s0, s1, s2, s3, s4, s5, s6, s7, t0, t1, t2, t3, t4, t5, t6, zero,
)
from repro.workloads.common import rng_for, scaled

IMAGE_WORDS = 2048       # 8 KB image plane
BLOCK = 8
QUANT_ENTRIES = 8
CLIP_MAX = 255


def build(scale: float = 1.0, seed: int = 1) -> Program:
    passes = scaled(2, scale)
    rng = rng_for(seed, "ijpeg-image")
    image = [rng.randrange(0, 256) for _ in range(IMAGE_WORDS)]
    quant = [rng.randrange(8, 48) for _ in range(QUANT_ENTRIES)]

    b = AsmBuilder("ijpeg")
    b.data_word("image", *image)
    b.data_word("quant", *quant)
    b.data_space("out", IMAGE_WORDS)

    b.label("main")
    b.la(s0, "image")
    b.la(s1, "quant")
    b.la(s2, "out")
    b.li(s6, 0)                          # zero-run counter
    b.li(s7, 0)                          # output checksum
    with b.for_range(s5, 0, passes):
        with b.for_range(s3, 0, IMAGE_WORDS // BLOCK):
            b.slli(t0, s3, 5)            # block byte offset (8 words)
            b.add(t0, t0, s0)
            b.add(t6, t0, zero)          # save block base
            # Butterfly-ish transform: v = 2*x[i] - x[i^1] + (x[i] >> 2).
            with b.for_range(s4, 0, BLOCK):
                b.slli(t1, s4, 2)
                b.add(t1, t0, t1)
                b.lw(t2, t1, 0)
                b.xori(t3, s4, 1)
                b.slli(t3, t3, 2)
                b.add(t3, t6, t3)
                b.lw(t4, t3, 0)
                b.slli(t5, t2, 1)
                b.sub(t5, t5, t4)
                b.srli(t3, t2, 2)
                b.add(t5, t5, t3)
                # Clip to [0, CLIP_MAX] — biased, data-dependent.
                with b.if_(lt(t5, zero)):
                    b.li(t5, 0)
                with b.if_(gt(t5, CLIP_MAX, imm=True)):
                    b.li(t5, CLIP_MAX)
                # Quantize: subtract the table step while above it.
                b.andi(t3, s4, QUANT_ENTRIES - 1)
                b.slli(t3, t3, 2)
                b.add(t3, t3, s1)
                b.lw(t4, t3, 0)
                with b.if_(ge(t5, t4)):
                    b.sub(t5, t5, t4)
                # Zero-run accounting (bursty branch).
                with b.if_(eqz(t5)):
                    b.addi(s6, s6, 1)
                b.add(s7, s7, t5)
                # Store the transformed sample to the output plane.
                b.sub(t3, t1, s0)
                b.add(t3, t3, s2)
                b.sw(t5, t3, 0)
    b.halt()
    return b.build()
