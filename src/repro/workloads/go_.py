"""go stand-in: board evaluation with hard data-dependent branches.

Passes over a 21x21 board comparing freshly loaded, continuously evolving
cell values: the branches are load branches with little value or history
structure, reproducing go's role in the paper as the hardest benchmark —
the poorest load-branch accuracy (Figure 5b) and the smallest ARVI gain
among the gainers (Figure 6).  The board is mutated every pass so neither
values nor history converge.
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eqz, ge, gt, lt
from repro.isa.program import Program
from repro.isa.regs import (
    s0, s1, s2, s3, s4, s5, s6, t0, t1, t2, t3, t4, t5, t6, t7, t9, zero,
)
from repro.workloads.common import rng_for, scaled

SIZE = 21  # board edge (cells are words)


def build(scale: float = 1.0, seed: int = 1) -> Program:
    passes = scaled(5, scale)
    rng = rng_for(seed, "go-board")
    board = [rng.randrange(0, 8) for _ in range(SIZE * SIZE)]

    b = AsmBuilder("go")
    b.data_word("board", *board)

    row_bytes = 4 * SIZE

    def evaluation_pass(threshold: int, mutate_shift: int) -> None:
        """One board sweep; distinct copies widen the static footprint."""
        with b.for_range(s1, 1, SIZE - 1):          # row
            # s3 = &board[row][0]
            b.li(t0, row_bytes)
            b.mult(t1, s1, t0)
            b.add(s3, s0, t1)
            with b.for_range(s2, 1, SIZE - 1):      # column
                b.slli(t0, s2, 2)
                b.add(t0, s3, t0)
                b.lw(t1, t0, 0)                     # cell
                b.lw(t2, t0, 4)                     # east
                b.lw(t3, t0, -4)                    # west
                b.lw(t4, t0, row_bytes)             # south
                b.lw(t5, t0, -row_bytes)            # north
                # Empty-point test (noisy bias).
                with b.if_(eqz(t1)):
                    b.addi(s4, s4, 1)
                # Neighbour comparisons: essentially value noise.
                with b.if_(gt(t2, t3)):
                    b.add(s5, s5, t2)
                with b.if_(lt(t4, t5)):
                    b.sub(s5, s5, t4)
                # Influence accumulation and threshold test.
                b.add(t6, t2, t3)
                b.add(t6, t6, t4)
                b.add(t6, t6, t5)
                with b.if_(ge(t6, threshold, imm=True)):
                    b.addi(s6, s6, 1)
                    # Mutate the cell so later passes see fresh values.
                    b.srli(t7, t6, mutate_shift)
                    b.add(t7, t7, t1)
                    b.andi(t7, t7, 7)
                    b.sw(t7, t0, 0)
    b.label("main")
    b.la(s0, "board")
    b.li(s4, 0)
    b.li(s5, 0)
    b.li(s6, 0)
    with b.for_range(t9, 0, passes):
        evaluation_pass(threshold=12, mutate_shift=1)
        evaluation_pass(threshold=16, mutate_shift=2)
        evaluation_pass(threshold=9, mutate_shift=3)
        b.la(s0, "board")
    b.halt()
    return b.build()
