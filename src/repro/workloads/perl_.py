"""perl stand-in: bytecode interpreter dispatch loop.

A small stack VM executes a seeded bytecode program built from repeating
phrases: the dispatch is a compare-chain over the loaded opcode (the
interpreter-loop pattern), plus a value-dependent ``jz``.  The opcode
sequence is long and repetitive, so big history tables do well; ARVI is
roughly comparable with a small edge, as the paper reports for perl.
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eq, eqz, ne
from repro.isa.program import Program
from repro.isa.regs import (
    k0, s0, s1, s2, s3, s4, t0, t1, t2, t3, t4, zero,
)
from repro.workloads.common import rng_for, scaled

OP_PUSH, OP_ADD, OP_SUB, OP_DUP, OP_JZ, OP_LOADV, OP_STOREV, OP_END = range(8)
VM_STACK_WORDS = 64
VM_VARS = 16


def _generate_bytecode(seed: int) -> list[int]:
    """Phrase-structured (op, operand) stream ending in OP_END."""
    rng = rng_for(seed, "perl-bytecode")
    program: list[tuple[int, int]] = []

    def phrase() -> list[tuple[int, int]]:
        kind = rng.randrange(4)
        if kind == 0:   # arithmetic burst
            out = [(OP_PUSH, rng.randrange(1, 50))
                   for _ in range(rng.randint(2, 4))]
            out += [(OP_ADD, 0)] * (len(out) - 1)
            return out
        if kind == 1:   # variable update
            var = rng.randrange(VM_VARS)
            return [(OP_LOADV, var), (OP_PUSH, rng.randrange(1, 9)),
                    (OP_ADD, 0), (OP_STOREV, var)]
        if kind == 2:   # conditional skip (target patched below)
            var = rng.randrange(VM_VARS)
            return [(OP_LOADV, var), (OP_PUSH, 3), (OP_SUB, 0), (OP_JZ, -1),
                    (OP_PUSH, rng.randrange(1, 9)), (OP_STOREV, var)]
        return [(OP_PUSH, rng.randrange(1, 30)), (OP_DUP, 0), (OP_SUB, 0),
                (OP_STOREV, rng.randrange(VM_VARS))]

    phrases = [phrase() for _ in range(10)]
    while len(program) < 220:
        program.extend(rng.choice(phrases))
    # Patch every JZ to skip the next two VM instructions.
    for i, (op, _) in enumerate(program):
        if op == OP_JZ:
            program[i] = (OP_JZ, min(i + 3, len(program)))
    program.append((OP_END, 0))
    flat: list[int] = []
    for op, operand in program:
        flat.extend([op, operand])
    return flat


def build(scale: float = 1.0, seed: int = 1) -> Program:
    runs = scaled(30, scale)
    b = AsmBuilder("perl")
    bytecode = _generate_bytecode(seed)
    b.data_word("bytecode", *bytecode)
    b.data_space("vmstack", VM_STACK_WORDS)
    b.data_space("vmvars", VM_VARS)

    b.label("main")
    b.la(s0, "bytecode")
    b.la(s1, "vmvars")
    with b.for_range(s4, 0, runs):
        b.la(k0, "vmstack")       # VM stack pointer (grows up)
        b.li(s2, 0)               # vm_pc
        dispatch = b.new_label("dispatch")
        vm_end = b.new_label("vm_end")
        b.label(dispatch)
        # t0 = &bytecode[vm_pc * 2]
        b.slli(t0, s2, 3)
        b.add(t0, t0, s0)
        b.lw(t1, t0, 0)           # opcode
        b.lw(t2, t0, 4)           # operand
        b.addi(s2, s2, 1)
        with b.if_(eq(t1, OP_PUSH, imm=True)):
            b.sw(t2, k0, 0)
            b.addi(k0, k0, 4)
            b.j(dispatch)
        with b.if_(eq(t1, OP_ADD, imm=True)):
            b.lw(t3, k0, -4)
            b.lw(t4, k0, -8)
            b.add(t3, t3, t4)
            b.sw(t3, k0, -8)
            b.addi(k0, k0, -4)
            b.j(dispatch)
        with b.if_(eq(t1, OP_SUB, imm=True)):
            b.lw(t3, k0, -4)
            b.lw(t4, k0, -8)
            b.sub(t3, t4, t3)
            b.sw(t3, k0, -8)
            b.addi(k0, k0, -4)
            b.j(dispatch)
        with b.if_(eq(t1, OP_DUP, imm=True)):
            b.lw(t3, k0, -4)
            b.sw(t3, k0, 0)
            b.addi(k0, k0, 4)
            b.j(dispatch)
        with b.if_(eq(t1, OP_JZ, imm=True)):
            b.lw(t3, k0, -4)
            b.addi(k0, k0, -4)
            with b.if_(eqz(t3)):      # value-dependent VM branch
                b.move(s2, t2)
            b.j(dispatch)
        with b.if_(eq(t1, OP_LOADV, imm=True)):
            b.slli(t3, t2, 2)
            b.add(t3, t3, s1)
            b.lw(t4, t3, 0)
            b.sw(t4, k0, 0)
            b.addi(k0, k0, 4)
            b.j(dispatch)
        with b.if_(eq(t1, OP_STOREV, imm=True)):
            b.lw(t4, k0, -4)
            b.addi(k0, k0, -4)
            b.slli(t3, t2, 2)
            b.add(t3, t3, s1)
            b.sw(t4, t3, 0)
            b.j(dispatch)
        # OP_END (or unknown): stop this run.
        b.label(vm_end)
        b.nop()
    b.halt()
    return b.build()
