"""gcc stand-in: multi-pass IR walker with wide static branch footprint.

Three distinct optimization passes (constant folding, dead-code marking,
strength reduction) each dispatch over a seeded pseudo-IR opcode stream
with per-case guard branches.  The point is *breadth*: many static branch
sites of mixed bias and predictability, some IR mutation between passes,
stressing predictor table capacity the way gcc does.  Expect moderate
accuracy for every predictor and a modest ARVI gain, as in the paper.
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eq, eqz, ge, lt, ne
from repro.isa.program import Program
from repro.isa.regs import (
    s0, s1, s2, s3, s4, s5, s6, t0, t1, t2, t3, t4, t8, zero,
)
from repro.workloads.common import rng_for, scaled

IR_ENTRIES = 1024       # (op, a1, a2) triples
NUM_OPS = 12

OP_NOP, OP_ADD, OP_SUB, OP_MUL, OP_LOAD, OP_STORE = range(6)
OP_BRANCH, OP_CALL, OP_CMP, OP_MOVE, OP_SHIFT, OP_RET = range(6, 12)

_OP_WEIGHTS = [2, 8, 5, 2, 9, 6, 7, 3, 6, 8, 4, 3]


def build(scale: float = 1.0, seed: int = 1) -> Program:
    passes = scaled(2, scale)
    rng = rng_for(seed, "gcc-ir")
    ops = rng.choices(range(NUM_OPS), weights=_OP_WEIGHTS, k=IR_ENTRIES)
    a1s = [rng.choice([0, 0, 1, rng.randrange(64)]) for _ in range(IR_ENTRIES)]
    a2s = [rng.choice([0, 1, 2, rng.randrange(64)]) for _ in range(IR_ENTRIES)]
    triples = []
    for op, a1, a2 in zip(ops, a1s, a2s):
        triples.extend([op, a1, a2])

    b = AsmBuilder("gcc")
    b.data_word("ir", *triples)

    def walk_ir(body) -> None:
        """Loop over the IR; ``body(op, a1, a2, base)`` emits per-entry code
        with the operands in t1, t2, t3 and the entry address in t0."""
        with b.for_range(s1, 0, IR_ENTRIES):
            b.slli(t0, s1, 2)
            b.add(t4, s1, s1)
            b.slli(t4, t4, 2)
            b.add(t0, t0, t4)            # s1 * 12
            b.add(t0, t0, s0)
            b.lw(t1, t0, 0)              # op
            b.lw(t2, t0, 4)              # a1
            b.lw(t3, t0, 8)              # a2
            body()

    def fold_pass() -> None:
        """Constant folding: per-op dispatch with zero/one guards."""
        def body() -> None:
            with b.if_(eq(t1, OP_ADD, imm=True)):
                with b.if_(eqz(t2)):         # x + 0
                    b.li(t4, OP_MOVE)
                    b.sw(t4, t0, 0)
                    b.addi(s2, s2, 1)
            with b.if_(eq(t1, OP_MUL, imm=True)):
                with b.if_(eq(t3, 1, imm=True)):  # x * 1
                    b.li(t4, OP_MOVE)
                    b.sw(t4, t0, 0)
                    b.addi(s2, s2, 1)
                with b.if_(eq(t3, 2, imm=True)):  # x * 2 -> shift
                    b.li(t4, OP_SHIFT)
                    b.sw(t4, t0, 0)
            with b.if_(eq(t1, OP_CMP, imm=True)):
                with b.if_(eq(t2, t3)):
                    b.addi(s3, s3, 1)
        walk_ir(body)

    def deadcode_pass() -> None:
        """Mark moves/nops with dead operands."""
        def body() -> None:
            with b.if_(eq(t1, OP_MOVE, imm=True)):
                with b.if_(eq(t2, t3)):          # move x -> x
                    b.li(t4, OP_NOP)
                    b.sw(t4, t0, 0)
                    b.addi(s4, s4, 1)
            with b.if_(eq(t1, OP_NOP, imm=True)):
                b.addi(s4, s4, 1)
            with b.if_(eq(t1, OP_STORE, imm=True)):
                with b.if_(eqz(t3)):
                    b.addi(s4, s4, 1)
        walk_ir(body)

    def strength_pass() -> None:
        """Strength reduction with value-range guards."""
        def body() -> None:
            with b.if_(eq(t1, OP_LOAD, imm=True)):
                with b.if_(lt(t2, 8, imm=True)):
                    b.addi(s5, s5, 1)
            with b.if_(eq(t1, OP_BRANCH, imm=True)):
                with b.if_(ge(t2, t3)):
                    b.addi(s5, s5, 1)
            with b.if_(eq(t1, OP_SUB, imm=True)):
                with b.if_(ne(t2, zero)):
                    b.sub(t4, t2, t3)
                    b.add(s6, s6, t4)
        walk_ir(body)

    b.label("main")
    b.la(s0, "ir")
    for reg in (s2, s3, s4, s5, s6):
        b.li(reg, 0)
    with b.for_range(t8, 0, passes):
        fold_pass()
        deadcode_pass()
        strength_pass()
    b.halt()
    return b.build()
