"""Synthetic SPEC95-int workloads (paper Table 3 stand-ins)."""

from repro.workloads import (
    compress,
    gcc,
    go_,
    ijpeg,
    li_,
    m88ksim,
    perl_,
    vortex,
)
from repro.workloads.common import WorkloadSpec, scaled, skewed_bytes
from repro.workloads.registry import (
    BENCHMARKS,
    SPECS,
    get_program,
    get_spec,
    table3_rows,
)

__all__ = [
    "BENCHMARKS",
    "SPECS",
    "WorkloadSpec",
    "compress",
    "gcc",
    "get_program",
    "get_spec",
    "go_",
    "ijpeg",
    "li_",
    "m88ksim",
    "perl_",
    "scaled",
    "skewed_bytes",
    "table3_rows",
    "vortex",
]
