"""Workload registry — the paper's Table 3 benchmark suite.

The SPEC95 integer benchmarks themselves are unavailable; each entry is a
synthetic kernel reproducing that benchmark's branch character (see the
workload module docstrings and DESIGN.md §4).  The paper's simulation
windows (Table 3) are recorded for reference; our windows are set by
``scale`` and the engine's ``warmup_instructions``.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads import (
    compress,
    gcc,
    go_,
    ijpeg,
    li_,
    m88ksim,
    perl_,
    vortex,
)
from repro.workloads.common import WorkloadSpec

SPECS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            "gcc", gcc.build,
            "multi-pass pseudo-IR optimizer",
            "many static branch sites, mixed bias",
            paper_window="200M-300M"),
        WorkloadSpec(
            "compress", compress.build,
            "LZW-style dictionary compression",
            "data-dependent hash probe branches",
            paper_window="3000M-3100M"),
        WorkloadSpec(
            "go", go_.build,
            "board evaluation over evolving state",
            "hard load branches, little structure",
            paper_window="900M-1000M"),
        WorkloadSpec(
            "ijpeg", ijpeg.build,
            "blocked transform + clip + quantize",
            "regular loops, short load-to-branch distances",
            paper_window="700M-800M"),
        WorkloadSpec(
            "li", li_.build,
            "tagged cons-cell interpreter",
            "pointer chasing with type-tag dispatch",
            paper_window="400M-500M"),
        WorkloadSpec(
            "m88ksim", m88ksim.build,
            "hash + linked-list lookup (paper Fig. 7)",
            "value-determined loop exits",
            paper_window="150M-250M"),
        WorkloadSpec(
            "perl", perl_.build,
            "bytecode interpreter dispatch",
            "repetitive dispatch compare-chains",
            paper_window="700M-800M"),
        WorkloadSpec(
            "vortex", vortex.build,
            "object database lookup/validate",
            "highly biased validation guards",
            paper_window="2400M-2500M"),
    )
}

BENCHMARKS = tuple(SPECS)

_cache: dict[tuple[str, float, int], Program] = {}


def get_spec(name: str) -> WorkloadSpec:
    if name not in SPECS:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(SPECS)}")
    return SPECS[name]


def get_program(name: str, scale: float = 1.0, seed: int = 1) -> Program:
    """Build (with caching) the named workload at the given scale."""
    key = (name, scale, seed)
    if key not in _cache:
        _cache[key] = get_spec(name).instantiate(scale=scale, seed=seed)
    return _cache[key]


def table3_rows(scale: float = 1.0) -> list[tuple[str, str, str, str]]:
    """(benchmark, dataset, paper window, our kernel) rows for Table 3."""
    return [
        (spec.name, spec.paper_dataset, spec.paper_window, spec.description)
        for spec in SPECS.values()
    ]
