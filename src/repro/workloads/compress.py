"""compress stand-in: LZW-style dictionary compression.

The inner loop hashes (prefix, byte) pairs into an open-addressed
dictionary and branches on probe hit / empty / collision — data-dependent
branches whose operands come from recent loads, the classic
load-evaluate-branch pattern the paper highlights for SPEC95int.  The
input is a seeded, phrase-repeating byte stream, so dictionary hits have
exploitable structure (paper Figure 6: ARVI lifts compress from about
90.5% to 93%).
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eq, eqz, nez
from repro.isa.program import Program
from repro.isa.regs import (
    a0, k0, k1, s0, s1, s2, s3, s4, s5, t0, t1, t2, t3, t4, t5, zero,
)
from repro.workloads.common import rng_for, scaled, skewed_bytes

INPUT_BYTES = 2048
TABLE_ENTRIES = 8192  # power of two; bounds distinct (prefix, byte) keys
PROBE_STEP = 7


def build(scale: float = 1.0, seed: int = 1) -> Program:
    passes = scaled(3, scale)
    rng = rng_for(seed, "compress-input")
    data = skewed_bytes(rng, INPUT_BYTES)

    b = AsmBuilder("compress")
    b.data_word("input", *data)
    b.data_space("tkey", TABLE_ENTRIES)
    b.data_space("tcode", TABLE_ENTRIES)

    b.label("main")
    b.la(s0, "input")
    b.la(k0, "tkey")
    b.la(k1, "tcode")
    b.li(s3, 256)           # next dictionary code
    b.li(s4, 0)             # output checksum
    with b.for_range(s5, 0, passes):
        b.li(s2, 0)         # prefix
        with b.for_range(s1, 0, INPUT_BYTES):
            # c = input[i]
            b.slli(t0, s1, 2)
            b.add(t0, t0, s0)
            b.lw(t1, t0, 0)
            # key = (prefix << 8) | c ; never zero because c >= 1
            b.slli(t2, s2, 8)
            b.or_(a0, t2, t1)
            # h = (key ^ (key >> 7)) & (TABLE_ENTRIES - 1)
            b.srli(t2, a0, 7)
            b.xor(t2, t2, a0)
            b.andi(t2, t2, TABLE_ENTRIES - 1)
            probe_top = b.new_label("probe")
            done = b.new_label("byte_done")
            b.label(probe_top)
            # e = tkey[h]
            b.slli(t3, t2, 2)
            b.add(t4, t3, k0)
            b.lw(t5, t4, 0)
            with b.if_(eq(t5, a0)):
                # Dictionary hit: prefix = tcode[h] & 0xff.
                b.add(t4, t3, k1)
                b.lw(s2, t4, 0)
                b.andi(s2, s2, 0xFF)
                b.j(done)
            with b.if_(eqz(t5)):
                # Empty slot: insert, emit prefix, restart with byte.
                b.sw(a0, t4, 0)
                b.add(t4, t3, k1)
                b.sw(s3, t4, 0)
                b.addi(s3, s3, 1)
                b.add(s4, s4, s2)      # emit(prefix)
                b.andi(s2, t1, 0xFF)   # prefix = c
                b.j(done)
            # Collision: linear reprobe.
            b.addi(t2, t2, PROBE_STEP)
            b.andi(t2, t2, TABLE_ENTRIES - 1)
            b.j(probe_top)
            b.label(done)
            # Fold the emitted stream into a checksum.
            b.slli(t2, s4, 1)
            b.xor(s4, s4, t2)
    b.halt()
    return b.build()
