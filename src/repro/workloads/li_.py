"""li (xlisp) stand-in: tagged cons-cell interpreter.

Static list structures are traversed repeatedly with a type-tag dispatch
per cell — pointer chasing where both the dispatch operand (the tag) and
the next pointer come from loads, but the structure is immutable, so every
(root, position) pair behaves deterministically.  As with m88ksim the
chain-depth tag lets ARVI separate positions along a list; the multiway
dispatch and larger working set give it more BVIT pressure, matching li's
moderate gain in the paper (93% -> 95.5%).
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eq, eqz
from repro.isa.program import Program
from repro.isa.regs import (
    a0, s0, s1, s2, s3, s4, s5, t0, t1, t2, t3, v0, zero,
)
from repro.workloads.common import rng_for, scaled

TAG_INT, TAG_SYM, TAG_CONS, TAG_WEIGHT = 0, 1, 2, 3
NUM_ROOTS = 48
MAX_DEPTH = 6


def _build_cells(b: AsmBuilder, seed: int) -> list[int]:
    """Allocate immutable tagged cells; returns root addresses."""
    rng = rng_for(seed, "li-cells")

    def make_list(depth: int) -> int:
        """Build a chain of 1..6 cells; returns its head address (0=nil)."""
        length = rng.randint(1, 6)
        head = 0
        for _ in range(length):
            tag = rng.choice([TAG_INT, TAG_INT, TAG_SYM, TAG_WEIGHT]
                             + ([TAG_CONS] if depth < MAX_DEPTH else []))
            if tag == TAG_CONS:
                value = make_list(depth + 1)
                if value == 0:
                    tag, value = TAG_INT, rng.randrange(1, 1000)
            else:
                value = rng.randrange(1, 1000)
            addr = b.data_word(None, tag, value, head)
            head = addr
        return head

    return [make_list(0) or b.data_word(None, TAG_INT, 7, 0)
            for _ in range(NUM_ROOTS)]


def build(scale: float = 1.0, seed: int = 1) -> Program:
    iterations = scaled(1500, scale)
    b = AsmBuilder("li")
    roots = _build_cells(b, seed)
    b.data_word("roots", *roots)

    b.label("main")
    b.la(s0, "roots")
    b.li(s1, 0)              # root index
    b.li(s2, 0)              # accumulator
    with b.for_range(s5, 0, iterations):
        # a0 = roots[i]; i = (i + 1) % NUM_ROOTS
        b.slli(t0, s1, 2)
        b.add(t0, t0, s0)
        b.lw(a0, t0, 0)
        b.addi(s1, s1, 1)
        with b.if_(eq(s1, NUM_ROOTS, imm=True)):
            b.li(s1, 0)
        # Iterative eval of the list at a0 with an explicit depth fuse.
        b.li(s4, 0)                       # descent fuse
        walk = b.new_label("eval")
        done = b.new_label("eval_done")
        b.label(walk)
        b.beq(a0, zero, done)             # nil
        b.lw(t1, a0, 0)                   # tag
        b.lw(t2, a0, 4)                   # value
        with b.if_(eq(t1, TAG_INT, imm=True)):
            b.add(s2, s2, t2)
        with b.if_(eq(t1, TAG_SYM, imm=True)):
            b.slli(t3, t2, 1)
            b.xor(s2, s2, t3)
        with b.if_(eq(t1, TAG_WEIGHT, imm=True)):
            b.srli(t3, t2, 2)
            b.sub(s2, s2, t3)
        with b.if_(eq(t1, TAG_CONS, imm=True)):
            b.addi(s4, s4, 1)
            with b.if_(eq(s4, 8, imm=True)):
                b.j(done)                 # fuse blown: stop descending
            b.move(a0, t2)                # descend into the sublist
            b.j(walk)
        b.lw(a0, a0, 8)                   # next cell
        b.j(walk)
        b.label(done)
    b.halt()
    return b.build()
