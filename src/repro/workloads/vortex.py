"""vortex stand-in: object database lookup and validation.

Indexed record fetches with validation guards that almost always pass —
vortex's branches are highly biased and easy for every predictor, so all
configurations sit near the top of the accuracy range and ARVI's edge is
small (paper Figure 6: vortex shows the smallest deltas).
"""

from __future__ import annotations

from repro.isa import AsmBuilder, eq, ge, ne
from repro.isa.program import Program
from repro.isa.regs import (
    s0, s1, s2, s3, s4, s5, t0, t1, t2, t3, t4, zero,
)
from repro.workloads.common import rng_for, scaled

NUM_RECORDS = 1024      # 16-byte records: [id, status, type, payload]
NUM_QUERIES = 256
INVALID_FRACTION = 0.02


def build(scale: float = 1.0, seed: int = 1) -> Program:
    iterations = scaled(20, scale)
    rng = rng_for(seed, "vortex-db")

    records: list[int] = []
    for rec_id in range(NUM_RECORDS):
        status = 0 if rng.random() < INVALID_FRACTION else 1
        # Type distribution is heavily skewed (90% archival records), so
        # the type guard is biased like vortex's validation branches.
        rec_type = rng.choices(range(4), weights=(4, 3, 3, 90))[0]
        payload = rng.randrange(1, 1 << 16)
        records.extend([rec_id * 3 + 11, status, rec_type, payload])
    queries = [rng.randrange(NUM_RECORDS) for _ in range(NUM_QUERIES)]

    b = AsmBuilder("vortex")
    b.data_word("records", *records)
    b.data_word("queries", *queries)

    b.label("main")
    b.la(s0, "records")
    b.la(s1, "queries")
    b.li(s3, 0)               # valid-record accumulator
    b.li(s4, 0)               # type histogram checksum
    with b.for_range(s5, 0, iterations):
        with b.for_range(s2, 0, NUM_QUERIES):
            b.slli(t0, s2, 2)
            b.add(t0, t0, s1)
            b.lw(t1, t0, 0)                  # record index
            b.slli(t2, t1, 4)                # * 16 bytes
            b.add(t2, t2, s0)
            b.lw(t3, t2, 0)                  # id
            # Integrity check: id == index * 3 + 11 (always true).
            b.add(t4, t1, t1)
            b.add(t4, t4, t1)
            b.addi(t4, t4, 11)
            with b.if_(eq(t3, t4)):
                b.lw(t3, t2, 4)              # status
                with b.if_(ne(t3, zero)):    # ~95% valid
                    b.lw(t4, t2, 12)         # payload
                    b.add(s3, s3, t4)
                    b.lw(t4, t2, 8)          # type
                    with b.if_(ge(t4, 2, imm=True)):
                        b.addi(s4, s4, 1)
    b.halt()
    return b.build()
