"""Standalone queue worker: ``python -m repro.worker --broker DIR``.

Leases benchmark-pure batch jobs from a
:class:`~repro.experiments.broker.FileBroker` directory, simulates every
point through the same :func:`~repro.experiments.runner.execute_point`
kernel as the serial and local-pool backends, and publishes an
integrity-checked result message per job.  Any number of workers — on
this host or, with the broker directory on a shared filesystem, on many
hosts — drain one queue; the scheduler side is
:class:`~repro.experiments.backends.QueueBackend`.

Per job the worker:

* decodes the shipped points (and the serialized
  :class:`~repro.pipeline.trace.CommittedTrace` sidecar, when the
  scheduler recorded one — ``redirect`` points then replay the parent's
  single functional run instead of re-interpreting the program);
* ticks the broker after every completed point (which also renews the
  job lease, so a long batch never spuriously expires while it makes
  progress);
* isolates failures per point: a bad point yields an ``("error", ...)``
  entry, its siblings' results still ship.

A worker that dies mid-batch simply stops heartbeating; the scheduler
requeues the job after ``lease_timeout`` and another worker picks it
up.  **SIGTERM is graceful**: the worker finishes the point it is
executing, flushes its telemetry shard, hands the lease *back to the
queue* (so the next worker starts immediately instead of waiting out
the lease timeout) and exits 0 — no completed-point tick is ever lost.
Exit codes: 0 (idle-exit / ``--max-jobs`` / SIGTERM), 3 (injected
crash).

Fault injection (used by the test suite, harmless in production):

* ``--crash-after-points N`` — hard-exit (``os._exit``) after N
  completed points, *once per broker directory*: the first worker to
  claim the ``crash.marker`` sentinel crashes, respawned or sibling
  workers proceed normally, making kill-mid-batch tests deterministic;
* ``--corrupt-results N`` — deliberately corrupt the first N result
  messages this process publishes (the scheduler must detect the
  checksum failure and requeue, never deliver them);
* ``REPRO_FAULTS=<seed>:<profile>`` (:mod:`repro.faults.injector`) —
  the seeded chaos schedule: slow-point delays and schedule-driven
  crashes inject here; heartbeat stalls and transient broker I/O
  errors inject inside the broker calls this module makes.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
import traceback

from repro import obs
from repro.experiments.backends import _maybe_prelower, point_meta
from repro.experiments.broker import FileBroker, LeasedJob
from repro.experiments.plan import ExperimentPoint
from repro.experiments.runner import execute_point
from repro.experiments.tracing import SharedTraces
from repro.faults.injector import active as _faults_active
from repro.faults.policy import point_deadline
from repro.pipeline.kernel import LOWER_TICK
from repro.pipeline.trace import CommittedTrace

#: kernel_source aggregation: a job reports the "best" path any of its
#: points took (mirrors trace_source, which likewise summarizes per job).
_KERNEL_SOURCE_RANK = {"live": 0, "interpreted": 1, "kernel": 2,
                       "specialized": 3}


def _describe_exception(exc: Exception) -> dict:
    """JSON-safe remote-error shape (rebuilt as RemotePointError)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _claim_crash_marker(broker: FileBroker) -> bool:
    """One-shot crash token: only the first claimant may crash."""
    try:
        fd = os.open(broker.directory / "crash.marker",
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return False
    os.close(fd)
    return True


class _WorkerState:
    def __init__(self, args: argparse.Namespace) -> None:
        self.args = args
        self.completed_points = 0
        self.corrupt_budget = args.corrupt_results
        self.jobs_done = 0
        self.stop = False  # set by the SIGTERM handler


def _run_job(broker: FileBroker, leased: LeasedJob,
             state: _WorkerState) -> None:
    job_id = leased.job_id
    if leased.message is None:
        # The stored job file itself failed to decode; report that so
        # the scheduler retries from its pristine copy.
        broker.complete(job_id, {
            "job_id": job_id,
            "malformed_job": f"job message undecodable: {leased.error}",
        })
        return
    payload = leased.message.payload
    try:
        points = [ExperimentPoint.from_dict(entry)
                  for entry in payload["points"]]
        trace = None
        if leased.message.blob:
            trace = CommittedTrace.from_bytes(leased.message.blob)
    except Exception as exc:  # noqa: BLE001 - includes TraceError
        broker.complete(job_id, {
            "job_id": job_id,
            "malformed_job": f"{type(exc).__name__}: {exc}",
        })
        return

    # Join the scheduler's telemetry run, if the job carries one: the
    # shard stream lives under the broker directory (the only filesystem
    # guaranteed shared); the scheduler adopts it before broker teardown.
    # A crash mid-batch (os._exit included) leaves the per-line-flushed
    # stream readable, its unclosed batch span marking where we died.
    obs_ctx = payload.get("obs")
    shard = None
    if isinstance(obs_ctx, dict) and obs_ctx.get("run"):
        shard = obs.worker_shard(
            obs_ctx,
            shard_dir=broker.directory / "obs" / str(obs_ctx["run"]))

    trace_source = "shipped" if trace is not None else "live"
    kernel_source = "live"
    lower_ticked = False
    shared = SharedTraces(points) if trace is None else None
    entries: list[list] = []
    with obs.activate(shard):
        with obs.span(payload.get("batch_id") or job_id, kind="batch",
                      attrs={"batch_id": payload.get("batch_id"),
                             "job": job_id,
                             "attempt": payload.get("attempt"),
                             "points": len(points),
                             "worker": os.getpid()}):
            injector = _faults_active()
            for index, point in enumerate(points):
                if state.stop:
                    # SIGTERM between points: the completed points'
                    # ticks are already on disk; hand the lease back so
                    # the next worker re-runs the batch immediately
                    # instead of waiting out the lease timeout.
                    if broker.release(job_id):
                        obs.emit("released", kind="worker", attrs={
                            "job": job_id, "completed_points": index})
                        if shard is not None:
                            shard.snapshot_event()
                        return
                    # The lease is no longer ours (expired + requeued);
                    # finishing and completing is still correct — the
                    # scheduler dedupes duplicate results.
                if trace is not None:
                    point_trace = trace \
                        if point.speculation == "redirect" else None
                else:
                    point_trace = shared.get(point)
                    if point_trace is not None:
                        trace_source = "local"
                if not lower_ticked and _maybe_prelower(point, point_trace):
                    # Shipped traces are lowered locally, once per job;
                    # the pseudo-tick shows up scheduler-side as a
                    # "lower" phase (and renews the lease like any other
                    # tick).
                    lower_ticked = True
                    broker.tick(job_id, LOWER_TICK)
                if injector is not None:
                    delay = injector.slow_delay("worker.point")
                    if delay > 0.0:
                        time.sleep(delay)
                info: dict = {}
                started = time.perf_counter()
                try:
                    with point_deadline():
                        result = execute_point(point, trace=point_trace,
                                               info=info)
                except Exception as exc:  # noqa: BLE001 - per point
                    entries.append(["error", _describe_exception(exc)])
                    continue
                point_source = info.get("kernel_source", "live")
                if (_KERNEL_SOURCE_RANK.get(point_source, 0)
                        > _KERNEL_SOURCE_RANK[kernel_source]):
                    kernel_source = point_source
                entries.append(["ok", result.to_dict(),
                                point_meta(info, point_trace,
                                           shipped=trace is not None)])
                broker.tick(job_id, index,
                            time.perf_counter() - started)
                state.completed_points += 1
                if (state.args.crash_after_points is not None
                        and state.completed_points
                        >= state.args.crash_after_points
                        and _claim_crash_marker(broker)):
                    os._exit(3)  # injected crash: lease left to expire
                if injector is not None:
                    # Seeded schedule-driven crash (REPRO_FAULTS): same
                    # one-per-broker-dir semantics, marker owned by the
                    # injector.
                    injector.maybe_crash(broker.directory)
            obs.emit("sources", kind="worker", attrs={
                "trace_source": trace_source,
                "kernel_source": kernel_source})
        if shard is not None:
            shard.snapshot_event()

    result_payload = {
        "job_id": job_id,
        "batch_id": payload.get("batch_id"),
        "attempt": payload.get("attempt"),
        "entries": entries,
        "trace_source": trace_source,
        "kernel_source": kernel_source,
        "worker": f"{os.getpid()}",
    }
    if state.corrupt_budget > 0:
        state.corrupt_budget -= 1
        from repro.experiments.broker import encode_message

        data = bytearray(encode_message("result", result_payload))
        data[len(data) // 2] ^= 0xFF  # injected payload corruption
        broker.complete(job_id, {}, raw=bytes(data))
    else:
        broker.complete(job_id, result_payload)


def _record_worker_error(broker: FileBroker, leased: LeasedJob,
                         exc: BaseException) -> None:
    """Append one structured crash line to ``<broker>/obs/worker-errors``.

    The scheduler's crash-loop diagnostics (and ``python -m repro.obs``
    users pointed at a preserved broker directory) attribute worker
    deaths to specific batches from these lines; the raw stdout/stderr
    log remains the fallback.  Best-effort: recording must never mask
    the original failure.
    """
    from repro.obs.ledger import append_jsonl

    payload = leased.message.payload if leased.message is not None else {}
    try:
        append_jsonl(broker.directory / "obs" / "worker-errors.jsonl", {
            "ts": time.time(),
            "worker": os.getpid(),
            "job": leased.job_id,
            "batch": payload.get("batch_id"),
            "attempt": payload.get("attempt"),
            "lease": str(broker.leased_dir / f"{leased.job_id}.msg"),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        })
    except Exception:  # noqa: BLE001 - diagnostics only
        pass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="Queue worker for the distributed experiment backend")
    parser.add_argument("--broker", required=True,
                        help="broker directory (shared with the scheduler)")
    parser.add_argument("--poll", type=float, default=0.05,
                        help="seconds between lease attempts when idle")
    parser.add_argument("--idle-exit", type=float, default=None,
                        help="exit 0 after this many consecutive idle "
                             "seconds (default: run forever)")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit 0 after completing this many jobs")
    parser.add_argument("--crash-after-points", type=int, default=None,
                        help="fault injection: hard-exit after N completed "
                             "points (once per broker directory)")
    parser.add_argument("--corrupt-results", type=int, default=0,
                        help="fault injection: corrupt the first N result "
                             "messages this worker publishes")
    args = parser.parse_args(argv)

    broker = FileBroker(args.broker)
    state = _WorkerState(args)
    # Graceful SIGTERM: finish the in-flight point, release the lease,
    # exit 0.  Signal handlers only install on the main thread (tests
    # drive main() from helper threads; subprocess workers are always
    # main-thread).
    previous_handler = None
    if threading.current_thread() is threading.main_thread():
        def _graceful(_signum, _frame) -> None:
            state.stop = True
        previous_handler = signal.signal(signal.SIGTERM, _graceful)
    try:
        idle_since = time.monotonic()
        while True:
            if state.stop:
                return 0
            leased = broker.lease()
            if leased is None:
                if (args.idle_exit is not None
                        and time.monotonic() - idle_since
                        >= args.idle_exit):
                    return 0
                time.sleep(args.poll)
                continue
            try:
                _run_job(broker, leased, state)
            except Exception as exc:  # noqa: BLE001 - recorded, then fatal
                _record_worker_error(broker, leased, exc)
                raise
            if state.stop:
                return 0
            state.jobs_done += 1
            idle_since = time.monotonic()
            if args.max_jobs is not None \
                    and state.jobs_done >= args.max_jobs:
                return 0
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)


if __name__ == "__main__":
    sys.exit(main())
