"""Static baseline predictors (sanity anchors for tests and ablations)."""

from __future__ import annotations

from repro.predictors.base import BranchPredictor


class AlwaysTaken(BranchPredictor):
    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysNotTaken(BranchPredictor):
    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class BackwardTaken(BranchPredictor):
    """BTFN heuristic: backward branches (targets below PC) predict taken.

    Needs the branch target, so it keeps a small learned table of branch
    directions observed at decode: the engine supplies ``set_target``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._backward: dict[int, bool] = {}

    def set_target(self, pc: int, target: int) -> None:
        self._backward[pc] = target <= pc

    def predict(self, pc: int) -> bool:
        return self._backward.get(pc, False)

    def update(self, pc: int, taken: bool) -> None:
        pass
