"""Bimodal predictor: per-PC 2-bit saturating counters."""

from __future__ import annotations

from repro.predictors.base import BranchPredictor, SaturatingCounterTable


class BimodalPredictor(BranchPredictor):
    """Classic Smith predictor; also the BIM bank inside 2Bc-gskew."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        super().__init__()
        self.table = SaturatingCounterTable(entries, counter_bits)

    def predict(self, pc: int) -> bool:
        return self.table.is_high(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.nudge(pc, taken)

    @property
    def storage_bits(self) -> int:
        return self.table.storage_bits
