"""Oracle predictor: always right.  Upper-bounds IPC in ablations."""

from __future__ import annotations

from repro.predictors.base import BranchPredictor


class PerfectPredictor(BranchPredictor):
    """The engine feeds the actual outcome through ``set_outcome``."""

    def __init__(self) -> None:
        super().__init__()
        self._next_outcome = False

    def set_outcome(self, taken: bool) -> None:
        self._next_outcome = taken

    def predict(self, pc: int) -> bool:
        return self._next_outcome

    def update(self, pc: int, taken: bool) -> None:
        pass
