"""Return address stack.

The engine models ``jr $ra`` returns as perfectly predicted (DESIGN.md §2)
so conditional branches remain the study, but the structure is implemented
and tested — it reports how often a real RAS would have been wrong, which
the engine surfaces as a statistic.
"""

from __future__ import annotations


class ReturnAddressStack:
    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.correct_pops = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        self.pushes += 1
        if len(self._stack) >= self.depth:
            # Circular overwrite: the oldest entry is lost.
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_pc)

    def pop(self, actual_target: int) -> bool:
        """Pop a predicted return target; returns True if it matched."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return False
        predicted = self._stack.pop()
        correct = predicted == actual_target
        if correct:
            self.correct_pops += 1
        return correct

    @property
    def accuracy(self) -> float:
        return self.correct_pops / self.pops if self.pops else 1.0
