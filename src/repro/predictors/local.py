"""Two-level local-history predictor (Yeh & Patt [36], PAg-style).

A per-branch history table records each branch's own recent outcomes; the
pattern indexes a shared table of 2-bit counters.  Local history captures
per-branch periodic patterns (short loops) that global history dilutes —
one of the classic alternatives the paper's related-work section cites.
"""

from __future__ import annotations

from repro.predictors.base import BranchPredictor, SaturatingCounterTable


class LocalHistoryPredictor(BranchPredictor):
    def __init__(self, history_entries: int = 1024,
                 history_bits: int = 10,
                 pattern_entries: int | None = None) -> None:
        super().__init__()
        if history_bits < 1:
            raise ValueError("history_bits must be positive")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * history_entries
        self.patterns = SaturatingCounterTable(
            pattern_entries or (1 << history_bits), 2)

    def _history_of(self, pc: int) -> int:
        return self._histories[pc % self.history_entries]

    def predict(self, pc: int) -> bool:
        return self.patterns.is_high(self._history_of(pc))

    def update(self, pc: int, taken: bool) -> None:
        slot = pc % self.history_entries
        pattern = self._histories[slot]
        self.patterns.nudge(pattern, taken)
        self._histories[slot] = ((pattern << 1) | int(taken)) \
            & self._history_mask

    def history_state(self) -> tuple[int, ...]:
        return tuple(self._histories)

    def restore_history(self, state) -> None:
        self._histories = list(state)

    def speculate(self, pc: int, taken: bool) -> None:
        slot = pc % self.history_entries
        self._histories[slot] = ((self._histories[slot] << 1) | int(taken)) \
            & self._history_mask

    @property
    def storage_bits(self) -> int:
        return (self.history_entries * self.history_bits
                + self.patterns.storage_bits)
