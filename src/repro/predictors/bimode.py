"""Bi-Mode predictor (Lee, Chen & Mudge [21]).

Destructive aliasing in a shared counter table mixes branches of opposite
bias.  Bi-Mode splits the pattern table into a taken-leaning and a
not-taken-leaning half, both indexed by PC XOR global history; a bimodal
*choice* table indexed by PC alone selects which direction table to
believe.  Only the selected direction table is updated (plus the choice
table, except when it disagreed but the outcome matched the selection) —
the partial update rule from the paper.
"""

from __future__ import annotations

from repro.predictors.base import (
    BranchPredictor,
    GlobalHistory,
    SaturatingCounterTable,
)


class BiModePredictor(BranchPredictor):
    def __init__(self, direction_entries: int = 4096,
                 choice_entries: int = 4096,
                 history_bits: int | None = None) -> None:
        super().__init__()
        index_bits = direction_entries.bit_length() - 1
        if 1 << index_bits != direction_entries:
            raise ValueError("direction_entries must be a power of two")
        self.index_bits = index_bits
        self.taken_table = SaturatingCounterTable(direction_entries, 2,
                                                  initial=2)
        self.not_taken_table = SaturatingCounterTable(direction_entries, 2,
                                                      initial=1)
        self.choice = SaturatingCounterTable(choice_entries, 2)
        self.history = GlobalHistory(history_bits or index_bits)

    def _direction_index(self, pc: int) -> int:
        return (pc ^ self.history.low(self.index_bits)) \
            % self.taken_table.entries

    def _components(self, pc: int) -> tuple[bool, int, bool]:
        """(choice-says-taken-table, direction index, prediction)."""
        use_taken_table = self.choice.is_high(pc)
        index = self._direction_index(pc)
        table = self.taken_table if use_taken_table else self.not_taken_table
        return use_taken_table, index, table.is_high(index)

    def predict(self, pc: int) -> bool:
        return self._components(pc)[2]

    def update(self, pc: int, taken: bool) -> None:
        use_taken_table, index, prediction = self._components(pc)
        # Partial update: the unselected direction table is never touched.
        table = self.taken_table if use_taken_table else self.not_taken_table
        table.nudge(index, taken)
        # Choice table: update toward the outcome unless it disagreed with
        # the outcome while the selected table still predicted correctly.
        if not (prediction == taken and use_taken_table != taken):
            self.choice.nudge(pc, taken)
        self.history.push(taken)

    def history_state(self) -> int:
        return self.history.value

    def restore_history(self, state: int) -> None:
        self.history.value = state

    def speculate(self, pc: int, taken: bool) -> None:
        self.history.push(taken)

    @property
    def storage_bits(self) -> int:
        return (self.taken_table.storage_bits
                + self.not_taken_table.storage_bits
                + self.choice.storage_bits + self.history.bits)
