"""Branch predictor interfaces and shared building blocks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass
class PredictorStats:
    predictions: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    @property
    def mispredictions(self) -> int:
        return self.predictions - self.correct

    def record(self, was_correct: bool) -> None:
        self.predictions += 1
        if was_correct:
            self.correct += 1


class BranchPredictor(ABC):
    """Direction predictor for conditional branches.

    The timing engine calls :meth:`predict` at fetch and :meth:`update`
    with the resolved outcome in commit order.  History-based predictors
    maintain their global history inside :meth:`update`; in the engine's
    ``redirect`` speculation mode only correct-path instructions are
    materialized, which corresponds to speculative history with perfect
    repair (DESIGN.md §2.6).  In ``wrongpath`` mode the repair is explicit
    checkpoint hardware: the engine snapshots history via
    :meth:`history_state` at a mispredicted branch, lets wrong-path
    branches corrupt it through :meth:`speculate`, and restores it with
    :meth:`restore_history` when the branch resolves.
    """

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""

    def record_outcome(self, predicted: bool, taken: bool) -> None:
        self.stats.record(predicted == taken)

    # -- speculative history (wrong-path modelling) ---------------------------

    def history_state(self):
        """Opaque checkpoint of speculative history (None if stateless)."""
        return None

    def restore_history(self, state) -> None:
        """Restore a :meth:`history_state` checkpoint; default no-op."""

    def speculate(self, pc: int, taken: bool) -> None:
        """Speculatively shift a *predicted* outcome into the history.

        Called for wrong-path branches only; counters never train here
        (they train at commit, which wrong-path instructions never
        reach).  Default no-op for history-less predictors.
        """

    @property
    def storage_bits(self) -> int:
        """Hardware budget; subclasses override."""
        return 0


class SaturatingCounterTable:
    """A table of n-bit saturating up/down counters."""

    def __init__(self, entries: int, bits: int = 2,
                 initial: int | None = None) -> None:
        if entries < 1 or bits < 1:
            raise ValueError("entries and bits must be positive")
        self.entries = entries
        self.bits = bits
        self.maximum = (1 << bits) - 1
        self._half = (self.maximum + 1) // 2
        start = initial if initial is not None else 1 << (bits - 1)
        self._counters = [start] * entries

    def __getitem__(self, index: int) -> int:
        return self._counters[index % self.entries]

    def is_high(self, index: int) -> bool:
        """Counter in the upper half (predict taken)."""
        return self._counters[index % self.entries] >= self._half

    def nudge(self, index: int, up: bool) -> None:
        slot = index % self.entries
        value = self._counters[slot]
        if up:
            if value < self.maximum:
                self._counters[slot] = value + 1
        elif value > 0:
            self._counters[slot] = value - 1

    def reset(self, index: int, value: int = 0) -> None:
        self._counters[index % self.entries] = value

    @property
    def storage_bits(self) -> int:
        return self.entries * self.bits


class GlobalHistory:
    """Global branch-outcome shift register."""

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("history bits must be positive")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.value = 0

    def push(self, taken: bool) -> None:
        self.value = ((self.value << 1) | int(taken)) & self._mask

    def low(self, bits: int) -> int:
        return self.value & ((1 << bits) - 1)
