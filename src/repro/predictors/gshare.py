"""Gshare predictor: PC XOR global history into 2-bit counters."""

from __future__ import annotations

from repro.predictors.base import (
    BranchPredictor,
    GlobalHistory,
    SaturatingCounterTable,
)


class GsharePredictor(BranchPredictor):
    def __init__(self, entries: int = 4096,
                 history_bits: int | None = None) -> None:
        super().__init__()
        index_bits = entries.bit_length() - 1
        if 1 << index_bits != entries:
            raise ValueError("entries must be a power of two")
        self.index_bits = index_bits
        self.table = SaturatingCounterTable(entries, 2)
        self.history = GlobalHistory(history_bits or index_bits)

    def _index(self, pc: int) -> int:
        return (pc ^ self.history.low(self.index_bits)) % self.table.entries

    def predict(self, pc: int) -> bool:
        return self.table.is_high(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.nudge(self._index(pc), taken)
        self.history.push(taken)

    def history_state(self) -> int:
        return self.history.value

    def restore_history(self, state: int) -> None:
        self.history.value = state

    def speculate(self, pc: int, taken: bool) -> None:
        self.history.push(taken)

    @property
    def storage_bits(self) -> int:
        return self.table.storage_bits + self.history.bits
