"""2Bc-gskew hybrid predictor (Seznec et al., the Alpha EV8 design [26]).

Four banks of 2-bit counters:

* **BIM** — bimodal, indexed by PC;
* **G0 / G1** — gskew banks indexed by *different* hashes of (PC, global
  history), G1 with a longer history than G0;
* **META** — chooses between the bimodal prediction and the e-gskew
  majority vote of (BIM, G0, G1).

The partial update rule follows the EV8 paper: on a correct prediction
only the banks that contributed are strengthened; on a misprediction all
three direction banks train toward the outcome.  META trains only when
the bimodal and e-gskew predictions disagree.

The paper instantiates this twice: a 4 KB level-1 (1 KB per bank, single
cycle) and a 32 KB level-2 (8 KB per bank, multi-cycle).
"""

from __future__ import annotations

from repro.predictors.base import (
    BranchPredictor,
    GlobalHistory,
    SaturatingCounterTable,
)

_HISTORY_REG_BITS = 32


def _rotate(value: int, amount: int, bits: int) -> int:
    amount %= bits
    mask = (1 << bits) - 1
    return ((value << amount) | (value >> (bits - amount))) & mask


class TwoBcGskew(BranchPredictor):
    """The 2Bc-gskew hybrid; ``bank_entries`` counters per bank."""

    def __init__(self, bank_entries: int = 4096,
                 g0_history: int | None = None,
                 g1_history: int | None = None) -> None:
        super().__init__()
        index_bits = bank_entries.bit_length() - 1
        if 1 << index_bits != bank_entries:
            raise ValueError("bank_entries must be a power of two")
        self.index_bits = index_bits
        self.bank_entries = bank_entries
        self.bim = SaturatingCounterTable(bank_entries, 2)
        self.g0 = SaturatingCounterTable(bank_entries, 2)
        self.g1 = SaturatingCounterTable(bank_entries, 2)
        self.meta = SaturatingCounterTable(bank_entries, 2)
        self.g0_history = g0_history if g0_history is not None else max(
            1, index_bits - 4)
        self.g1_history = g1_history if g1_history is not None else min(
            _HISTORY_REG_BITS, index_bits + 4)
        self.history = GlobalHistory(_HISTORY_REG_BITS)
        # Precomputed index-hash constants (the hot path computes these
        # four indices twice per branch: once to predict, once to train).
        self._index_mask = (1 << index_bits) - 1
        self._g0_hist_mask = (1 << self.g0_history) - 1
        self._g1_hist_mask = (1 << self.g1_history) - 1
        # Memoized indices for the predict->train pair: the engine trains
        # each branch with the same (pc, history) it predicted with, so
        # the second computation is a pure replay.
        self._indices_key: tuple[int, int] | None = None
        self._indices_value: tuple[int, int, int, int] = (0, 0, 0, 0)

    # -- indexing -------------------------------------------------------------

    def _skew_index(self, pc: int, hist_mask: int, variant: int) -> int:
        """Per-bank skewing hash over (PC, history & hist_mask)."""
        bits = self.index_bits
        mask = self._index_mask
        folded = self.history.value & hist_mask
        while folded >> bits:
            folded = (folded & mask) ^ (folded >> bits)
        skew = _rotate(folded, variant * 3 + 1, bits)
        return (pc ^ skew ^ (pc >> (bits - variant))) & mask

    def _indices(self, pc: int) -> tuple[int, int, int, int]:
        hist = self.history.value
        key = (pc, hist)
        if key == self._indices_key:
            return self._indices_value
        mask = self._index_mask
        value = (
            pc & mask,
            self._skew_index(pc, self._g0_hist_mask, 1),
            self._skew_index(pc, self._g1_hist_mask, 2),
            (pc ^ ((hist & self._g0_hist_mask) << 1)) & mask,
        )
        self._indices_key = key
        self._indices_value = value
        return value

    # -- prediction -------------------------------------------------------------

    def component_predictions(self, pc: int) -> tuple[bool, bool, bool, bool]:
        """(bimodal, e-gskew majority, meta-prefers-eskew, final)."""
        bim_idx, g0_idx, g1_idx, meta_idx = self._indices(pc)
        bim = self.bim.is_high(bim_idx)
        g0 = self.g0.is_high(g0_idx)
        g1 = self.g1.is_high(g1_idx)
        eskew = (bim + g0 + g1) >= 2
        use_eskew = self.meta.is_high(meta_idx)
        final = eskew if use_eskew else bim
        return bim, eskew, use_eskew, final

    def predict(self, pc: int) -> bool:
        return self.component_predictions(pc)[3]

    # -- update --------------------------------------------------------------------

    def update(self, pc: int, taken: bool) -> None:
        bim_idx, g0_idx, g1_idx, meta_idx = self._indices(pc)
        bim = self.bim.is_high(bim_idx)
        g0 = self.g0.is_high(g0_idx)
        g1 = self.g1.is_high(g1_idx)
        eskew = (bim + g0 + g1) >= 2
        use_eskew = self.meta.is_high(meta_idx)
        final = eskew if use_eskew else bim

        if bim != eskew:
            # META trains toward whichever component was right.
            self.meta.nudge(meta_idx, eskew == taken)

        if final == taken:
            if use_eskew:
                # Partial update: strengthen only agreeing banks.
                if bim == taken:
                    self.bim.nudge(bim_idx, taken)
                if g0 == taken:
                    self.g0.nudge(g0_idx, taken)
                if g1 == taken:
                    self.g1.nudge(g1_idx, taken)
            else:
                self.bim.nudge(bim_idx, taken)
        else:
            # Misprediction: retrain all direction banks.
            self.bim.nudge(bim_idx, taken)
            self.g0.nudge(g0_idx, taken)
            self.g1.nudge(g1_idx, taken)

        self.history.push(taken)

    # -- speculative history (wrong-path modelling) ---------------------------

    def history_state(self) -> int:
        return self.history.value

    def restore_history(self, state: int) -> None:
        self.history.value = state

    def speculate(self, pc: int, taken: bool) -> None:
        self.history.push(taken)

    @property
    def storage_bits(self) -> int:
        return (self.bim.storage_bits + self.g0.storage_bits
                + self.g1.storage_bits + self.meta.storage_bits
                + self.history.bits)


def level1_gskew() -> TwoBcGskew:
    """The paper's 4 KB level-1 predictor (1 KB = 4096 counters per bank)."""
    return TwoBcGskew(bank_entries=4096)


def level2_gskew() -> TwoBcGskew:
    """The paper's 32 KB level-2 hybrid (8 KB = 32768 counters per bank)."""
    return TwoBcGskew(bank_entries=32768)
