"""JRS-style resetting-counter confidence estimator.

Used by the two-level ARVI configuration (paper Section 5): the level-1
hybrid handles easy, highly biased branches; when the estimator reports
low confidence in the level-1 prediction, the branch is deemed difficult
and ARVI's prediction is used instead (when the BVIT hits).

Each entry is a miss-distance counter indexed by PC XOR global history: a
correct level-1 prediction increments it, a misprediction clears it.  The
branch is *confident* when the counter reaches the threshold.
"""

from __future__ import annotations

from repro.predictors.base import GlobalHistory, SaturatingCounterTable


class ConfidenceEstimator:
    def __init__(self, entries: int = 4096, counter_bits: int = 4,
                 threshold: int = 14, history_bits: int = 8) -> None:
        if threshold > (1 << counter_bits) - 1:
            raise ValueError("threshold exceeds counter range")
        self.table = SaturatingCounterTable(entries, counter_bits, initial=0)
        self.threshold = threshold
        self.history = GlobalHistory(history_bits)
        self.queries = 0
        self.confident_queries = 0

    def _index(self, pc: int) -> int:
        return pc ^ self.history.value

    def is_confident(self, pc: int) -> bool:
        """Is the level-1 prediction for this branch trustworthy?"""
        self.queries += 1
        confident = self.table[self._index(pc)] >= self.threshold
        if confident:
            self.confident_queries += 1
        return confident

    def update(self, pc: int, level1_correct: bool, taken: bool) -> None:
        index = self._index(pc)
        if level1_correct:
            self.table.nudge(index, up=True)
        else:
            self.table.reset(index)
        self.history.push(taken)

    def history_state(self) -> int:
        """Checkpoint of the history register (branch-recovery support)."""
        return self.history.value

    def restore_history(self, state: int) -> None:
        self.history.value = state

    @property
    def storage_bits(self) -> int:
        return self.table.storage_bits + self.history.bits
