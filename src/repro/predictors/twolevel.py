"""Two-level overriding predictor composite (paper Section 5).

In every configuration a fast (1-cycle) 4 KB 2Bc-gskew level-1 predictor
steers fetch immediately.  A larger level-2 predictor delivers its
prediction ``latency`` cycles later:

* **hybrid L2** — a 32 KB 2Bc-gskew; if it disagrees with level 1 its
  prediction is used (fetch restarts from the branch: an override bubble);
* **ARVI L2** — the level-1 prediction stands unless the confidence
  estimator marks the branch difficult *and* the BVIT hits, in which case
  ARVI's prediction is used.

The timing consequences (override bubbles, full mispredict redirects) are
applied by the engine; this module owns the decision and training logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.arvi import ARVIPrediction, ARVIPredictor, ARVIRequest
from repro.predictors.base import BranchPredictor
from repro.predictors.confidence import ConfidenceEstimator


class LevelTwoKind(enum.Enum):
    NONE = "none"           # single-level (ablation)
    HYBRID = "hybrid"       # 32 KB 2Bc-gskew
    ARVI = "arvi"           # ARVI over the DDT/RSE


@dataclass(slots=True)
class TwoLevelDecision:
    """Outcome of the level-1 + level-2 interplay for one branch."""

    l1_pred: bool
    l2_pred: bool | None
    final_pred: bool
    used_l2: bool            # level-2 prediction was selected
    override: bool           # ...and it differed from level 1 (fetch bubble)
    confident: bool | None   # confidence verdict (ARVI configurations)
    arvi: ARVIPrediction | None


@dataclass
class TwoLevelStats:
    branches: int = 0
    l1_correct: int = 0
    final_correct: int = 0
    overrides: int = 0
    overrides_helpful: int = 0   # override turned a wrong L1 into a right final
    overrides_harmful: int = 0   # override broke a correct L1 prediction

    @property
    def l1_accuracy(self) -> float:
        return self.l1_correct / self.branches if self.branches else 0.0

    @property
    def final_accuracy(self) -> float:
        return self.final_correct / self.branches if self.branches else 0.0


class TwoLevelPredictor:
    """Composite of level-1 gskew + (hybrid | ARVI | nothing) level 2."""

    def __init__(self, level1: BranchPredictor, kind: LevelTwoKind,
                 *, level2_hybrid: BranchPredictor | None = None,
                 arvi: ARVIPredictor | None = None,
                 confidence: ConfidenceEstimator | None = None,
                 latency: int = 0) -> None:
        self.level1 = level1
        self.kind = kind
        self.level2_hybrid = level2_hybrid
        self.arvi = arvi
        self.confidence = confidence
        self.latency = latency
        self.stats = TwoLevelStats()
        if kind is LevelTwoKind.HYBRID and level2_hybrid is None:
            raise ValueError("hybrid level 2 requires a level2_hybrid predictor")
        if kind is LevelTwoKind.ARVI and (arvi is None or confidence is None):
            raise ValueError("ARVI level 2 requires arvi and confidence")

    # -- decision ----------------------------------------------------------------

    def decide(self, pc: int,
               arvi_request: ARVIRequest | None = None) -> TwoLevelDecision:
        l1_pred = self.level1.predict(pc)

        if self.kind is LevelTwoKind.NONE:
            return TwoLevelDecision(
                l1_pred=l1_pred, l2_pred=None, final_pred=l1_pred,
                used_l2=False, override=False, confident=None, arvi=None)

        if self.kind is LevelTwoKind.HYBRID:
            l2_pred = self.level2_hybrid.predict(pc)
            used = l2_pred != l1_pred
            return TwoLevelDecision(
                l1_pred=l1_pred, l2_pred=l2_pred,
                final_pred=l2_pred if used else l1_pred,
                used_l2=used, override=used, confident=None, arvi=None)

        # ARVI level 2.
        if arvi_request is None:
            raise ValueError("ARVI decision requires an ARVIRequest")
        confident = self.confidence.is_confident(pc)
        prediction = self.arvi.predict(arvi_request)
        use_arvi = (not confident) and prediction.hit
        final = prediction.taken if use_arvi else l1_pred
        return TwoLevelDecision(
            l1_pred=l1_pred, l2_pred=prediction.taken, final_pred=final,
            used_l2=use_arvi, override=use_arvi and final != l1_pred,
            confident=confident, arvi=prediction)

    # -- speculative history (wrong-path modelling) -------------------------------

    def history_state(self) -> tuple:
        """Checkpoint every component's speculative history."""
        return (
            self.level1.history_state(),
            self.level2_hybrid.history_state()
            if self.level2_hybrid is not None else None,
            self.confidence.history_state()
            if self.confidence is not None else None,
        )

    def restore_history(self, state: tuple) -> None:
        l1_state, l2_state, conf_state = state
        self.level1.restore_history(l1_state)
        if self.level2_hybrid is not None:
            self.level2_hybrid.restore_history(l2_state)
        if self.confidence is not None:
            self.confidence.restore_history(conf_state)

    def speculate(self, pc: int, taken: bool) -> None:
        """Shift a wrong-path branch's predicted outcome into histories.

        Repaired by :meth:`restore_history` at branch resolution — the
        explicit checkpoint repair replacing the §2.6 idealization.
        """
        self.level1.speculate(pc, taken)
        if self.level2_hybrid is not None:
            self.level2_hybrid.speculate(pc, taken)

    # -- training ----------------------------------------------------------------

    def train(self, pc: int, decision: TwoLevelDecision, taken: bool) -> None:
        """Commit-order training of every component, plus bookkeeping."""
        stats = self.stats
        stats.branches += 1
        l1_correct = decision.l1_pred == taken
        final_correct = decision.final_pred == taken
        if l1_correct:
            stats.l1_correct += 1
        if final_correct:
            stats.final_correct += 1
        if decision.override:
            stats.overrides += 1
            if final_correct and not l1_correct:
                stats.overrides_helpful += 1
            elif l1_correct and not final_correct:
                stats.overrides_harmful += 1

        self.level1.update(pc, taken)
        self.level1.record_outcome(decision.l1_pred, taken)
        if self.kind is LevelTwoKind.HYBRID:
            self.level2_hybrid.update(pc, taken)
            self.level2_hybrid.record_outcome(decision.l2_pred, taken)
        elif self.kind is LevelTwoKind.ARVI:
            self.confidence.update(pc, l1_correct, taken)
            self.arvi.update(decision.arvi, taken,
                             hard_branch=not decision.confident)
