"""Branch predictors: baselines, the 2Bc-gskew hybrid, and composites."""

from repro.predictors.base import (
    BranchPredictor,
    GlobalHistory,
    PredictorStats,
    SaturatingCounterTable,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.gshare import GsharePredictor
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.gskew import TwoBcGskew, level1_gskew, level2_gskew
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.statics import AlwaysNotTaken, AlwaysTaken, BackwardTaken
from repro.predictors.twolevel import (
    LevelTwoKind,
    TwoLevelDecision,
    TwoLevelPredictor,
    TwoLevelStats,
)

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BackwardTaken",
    "BiModePredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "ConfidenceEstimator",
    "GlobalHistory",
    "GsharePredictor",
    "LevelTwoKind",
    "LocalHistoryPredictor",
    "PerfectPredictor",
    "PredictorStats",
    "ReturnAddressStack",
    "SaturatingCounterTable",
    "TwoBcGskew",
    "TwoLevelDecision",
    "TwoLevelPredictor",
    "TwoLevelStats",
    "level1_gskew",
    "level2_gskew",
]
