"""The ARVI branch predictor (paper Section 4).

ARVI predicts a branch from **A**vailable **R**egister **V**alue
**I**nformation: the committed values of the leaf registers of the
branch's data dependence chain (from the DDT via the RSE), hashed with the
branch PC into the BVIT.  Two tags — the register-set id sum and the
chain-depth key — verify that a hit corresponds to a prior occurrence of
the same path with the same values.

ARVI itself is value-*mode* agnostic: the timing engine builds a
:class:`ARVIRequest` whose register views already reflect the evaluation
mode (``current value`` uses committed shadow values only; ``load back``
additionally exposes values of loads that could have been hoisted;
``perfect value`` exposes oracle values for every register).

A branch whose register set contains an unavailable (pending-load) leaf is
a **load branch**; when every leaf is available it is a **calculated
branch** whose input state precisely determines the outcome.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.bvit import BVIT
from repro.core.hashing import (
    DEFAULT_DEPTH_BITS,
    DEFAULT_ID_TAG_BITS,
    DEFAULT_INDEX_BITS,
    bvit_index,
    depth_key,
    register_set_tag,
)


class ValueMode(enum.Enum):
    """Paper Section 5: the three ARVI evaluation configurations."""

    CURRENT = "current value"
    LOAD_BACK = "load back"
    PERFECT = "perfect value"


@dataclass(frozen=True)
class ARVIConfig:
    sets: int = 2048
    ways: int = 4
    index_bits: int = DEFAULT_INDEX_BITS
    id_tag_bits: int = DEFAULT_ID_TAG_BITS
    depth_bits: int = DEFAULT_DEPTH_BITS
    value_bits: int = 11
    # Only allocate BVIT entries for low-confidence (difficult) branches,
    # implementing the paper's "L1 filters easy branches" resource policy.
    allocate_only_hard: bool = True
    # Ablation switches (DESIGN.md §5): disable either tag to measure its
    # contribution.
    use_id_tag: bool = True
    use_depth_tag: bool = True


@dataclass(slots=True)
class RegisterView:
    """One RSE-set register as seen at prediction time."""

    preg: int
    logical: int
    available: bool
    value: int  # low-order value bits; meaningful only when available


@dataclass(slots=True)
class ARVIRequest:
    """Everything ARVI needs for one prediction."""

    pc: int
    regset: list[RegisterView]
    branch_token: int
    oldest_chain_token: int | None


@dataclass(slots=True)
class ARVIPrediction:
    """Prediction plus the keys needed to train the same entry at commit."""

    taken: bool | None      # None on BVIT miss
    hit: bool
    is_load_branch: bool
    index: int
    id_tag: int
    depth_tag: int


@dataclass
class ARVIStats:
    predictions: int = 0
    hits: int = 0
    load_branches: int = 0
    calculated_branches: int = 0
    empty_sets: int = 0


class ARVIPredictor:
    """BVIT-backed value predictor over RSE register sets."""

    def __init__(self, config: ARVIConfig | None = None) -> None:
        self.config = config or ARVIConfig()
        if self.config.sets != 1 << self.config.index_bits:
            # Allow it, but the index will be folded by modulo.
            pass
        self.bvit = BVIT(self.config.sets, self.config.ways)
        self.stats = ARVIStats()

    # -- key formation --------------------------------------------------------

    def keys(self, request: ARVIRequest) -> tuple[int, int, int]:
        """(index, id_tag, depth_tag) for the request's register set."""
        config = self.config
        values = (view.value for view in request.regset if view.available)
        index = bvit_index(request.pc, values, config.index_bits)
        id_tag = (
            register_set_tag(
                (view.logical for view in request.regset),
                config.id_tag_bits,
            )
            if config.use_id_tag else 0
        )
        depth = (
            depth_key(request.branch_token, request.oldest_chain_token,
                      config.depth_bits)
            if config.use_depth_tag else 0
        )
        return index, id_tag, depth

    # -- predict / update ------------------------------------------------------

    def predict(self, request: ARVIRequest) -> ARVIPrediction:
        index, id_tag, depth_tag = self.keys(request)
        taken = self.bvit.lookup(index, id_tag, depth_tag)
        is_load_branch = any(not view.available for view in request.regset)
        stats = self.stats
        stats.predictions += 1
        if taken is not None:
            stats.hits += 1
        if is_load_branch:
            stats.load_branches += 1
        else:
            stats.calculated_branches += 1
        if not request.regset:
            stats.empty_sets += 1
        return ARVIPrediction(
            taken=taken,
            hit=taken is not None,
            is_load_branch=is_load_branch,
            index=index,
            id_tag=id_tag,
            depth_tag=depth_tag,
        )

    def update(self, prediction: ARVIPrediction, taken: bool,
               *, hard_branch: bool = True) -> None:
        """Train the BVIT with the branch outcome.

        ``hard_branch`` carries the confidence estimator's verdict from
        prediction time; with ``allocate_only_hard`` new entries are only
        created for branches the level-1 predictor finds difficult.
        """
        allocate = hard_branch or not self.config.allocate_only_hard
        self.bvit.update(prediction.index, prediction.id_tag,
                         prediction.depth_tag, taken, allocate=allocate)

    # -- sizing -----------------------------------------------------------------

    def storage_bits(self, ddt_bits: int = 0, shadow_bits: int = 0) -> int:
        """Total predictor budget including dependence-tracking hardware."""
        return self.bvit.storage_bits + ddt_bits + shadow_bits
