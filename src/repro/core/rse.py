"""The Register Set Extractor (paper Section 4.2, Figure 3).

Given the DDT dependence-chain bit vector of a branch, the RSE extracts
the minimal *leaf* register set that generates the compared value(s):

* every chain instruction (except loads) marks its source registers ``S``
  and its target register ``T`` in its column;
* enabling the chain's columns discharges per-register bit-lines; register
  ``r`` lands in the set iff some enabled instruction sourced it and no
  enabled instruction targeted it (``OUT = bit[0] & ~bit[1]`` — the paper's
  consolidation function);
* loads mark nothing: they terminate dependence chains, so a pending
  load's destination register stays in the set (it is a leaf whose value
  may be unavailable — the *load branch* case);
* the branch's own operand registers participate as sources, so a branch
  whose operand was produced by an already-committed instruction resolves
  to that operand register itself.

:class:`RSEArray` is the hardware-faithful bit-plane model driven by DDT
column indices; :class:`ChainInfoTable` is the token-keyed equivalent the
timing engine uses.  Their extractions agree (property-tested).
"""

from __future__ import annotations

from typing import Iterable


class RSEArray:
    """Bit-plane RSE paired with the hardware-faithful :class:`DDT`.

    Cells are addressed (register row, instruction-entry column) exactly
    like the DDT; two bit-planes hold the S and T marks.
    """

    def __init__(self, num_regs: int, num_entries: int) -> None:
        self.num_regs = num_regs
        self.num_entries = num_entries
        # s_marks[r] bit e => entry e uses register r as a source.
        self.s_marks = [0] * num_regs
        self.t_marks = [0] * num_regs

    def insert(self, entry: int, dest: int | None, srcs: Iterable[int],
               *, is_load: bool) -> None:
        """Mark S/T cells for the instruction placed in ``entry``.

        The column is cleared first (entry reuse mirrors the DDT).  Loads
        mark neither sources nor targets (chain terminators).
        """
        clear = ~(1 << entry)
        for reg in range(self.num_regs):
            self.s_marks[reg] &= clear
            self.t_marks[reg] &= clear
        if is_load:
            return
        bit = 1 << entry
        for src in srcs:
            self.s_marks[src] |= bit
        if dest is not None:
            self.t_marks[dest] |= bit

    def extract(self, enable_mask: int,
                branch_srcs: Iterable[int] = ()) -> set[int]:
        """Register set for a chain ``enable_mask`` (a DDT chain bitmask)."""
        result = set(branch_srcs)
        for reg in range(self.num_regs):
            if self.s_marks[reg] & enable_mask:
                result.add(reg)
        return {
            reg for reg in result
            if not self.t_marks[reg] & enable_mask
        }

    def cell(self, reg: int, entry: int) -> str:
        """Cell encoding for display/tests: 'S', 'T' or '' (unused)."""
        if self.t_marks[reg] >> entry & 1:
            return "T"
        if self.s_marks[reg] >> entry & 1:
            return "S"
        return ""

    @property
    def storage_bits(self) -> int:
        """Two bits per cell (paper: encodings Unused/Source/Target)."""
        return 2 * self.num_regs * self.num_entries


class ChainInfoTable:
    """Token-keyed chain metadata used by the engine with :class:`FastDDT`.

    Stores per-instruction ``(dest, srcs, is_load)`` and extracts the leaf
    register set for a set of enabled tokens with the same semantics as
    :class:`RSEArray`.
    """

    def __init__(self) -> None:
        self._info: dict[int, tuple[int | None, tuple[int, ...], bool]] = {}

    def __len__(self) -> int:
        return len(self._info)

    def insert(self, token: int, dest: int | None, srcs: Iterable[int],
               *, is_load: bool) -> None:
        self._info[token] = (dest, tuple(srcs), is_load)

    def discard(self, token: int) -> None:
        """Drop metadata for a committed or squashed instruction."""
        self._info.pop(token, None)

    def info(self, token: int) -> tuple[int | None, tuple[int, ...], bool]:
        return self._info[token]

    def extract(self, enabled_tokens: Iterable[int],
                branch_srcs: Iterable[int] = ()) -> set[int]:
        sources: set[int] = set(branch_srcs)
        targets: set[int] = set()
        info = self._info
        for token in enabled_tokens:
            dest, srcs, is_load = info[token]
            if is_load:
                continue
            sources.update(srcs)
            if dest is not None:
                targets.add(dest)
        return sources - targets
