"""ARVI hash units (paper Sections 4.3-4.5, Figure 4).

* :func:`bvit_index` — XOR tree over the low ``n`` bits of branch PC and
  the shadow values of the RSE register set (Figure 4a);
* :func:`register_set_tag` — 3-bit adder tree over the low bits of the
  *logical* register ids of the set (Figure 4b), the path signature;
* :func:`depth_key` — 5-bit maximum instruction span of the dependence
  chain (Section 4.5), disambiguating loop iterations whose register sets
  are identical.
"""

from __future__ import annotations

from typing import Iterable

PC_INDEX_LOW_BIT = 0  # instruction-index PCs: no byte-offset bits to skip
DEFAULT_INDEX_BITS = 11
DEFAULT_ID_TAG_BITS = 3
DEFAULT_DEPTH_BITS = 5


def bvit_index(pc: int, values: Iterable[int],
               index_bits: int = DEFAULT_INDEX_BITS) -> int:
    """XOR-fold the branch PC and register values into a BVIT index.

    ``values`` are the shadow (or oracle) values of the registers in the
    RSE set that are available at prediction time; the paper's hardware is
    an XOR tree that is log2(P) gates deep.
    """
    mask = (1 << index_bits) - 1
    index = (pc >> PC_INDEX_LOW_BIT) & mask
    for value in values:
        index ^= value & mask
    return index


def register_set_tag(logical_ids: Iterable[int],
                     tag_bits: int = DEFAULT_ID_TAG_BITS) -> int:
    """Sum of the low bits of the logical register ids, modulo 2**bits.

    A full concatenation of ids is impractical in hardware; the paper found
    a 3-bit sum of low-order logical ids sufficient as a path signature.
    """
    mask = (1 << tag_bits) - 1
    total = 0
    for logical in logical_ids:
        total += logical & mask
    return total & mask


def depth_key(branch_token: int, oldest_chain_token: int | None,
              depth_bits: int = DEFAULT_DEPTH_BITS) -> int:
    """Maximum number of instructions spanned by the dependence chain.

    ``branch_token`` is the branch's own allocation token (the DDT head);
    ``oldest_chain_token`` is the furthest-back in-flight instruction in
    the chain (leading-one detection in hardware).  Saturates at
    ``2**depth_bits - 1``.
    """
    if oldest_chain_token is None:
        return 0
    span = branch_token - oldest_chain_token
    if span < 0:
        raise ValueError("chain cannot be younger than the branch")
    limit = (1 << depth_bits) - 1
    return span if span < limit else limit
