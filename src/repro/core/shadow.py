"""Shadow structures feeding the ARVI hash units (paper Sections 4.3-4.4).

To avoid extra register-file ports, ARVI keeps:

* a **shadow register file** holding only the low 11 bits of each physical
  register's *committed* value (updates trail the real file by a cycle —
  we model that by writing at commit);
* a **shadow map table** holding the low 3 bits of the *logical* register
  id mapped to each physical register, written at rename; logical ids are
  used for the path tag because physical assignments vary run to run.
"""

from __future__ import annotations


class ShadowRegisterFile:
    """Low-order committed value bits per physical register."""

    def __init__(self, num_phys_regs: int, value_bits: int = 11) -> None:
        if value_bits < 1:
            raise ValueError("value_bits must be positive")
        self.num_phys_regs = num_phys_regs
        self.value_bits = value_bits
        self._mask = (1 << value_bits) - 1
        self._values = [0] * num_phys_regs

    def write(self, preg: int, value: int) -> None:
        """Record the committed value of ``preg`` (low bits only)."""
        self._values[preg] = value & self._mask

    def read(self, preg: int) -> int:
        return self._values[preg]

    def snapshot(self) -> list[int]:
        """Checkpoint of every entry (branch-recovery support)."""
        return list(self._values)

    def restore(self, snapshot: list[int]) -> None:
        if len(snapshot) != self.num_phys_regs:
            raise ValueError("shadow register file snapshot size mismatch")
        self._values = list(snapshot)

    @property
    def storage_bits(self) -> int:
        """Paper sizing: 72 pregs x 11 bits = 792 bits on a 21264."""
        return self.num_phys_regs * self.value_bits


class ShadowMapTable:
    """Low-order logical register id per physical register."""

    def __init__(self, num_phys_regs: int, id_bits: int = 3) -> None:
        if id_bits < 1:
            raise ValueError("id_bits must be positive")
        self.num_phys_regs = num_phys_regs
        self.id_bits = id_bits
        self._mask = (1 << id_bits) - 1
        self._ids = [0] * num_phys_regs

    def record(self, preg: int, logical: int) -> None:
        """Record the mapping at rename time."""
        self._ids[preg] = logical & self._mask

    def logical_id(self, preg: int) -> int:
        return self._ids[preg]

    def snapshot(self) -> list[int]:
        """Checkpoint of every mapping (branch-recovery support)."""
        return list(self._ids)

    def restore(self, snapshot: list[int]) -> None:
        if len(snapshot) != self.num_phys_regs:
            raise ValueError("shadow map snapshot size mismatch")
        self._ids = list(snapshot)

    @property
    def storage_bits(self) -> int:
        """Paper sizing: 32 logical regs -> 96 bits of 3-bit ids per 32."""
        return self.num_phys_regs * self.id_bits
