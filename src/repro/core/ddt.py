"""The Data Dependence Table (paper Section 2).

The DDT is a RAM with one row per physical register and one bit-column per
in-flight instruction.  On rename the destination row is rewritten as::

    DDT[dest] = (DDT[src1] | DDT[src2]) & valid  |  own_bit

so each row always holds the *full transitive* dependence chain of the
value in that register, restricted to in-flight instructions.  Committing
an instruction clears its valid bit, removing it from every chain in one
cycle; a branch misprediction rolls the head pointer back like the ROB.

Two implementations share the same observable semantics:

* :class:`DDT` — hardware-faithful: an explicit circular RAM with head and
  tail pointers, column clearing before entry reuse, and a valid bit
  vector.  It reproduces paper Figure 1 bit-for-bit and is used in tests
  and sizing calculations.
* :class:`FastDDT` — a sliding-window implementation over monotonically
  increasing instruction tokens, used by the timing engine (no per-reuse
  column sweep; a periodic renormalization keeps bitmask widths bounded).

Both identify in-flight instructions by a monotonically increasing integer
*token* assigned at allocation, so their chains can be compared directly
(``hypothesis`` equivalence tests do exactly that).
"""

from __future__ import annotations

from typing import Iterable


class DDTError(RuntimeError):
    """Raised on structural misuse (overflow, empty commit, bad rollback)."""


class _DDTBase:
    """Shared query helpers; subclasses implement storage and updates."""

    num_regs: int
    num_entries: int

    def chain_mask(self, *regs: int) -> int:
        raise NotImplementedError

    def chain_tokens(self, *regs: int) -> set[int]:
        raise NotImplementedError

    def allocate(self, dest: int | None, srcs: Iterable[int]) -> int:
        raise NotImplementedError

    def commit_oldest(self) -> int:
        raise NotImplementedError

    def rollback_to(self, token: int) -> list[int]:
        raise NotImplementedError

    @property
    def in_flight(self) -> int:
        raise NotImplementedError

    def depends_on(self, reg: int, token: int) -> bool:
        """Does the value in ``reg`` depend on in-flight instruction ``token``?"""
        return token in self.chain_tokens(reg)

    def chain_length(self, *regs: int) -> int:
        """Number of in-flight instructions in the dependence chain.

        A population count over the chain bitmask — no caller needs to
        materialize a token set just to take its length (hardware: a
        popcount tree over the OR of the selected DDT rows).
        """
        return self.chain_mask(*regs).bit_count()

    @property
    def storage_bits(self) -> int:
        """Paper Section 2 sizing: ROB entries x physical registers."""
        return self.num_regs * self.num_entries

    @property
    def storage_bytes(self) -> int:
        return self.storage_bits // 8


class DDT(_DDTBase):
    """Hardware-faithful DDT: circular RAM, head/tail, valid vector."""

    def __init__(self, num_regs: int, num_entries: int) -> None:
        if num_regs < 1 or num_entries < 1:
            raise ValueError("dimensions must be positive")
        self.num_regs = num_regs
        self.num_entries = num_entries
        # rows[r] bit e set => register r depends on instruction entry e.
        self.rows = [0] * num_regs
        self.valid = 0
        self.head = 0  # next entry to allocate
        self.tail = 0  # oldest in-flight entry
        self._count = 0
        self._entry_token = [-1] * num_entries
        self._next_token = 0
        # Column membership: _col_members[e] bit r set <=> rows[r] has bit
        # e.  Lets the entry-reuse column clear touch only the rows that
        # actually hold the bit instead of sweeping all num_regs rows.
        self._col_members = [0] * num_entries

    @property
    def in_flight(self) -> int:
        return self._count

    @property
    def next_token(self) -> int:
        """Token the next allocation will receive (the DDT head)."""
        return self._next_token

    def allocate(self, dest: int | None, srcs: Iterable[int]) -> int:
        """Insert a renamed instruction; returns its token.

        ``dest`` is the renamed destination physical register (``None`` for
        stores/branches, which occupy a column but update no row).
        """
        if self._count >= self.num_entries:
            raise DDTError("DDT full")
        entry = self.head
        bit = 1 << entry
        rows = self.rows
        col_members = self._col_members
        # Clear the column before reuse (paper: "all bits in the instruction
        # entry must be cleared" before a new instruction reuses it).  The
        # membership mask names exactly the rows holding the bit, so the
        # clear walks those instead of all num_regs rows.
        members = col_members[entry]
        if members:
            clear = ~bit
            while members:
                low = members & -members
                rows[low.bit_length() - 1] &= clear
                members ^= low
            col_members[entry] = 0
        chain = 0
        for src in srcs:
            chain |= rows[src]
        chain &= self.valid
        if dest is not None:
            old = rows[dest]
            new = chain | bit
            rows[dest] = new
            # Maintain column membership for every column whose bit in
            # this row changed (set bits of old ^ new).
            diff = old ^ new
            dest_bit = 1 << dest
            while diff:
                low = diff & -diff
                col = low.bit_length() - 1
                if new & low:
                    col_members[col] |= dest_bit
                else:
                    col_members[col] &= ~dest_bit
                diff ^= low
        self.valid |= bit
        self.head = (self.head + 1) % self.num_entries
        self._count += 1
        token = self._next_token
        self._entry_token[entry] = token
        self._next_token += 1
        return token

    def commit_oldest(self) -> int:
        """Commit the oldest in-flight instruction; returns its token."""
        if self._count == 0:
            raise DDTError("commit on empty DDT")
        entry = self.tail
        self.valid &= ~(1 << entry)
        self.tail = (self.tail + 1) % self.num_entries
        self._count -= 1
        return self._entry_token[entry]

    def rollback_to(self, token: int) -> list[int]:
        """Squash every instruction younger than ``token``.

        Mirrors the ROB rollback on a branch misprediction: the head
        pointer is walked back and the squashed valid bits cleared.
        Returns the squashed tokens, youngest first.
        """
        squashed: list[int] = []
        while self._count:
            newest_entry = (self.head - 1) % self.num_entries
            newest_token = self._entry_token[newest_entry]
            if newest_token <= token:
                break
            self.valid &= ~(1 << newest_entry)
            self.head = newest_entry
            self._count -= 1
            squashed.append(newest_token)
        return squashed

    def chain_mask(self, *regs: int) -> int:
        """Raw entry bitmask of the chain for the given registers."""
        mask = 0
        for reg in regs:
            mask |= self.rows[reg]
        return mask & self.valid

    def chain_tokens(self, *regs: int) -> set[int]:
        mask = self.chain_mask(*regs)
        entry_token = self._entry_token
        tokens = set()
        # Iterate only the set bits (lowest-set-bit extraction), not all
        # num_entries columns.
        while mask:
            low = mask & -mask
            tokens.add(entry_token[low.bit_length() - 1])
            mask ^= low
        return tokens

    def entry_of_token(self, token: int) -> int | None:
        """Column index currently holding ``token`` (None if retired)."""
        mask = self.valid
        entry_token = self._entry_token
        while mask:
            low = mask & -mask
            entry = low.bit_length() - 1
            if entry_token[entry] == token:
                return entry
            mask ^= low
        return None

    def row_bits(self, reg: int) -> tuple[int, ...]:
        """Raw row contents as a tuple of column bits (for figure tests)."""
        return tuple(self.rows[reg] >> e & 1 for e in range(self.num_entries))


class FastDDT(_DDTBase):
    """Sliding-window DDT used by the timing engine.

    Tokens are bit positions relative to ``_base``; a renormalization
    shifts every row right when the window drifts, keeping Python int
    widths proportional to the span from the oldest in-flight token to
    the newest.  (After a rollback the window may contain squashed-token
    gaps, so the span can temporarily exceed the in-flight count until
    the pre-gap instructions commit.)
    """

    _RENORM_INTERVAL = 4096

    def __init__(self, num_regs: int, num_entries: int) -> None:
        if num_regs < 1 or num_entries < 1:
            raise ValueError("dimensions must be positive")
        self.num_regs = num_regs
        self.num_entries = num_entries
        self.rows = [0] * num_regs
        self.valid = 0
        self._base = 0
        self._count = 0
        self._next_token = 0

    @property
    def in_flight(self) -> int:
        return self._count

    @property
    def next_token(self) -> int:
        """Token the next allocation will receive (the DDT head)."""
        return self._next_token

    def allocate(self, dest: int | None, srcs: Iterable[int]) -> int:
        if self.in_flight >= self.num_entries:
            raise DDTError("DDT full")
        token = self._next_token
        pos = token - self._base
        if pos >= self._RENORM_INTERVAL:
            self._renormalize()
            pos = token - self._base
        bit = 1 << pos
        rows = self.rows
        chain = 0
        for src in srcs:
            chain |= rows[src]
        chain &= self.valid
        if dest is not None:
            rows[dest] = chain | bit
        self.valid |= bit
        self._count += 1
        self._next_token += 1
        return token

    def _renormalize(self) -> None:
        # Shift down to the oldest in-flight token (lowest valid bit), so
        # the window width tracks the oldest-to-newest in-flight span even
        # across the token gaps rollbacks leave behind.
        if self.valid:
            low = self.valid & -self.valid
            oldest = self._base + low.bit_length() - 1
        else:
            oldest = self._next_token
        shift = oldest - self._base
        if shift <= 0:
            return
        self.rows = [row >> shift for row in self.rows]
        self.valid >>= shift
        self._base = oldest

    def commit_oldest(self) -> int:
        if self._count == 0:
            raise DDTError("commit on empty DDT")
        # The oldest in-flight instruction is the lowest valid bit (after
        # a rollback the window may contain squashed-token gaps, so the
        # tail cannot simply advance by one).
        low = self.valid & -self.valid
        token = self._base + low.bit_length() - 1
        self.valid ^= low
        self._count -= 1
        return token

    def rollback_to(self, token: int) -> list[int]:
        """Squash every in-flight instruction younger than ``token``.

        Tokens stay monotone — instructions allocated on the corrected
        path after a rollback receive fresh identities, matching the
        reference :class:`DDT` exactly.
        """
        cut = max(token + 1 - self._base, 0)
        high = self.valid >> cut << cut
        if not high:
            return []
        squashed = []
        mask = high
        while mask:
            top = mask.bit_length() - 1
            squashed.append(self._base + top)
            mask ^= 1 << top
        self.valid ^= high
        self._count -= len(squashed)
        return squashed

    def chain_mask(self, *regs: int) -> int:
        mask = 0
        rows = self.rows
        for reg in regs:
            mask |= rows[reg]
        return mask & self.valid

    def chain_tokens(self, *regs: int) -> set[int]:
        mask = self.chain_mask(*regs)
        base = self._base
        tokens = set()
        while mask:
            low = mask & -mask
            tokens.add(base + low.bit_length() - 1)
            mask ^= low
        return tokens

    def oldest_chain_token(self, *regs: int) -> int | None:
        """Lowest (oldest) token in the chain — used for the depth key.

        Hardware equivalent: leading-one detection over the DDT row with
        two priority encoders to handle buffer wrap (paper Section 4.5).
        """
        mask = self.chain_mask(*regs)
        if not mask:
            return None
        low = mask & -mask
        return self._base + low.bit_length() - 1
