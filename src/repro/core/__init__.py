"""The paper's contribution: DDT, RSE, shadow structures, BVIT and ARVI."""

from repro.core.arvi import (
    ARVIConfig,
    ARVIPrediction,
    ARVIPredictor,
    ARVIRequest,
    ARVIStats,
    RegisterView,
    ValueMode,
)
from repro.core.bvit import BVIT, BVITEntry, BVITStats
from repro.core.ddt import DDT, DDTError, FastDDT
from repro.core.hashing import bvit_index, depth_key, register_set_tag
from repro.core.rse import ChainInfoTable, RSEArray
from repro.core.shadow import ShadowMapTable, ShadowRegisterFile

__all__ = [
    "ARVIConfig",
    "ARVIPrediction",
    "ARVIPredictor",
    "ARVIRequest",
    "ARVIStats",
    "BVIT",
    "BVITEntry",
    "BVITStats",
    "ChainInfoTable",
    "DDT",
    "DDTError",
    "FastDDT",
    "RSEArray",
    "RegisterView",
    "ShadowMapTable",
    "ShadowRegisterFile",
    "ValueMode",
    "bvit_index",
    "depth_key",
    "register_set_tag",
]
