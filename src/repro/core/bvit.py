"""The Branch Value Information Table (paper Section 4.1).

A 4-way set-associative RAM indexed by the XOR hash of register values and
branch PC.  Each entry holds:

* the 3-bit register-set **id tag** (sum of logical register ids),
* the 5-bit **depth tag** (dependence-chain span — loop disambiguation),
* a 2-bit saturating **outcome counter** (the prediction),
* a 3-bit Heil-style **performance counter** driving replacement: it
  rises while the entry predicts correctly and falls when it mispredicts;
  the way with the lowest performance is evicted on a set conflict.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class BVITEntry:
    id_tag: int
    depth_tag: int
    counter: int        # 2-bit saturating outcome counter (>=2 => taken)
    perf: int           # 3-bit replacement quality counter
    last_used: int = 0  # recency, breaks perf ties


@dataclass
class BVITStats:
    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BVIT:
    """Set-associative branch value information table."""

    COUNTER_MAX = 3   # 2-bit outcome counter
    PERF_MAX = 7      # 3-bit performance counter
    PERF_INIT = 4

    def __init__(self, sets: int = 2048, ways: int = 4) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("sets and ways must be positive")
        self.sets = sets
        self.ways = ways
        self._table: list[list[BVITEntry]] = [[] for _ in range(sets)]
        self._tick = 0
        self.stats = BVITStats()

    def _find(self, index: int, id_tag: int,
              depth_tag: int) -> BVITEntry | None:
        for entry in self._table[index % self.sets]:
            if entry.id_tag == id_tag and entry.depth_tag == depth_tag:
                return entry
        return None

    def lookup(self, index: int, id_tag: int,
               depth_tag: int) -> bool | None:
        """Tag-checked prediction: True/False on hit, None on miss."""
        self._tick += 1
        self.stats.lookups += 1
        entry = self._find(index, id_tag, depth_tag)
        if entry is None:
            return None
        self.stats.hits += 1
        entry.last_used = self._tick
        return entry.counter >= 2

    def update(self, index: int, id_tag: int, depth_tag: int, taken: bool,
               *, allocate: bool = True) -> None:
        """Train the matching entry; optionally allocate on a miss.

        Allocation gating implements the paper's filtering: the level-1
        predictor handles easy branches, so the caller may restrict new
        BVIT entries to low-confidence (difficult) branches.
        """
        self._tick += 1
        entry = self._find(index, id_tag, depth_tag)
        if entry is not None:
            was_correct = (entry.counter >= 2) == taken
            if taken:
                if entry.counter < self.COUNTER_MAX:
                    entry.counter += 1
            elif entry.counter > 0:
                entry.counter -= 1
            if was_correct:
                if entry.perf < self.PERF_MAX:
                    entry.perf += 1
            elif entry.perf > 0:
                entry.perf -= 1
            entry.last_used = self._tick
            return
        if not allocate:
            return
        bucket = self._table[index % self.sets]
        new = BVITEntry(
            id_tag=id_tag,
            depth_tag=depth_tag,
            counter=2 if taken else 1,
            perf=self.PERF_INIT,
            last_used=self._tick,
        )
        if len(bucket) >= self.ways:
            victim = min(bucket, key=lambda e: (e.perf, e.last_used))
            bucket.remove(victim)
            self.stats.evictions += 1
        bucket.append(new)
        self.stats.allocations += 1

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._table)

    @property
    def entry_bits(self) -> int:
        """id tag (3) + depth tag (5) + perf (3) + outcome counter (2)."""
        return 3 + 5 + 3 + 2

    @property
    def storage_bits(self) -> int:
        return self.sets * self.ways * self.entry_bits
