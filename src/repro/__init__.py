"""repro — reproduction of Chen, Dropsho & Albonesi, HPCA 2003:
"Dynamic Data Dependence Tracking and its Application to Branch Prediction".

The package provides:

* :mod:`repro.core` — the paper's contribution: the Data Dependence Table
  (DDT), Register Set Extractor (RSE), shadow value/map structures, the
  BVIT and the ARVI value-based branch predictor;
* :mod:`repro.isa` — a PISA-flavoured RISC ISA with an assembler and a
  structured program builder;
* :mod:`repro.pipeline` — the out-of-order superscalar timing model
  (paper Table 2 machine) the evaluation runs on;
* :mod:`repro.predictors` — bimodal/gshare/2Bc-gskew baselines, the
  confidence estimator and the two-level overriding composite;
* :mod:`repro.speculation` — materialized wrong-path execution with
  checkpoint/rollback recovery (``MachineConfig.speculation``);
* :mod:`repro.workloads` — synthetic SPEC95-int stand-ins (Table 3);
* :mod:`repro.applications` — Section 3 uses of dependence tracking;
* :mod:`repro.experiments` — harness regenerating every table and figure.

Quickstart::

    from repro import machine_for_depth, simulate, LevelTwoKind
    from repro.workloads import get_program

    program = get_program("m88ksim", scale=0.5)
    result = simulate(program, machine_for_depth(20), LevelTwoKind.ARVI)
    print(result.summary())
"""

from repro.core import (
    ARVIConfig,
    ARVIPredictor,
    ARVIRequest,
    BVIT,
    DDT,
    FastDDT,
    RegisterView,
    ValueMode,
)
from repro.isa import AsmBuilder, Program, assemble
from repro.pipeline import (
    MachineConfig,
    PipelineEngine,
    SimulationResult,
    build_predictor,
    machine_for_depth,
    simulate,
)
from repro.predictors import LevelTwoKind, TwoLevelPredictor

__version__ = "1.0.0"

__all__ = [
    "ARVIConfig",
    "ARVIPredictor",
    "ARVIRequest",
    "AsmBuilder",
    "BVIT",
    "DDT",
    "FastDDT",
    "LevelTwoKind",
    "MachineConfig",
    "PipelineEngine",
    "Program",
    "RegisterView",
    "SimulationResult",
    "TwoLevelPredictor",
    "ValueMode",
    "assemble",
    "build_predictor",
    "machine_for_depth",
    "simulate",
    "__version__",
]
