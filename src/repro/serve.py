"""Live results service: HTTP/SSE front end over the view aggregator.

``python -m repro.serve`` runs an experiment grid with a
:class:`~repro.experiments.aggregate.ViewAggregator` attached and
serves its materialized views over plain HTTP while the grid is still
running — the "heavy traffic" read tier (DESIGN.md §14).  Pure stdlib
asyncio: one event loop on a daemon thread, hand-rolled HTTP/1.1, no
dependencies.

Endpoints:

* ``GET /views``          — the full current snapshot
  (``{"version", "done", "views": {...}}``), canonical JSON;
* ``GET /views/<name>``   — one view body (404 for unknown names);
* ``GET /events``         — Server-Sent Events: one ``snapshot`` event
  (the full state at connect time), then one ``delta`` event per new
  snapshot version (``{"version", "changed", "views": {changed-name:
  body}, "done"}``) — a reader replaces the changed views wholesale
  and is always exactly one atomic version, never a torn one;
* ``GET /healthz``        — liveness + version/done/result counters.

The read path touches only immutable :class:`~repro.experiments.
aggregate.ViewSnapshot` objects — many concurrent readers cost the
compute path nothing but the ``call_soon_threadsafe`` trampoline per
published delta.

Wiring options:

* ``REPRO_SERVE=1`` — every ``run_plan`` serves itself for the
  duration of the plan (:func:`autoserve`, port ``REPRO_SERVE_PORT``);
* ``run_plan(..., sink=aggregator)`` with a caller-owned
  :class:`ViewServer` — how this CLI does it;
* ``REPRO_VIEWS`` — comma-separated view subset (default: all).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import pathlib
import threading
import time

from repro import obs
from repro.experiments.aggregate import (
    ALL_VIEWS,
    ViewAggregator,
    canonical_json,
    views_from_env,
)

__all__ = ["DEFAULT_PORT", "ViewServer", "autoserve", "main",
           "serve_port"]

DEFAULT_PORT = 8765

#: Queue sentinel: the server is shutting down, close the SSE stream.
_SHUTDOWN = object()


def serve_port() -> int:
    """``REPRO_SERVE_PORT`` (0 = ephemeral), default :data:`DEFAULT_PORT`."""
    raw = os.environ.get("REPRO_SERVE_PORT", "").strip()
    try:
        return int(raw) if raw else DEFAULT_PORT
    except ValueError:
        raise ValueError(
            f"REPRO_SERVE_PORT must be an integer port (0 for "
            f"ephemeral); got {raw!r}") from None


class ViewServer:
    """Asyncio HTTP/SSE server over one aggregator, on its own thread.

    ``start()`` blocks until the socket is bound (``port=0`` resolves
    to the ephemeral port actually bound, readable as ``self.port``)
    and subscribes to the aggregator; ``stop()`` broadcasts a shutdown
    to every SSE client, grants them a short grace to flush, and joins
    the loop thread.  All client state lives on the loop thread; the
    only cross-thread traffic is the aggregator's delta callback
    trampolining through ``call_soon_threadsafe``.
    """

    def __init__(self, aggregator: ViewAggregator, *,
                 host: str = "127.0.0.1",
                 port: "int | None" = None) -> None:
        self.aggregator = aggregator
        self.host = host
        self.port = serve_port() if port is None else int(port)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._clients: "set[asyncio.Queue]" = set()  # loop thread only
        self._unsubscribe = None
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("view server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        self._unsubscribe = self.aggregator.subscribe(self._on_delta)

    def stop(self, grace: float = 0.25) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        loop = self._loop
        if loop is not None and not loop.is_closed():
            def _begin_shutdown() -> None:
                loop.create_task(self._shutdown(grace))
            try:
                loop.call_soon_threadsafe(_begin_shutdown)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port))
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._server = server
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            loop.close()

    async def _shutdown(self, grace: float) -> None:
        self._broadcast(_SHUTDOWN)
        await asyncio.sleep(grace)  # let SSE handlers flush and close
        asyncio.get_running_loop().stop()

    # -- aggregator -> clients -----------------------------------------------

    def _on_delta(self, delta: dict) -> None:
        """Aggregator callback (compute thread): trampoline to the loop."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._broadcast, delta)
        except RuntimeError:
            pass  # shutting down

    def _broadcast(self, delta) -> None:
        for queue in list(self._clients):
            queue.put_nowait(delta)

    # -- HTTP ----------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=10)
            parts = request.decode("ascii", errors="replace").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            while True:  # drain headers; bodies are not accepted
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                if line in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                self._respond(writer, 405, {"error": "method not allowed"})
            elif path == "/events":
                await self._sse(writer)
            else:
                self._route(writer, path)
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    def _route(self, writer: asyncio.StreamWriter, path: str) -> None:
        snapshot = self.aggregator.snapshot()
        if path in ("/", "/healthz"):
            status = snapshot.views.get("status") or {}
            self._respond(writer, 200, {
                "ok": True, "version": snapshot.version,
                "done": snapshot.done,
                "results": status.get("done"),
                "total": status.get("total")})
        elif path == "/views":
            self._raw(writer, 200, snapshot.to_json())
        elif path.startswith("/views/"):
            name = path[len("/views/"):]
            if name in snapshot.views:
                self._raw(writer, 200, canonical_json({
                    "version": snapshot.version, "name": name,
                    "view": snapshot.views[name]}))
            else:
                self._respond(writer, 404, {
                    "error": f"unknown view {name!r}",
                    "views": sorted(snapshot.views)})
        else:
            self._respond(writer, 404, {"error": f"no route {path!r}",
                                        "routes": ["/views",
                                                   "/views/<name>",
                                                   "/events", "/healthz"]})

    @staticmethod
    def _raw(writer: asyncio.StreamWriter, status: int,
             body: str) -> None:
        data = body.encode() + b"\n"
        reason = {200: "OK", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n".encode() + data)

    @classmethod
    def _respond(cls, writer: asyncio.StreamWriter, status: int,
                 body: dict) -> None:
        cls._raw(writer, status, canonical_json(body))

    async def _sse(self, writer: asyncio.StreamWriter) -> None:
        """One Server-Sent-Events reader: snapshot, then deltas.

        The queue registers *before* the snapshot is read, so no
        version can fall between them: deltas already included in the
        snapshot are dropped by the version filter, and anything newer
        arrives queued.  Readers reconstruct by replacing each delta's
        changed views — monotone convergence to the producer's state.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._clients.add(queue)
        try:
            snapshot = self.aggregator.snapshot()
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: text/event-stream\r\n"
                         b"Cache-Control: no-cache\r\n"
                         b"Connection: close\r\n\r\n")
            payload = {"version": snapshot.version, "done": snapshot.done,
                       "views": snapshot.views}
            writer.write(b"event: snapshot\ndata: "
                         + canonical_json(payload).encode() + b"\n\n")
            await writer.drain()
            version = snapshot.version
            while True:
                delta = await queue.get()
                if delta is _SHUTDOWN:
                    writer.write(b"event: bye\ndata: {}\n\n")
                    await writer.drain()
                    return
                if delta["version"] <= version:
                    continue  # already inside the connect-time snapshot
                version = delta["version"]
                writer.write(b"event: delta\ndata: "
                             + canonical_json(delta).encode() + b"\n\n")
                await writer.drain()
        finally:
            self._clients.discard(queue)


@contextlib.contextmanager
def autoserve():
    """The ``REPRO_SERVE=1`` wiring for one ``run_plan`` call.

    Builds an aggregator (``REPRO_VIEWS`` selection), serves it on
    ``REPRO_SERVE_PORT`` for the duration of the plan, and yields the
    aggregator as the scheduler's sink.  On exit the final snapshot is
    marked done and the server stops — use ``python -m repro.serve``
    when the views should outlive the grid.
    """
    aggregator = ViewAggregator(views=views_from_env())
    server = ViewServer(aggregator)
    server.start()
    obs.emit("serve", kind="view", attrs={"url": server.url})
    try:
        yield aggregator
    finally:
        aggregator.mark_done()
        server.stop()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run an experiment grid and serve its materialized "
                    "views live over HTTP/SSE")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="listen port (default REPRO_SERVE_PORT or "
                             f"{DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmarks (default: all)")
    parser.add_argument("--configurations", default=None,
                        help="comma-separated configurations "
                             "(default: the paper's four)")
    parser.add_argument("--depths", default="20",
                        help="comma-separated pipeline depths")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--speculation", default="redirect",
                        choices=("redirect", "wrongpath"))
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--backend", default=None,
                        help="serial | local | queue (default: auto)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--output", default=None,
                        help="write the final snapshot JSON here")
    parser.add_argument("--linger", type=float, default=0.0,
                        help="keep serving this many seconds after the "
                             "grid completes")
    args = parser.parse_args(argv)

    from repro.experiments.runner import CONFIGURATIONS, run_suite
    from repro.workloads.registry import BENCHMARKS

    benchmarks = tuple(
        part.strip() for part in args.benchmarks.split(",")
        if part.strip()) if args.benchmarks else BENCHMARKS
    configurations = tuple(
        part.strip() for part in args.configurations.split(",")
        if part.strip()) if args.configurations else CONFIGURATIONS
    depths = tuple(int(part) for part in args.depths.split(",")
                   if part.strip())

    aggregator = ViewAggregator(views=views_from_env())
    server = ViewServer(aggregator, host=args.host, port=args.port)
    server.start()
    print(f"serving views on {server.url} "
          f"(GET /views, /views/<name>, /events, /healthz)", flush=True)
    try:
        run_suite(configurations, depths=depths, benchmarks=benchmarks,
                  scale=args.scale, warmup=args.warmup,
                  speculation=args.speculation, jobs=args.jobs,
                  backend=args.backend, use_cache=not args.no_cache,
                  sink=aggregator)
        aggregator.mark_done()
        snapshot = aggregator.snapshot()
        if args.output:
            pathlib.Path(args.output).write_text(
                snapshot.to_json() + "\n", encoding="utf-8")
        status = snapshot.views.get("status") or {}
        print(f"grid complete: {status.get('done', len(snapshot.views))} "
              f"result(s), snapshot version {snapshot.version}",
              flush=True)
        if args.linger > 0:
            time.sleep(args.linger)
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
