"""Branch checkpointing and recovery (DESIGN.md §2.3, ``wrongpath`` mode).

A real machine snapshots its frontend state at every unresolved branch so
a misprediction can be repaired: the rename map table, the ARVI shadow
structures, the predictors' speculative histories, and the DDT head.  The
:class:`RecoveryManager` materializes exactly that checkpoint when the
engine starts a wrong-path episode and restores it when the branch
resolves, driving ``rollback_to`` — the paper's ROB-style head-pointer
walk-back — on the live in-engine DDT for the first time (the seed
exercised it only in unit tests).

:class:`CrossCheckedDDT` is the verification harness for that claim: it
mirrors every engine-issued ``allocate`` / ``commit_oldest`` /
``rollback_to`` into the hardware-faithful :class:`~repro.core.ddt.DDT`
and compares tokens, squash lists and (after every squash) the full
``chain_tokens`` state, raising :class:`DDTCrossCheckError` on the first
divergence.  The engine enables it via ``PipelineEngine(...,
ddt_cross_check=True)``; tests use it to prove the in-engine rollback
matches the reference bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ddt import DDT, FastDDT


class DDTCrossCheckError(AssertionError):
    """The fast and hardware-faithful DDTs disagreed on an operation."""


@dataclass
class EngineCheckpoint:
    """Everything needed to undo one wrong-path episode.

    Captured at the mispredicted branch (before any wrong-path
    instruction touches the pipeline structures); ``wrong_path_pregs``
    accumulates the physical registers the episode allocates so the
    restore can return them to the free list.

    ``shadow_values`` (written only at retire, which an episode never
    reaches) and the confidence history (trained only at resolve) are
    provably unchanged across today's episodes; they are checkpointed
    anyway because the paper's recovery hardware covers them, and the
    invariant would silently stop holding if retirement ever interleaved
    with wrong-path fetch.
    """

    branch_token: int
    rename_map: tuple[int, ...]
    shadow_map: list[int]
    shadow_values: list[int]
    predictor_history: object
    fetch_line: int
    wrong_path_pregs: list[int] = field(default_factory=list)


class RecoveryManager:
    """Creates and restores :class:`EngineCheckpoint`\\ s for the engine.

    The manager is deliberately stateless between episodes (the engine
    holds the active checkpoint on its call stack); it owns only the
    running recovery statistics.
    """

    def __init__(self) -> None:
        self.checkpoints_taken = 0
        self.rollbacks = 0
        self.squashed_tokens = 0

    def capture(self, engine, branch_token: int) -> EngineCheckpoint:
        """Snapshot the engine's speculative state at a branch."""
        self.checkpoints_taken += 1
        return EngineCheckpoint(
            branch_token=branch_token,
            rename_map=engine.rename.snapshot(),
            shadow_map=engine.shadow_map.snapshot(),
            shadow_values=engine.shadow_values.snapshot(),
            predictor_history=engine.predictor.history_state(),
            fetch_line=engine._last_fetch_line,
        )

    def restore(self, engine, checkpoint: EngineCheckpoint) -> list[int]:
        """Squash the wrong-path episode; returns the squashed tokens.

        Drives the DDT's ROB-style ``rollback_to`` walk-back in-engine,
        then rewinds the rename map (freeing the episode's physical
        registers), the shadow structures, the predictor histories and
        the fetch-line register.
        """
        squashed = engine.ddt.rollback_to(checkpoint.branch_token)
        for token in squashed:
            engine.chains.discard(token)
        engine.rename.restore(checkpoint.rename_map,
                              checkpoint.wrong_path_pregs)
        engine.shadow_map.restore(checkpoint.shadow_map)
        engine.shadow_values.restore(checkpoint.shadow_values)
        engine.predictor.restore_history(checkpoint.predictor_history)
        engine._last_fetch_line = checkpoint.fetch_line
        self.rollbacks += 1
        self.squashed_tokens += len(squashed)
        return squashed


class CrossCheckedDDT:
    """A :class:`FastDDT` mirrored into the hardware-faithful :class:`DDT`.

    Exposes the engine-facing interface of :class:`FastDDT`; every
    mutation is applied to both implementations and the observable
    results compared.  After every rollback the complete per-register
    ``chain_tokens`` state is verified (the §2.3 property, now enforced
    on the live engine script rather than synthetic ones).
    """

    def __init__(self, num_regs: int, num_entries: int) -> None:
        self.fast = FastDDT(num_regs, num_entries)
        self.reference = DDT(num_regs, num_entries)
        self.num_regs = num_regs
        self.num_entries = num_entries
        self.operations = 0
        self.rollback_checks = 0

    # -- mutations (mirrored + checked) -------------------------------------

    def allocate(self, dest, srcs) -> int:
        srcs = tuple(srcs)
        token = self.fast.allocate(dest, srcs)
        ref_token = self.reference.allocate(dest, srcs)
        if token != ref_token:
            raise DDTCrossCheckError(
                f"allocate token mismatch: fast={token} ref={ref_token}")
        self.operations += 1
        return token

    def commit_oldest(self) -> int:
        token = self.fast.commit_oldest()
        ref_token = self.reference.commit_oldest()
        if token != ref_token:
            raise DDTCrossCheckError(
                f"commit token mismatch: fast={token} ref={ref_token}")
        self.operations += 1
        return token

    def rollback_to(self, token: int) -> list[int]:
        squashed = self.fast.rollback_to(token)
        ref_squashed = self.reference.rollback_to(token)
        if squashed != ref_squashed:
            raise DDTCrossCheckError(
                f"rollback squash mismatch at token {token}: "
                f"fast={squashed} ref={ref_squashed}")
        self.verify_chains()
        self.operations += 1
        self.rollback_checks += 1
        return squashed

    def verify_chains(self) -> None:
        """Full per-register chain comparison between both DDTs."""
        for reg in range(self.num_regs):
            fast_chain = self.fast.chain_tokens(reg)
            ref_chain = self.reference.chain_tokens(reg)
            if fast_chain != ref_chain:
                raise DDTCrossCheckError(
                    f"chain mismatch for register {reg}: "
                    f"fast={sorted(fast_chain)} ref={sorted(ref_chain)}")
        if self.fast.in_flight != self.reference.in_flight:
            raise DDTCrossCheckError(
                f"occupancy mismatch: fast={self.fast.in_flight} "
                f"ref={self.reference.in_flight}")

    # -- read-only queries (served by the fast implementation) ---------------

    @property
    def in_flight(self) -> int:
        return self.fast.in_flight

    @property
    def next_token(self) -> int:
        return self.fast.next_token

    def chain_tokens(self, *regs: int) -> set[int]:
        return self.fast.chain_tokens(*regs)

    def chain_length(self, *regs: int) -> int:
        return self.fast.chain_length(*regs)

    def oldest_chain_token(self, *regs: int):
        return self.fast.oldest_chain_token(*regs)
