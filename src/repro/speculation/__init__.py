"""Speculation subsystem: materialized wrong-path execution (DESIGN.md §2.2-§2.3).

The engine supports two speculation models, selected by
``MachineConfig.speculation``:

* ``"redirect"`` (default) — the seed's accounting model: a misprediction
  restarts fetch after the branch resolves; wrong-path instructions are
  never materialized and no state needs repair.
* ``"wrongpath"`` — this package: a mispredicted branch checkpoints the
  frontend (:mod:`repro.speculation.checkpoint`), fetches and renames a
  synthesized wrong-path instruction stream
  (:mod:`repro.speculation.wrongpath`) that pollutes the caches and the
  DDT, then squashes it through ``rollback_to`` when the branch resolves.
"""

from repro.pipeline.config import SPECULATION_MODES
from repro.speculation.checkpoint import (
    CrossCheckedDDT,
    DDTCrossCheckError,
    EngineCheckpoint,
    RecoveryManager,
)
from repro.speculation.wrongpath import CowMemory, CowRegisters, WrongPathCore

__all__ = [
    "SPECULATION_MODES",
    "CowMemory",
    "CowRegisters",
    "CrossCheckedDDT",
    "DDTCrossCheckError",
    "EngineCheckpoint",
    "RecoveryManager",
    "WrongPathCore",
]
