"""Wrong-path instruction synthesis (DESIGN.md §2.2, ``wrongpath`` mode).

On a mispredicted branch a real machine keeps fetching down the predicted
(wrong) path until the branch resolves; those instructions rename, occupy
the ROB/DDT, touch the caches and are then squashed.  The timing engine is
oracle-driven and only ever sees correct-path instructions, so this module
*synthesizes* the wrong-path stream: :class:`WrongPathCore` runs the
functional interpreter (:func:`repro.pipeline.functional.execute_instruction`)
down the wrong target against copy-on-write register and memory views.
Architectural state is never mutated — the views absorb every write, and
the whole episode is discarded when the engine's recovery manager restores
its checkpoint (``repro.speculation.checkpoint``).

Wrong-path control flow follows *predictions*, not data: at a conditional
branch the machine has no outcome yet, so the fetcher asks the engine's
``predict`` callback (the level-1 predictor, with speculative history
update) which way to go.  The stream ends at the first event a frontend
cannot fetch past: a pc outside the program, a HALT, or an architectural
fault (wrong-path addresses are frequently garbage — real hardware squashes
the faulting access rather than trapping).
"""

from __future__ import annotations

from typing import Callable

from repro.pipeline.functional import (
    _DISPATCH,
    DynInst,
    ExecutionError,
)
from repro.isa.program import Program


class CowRegisters:
    """Copy-on-write view of the 32-entry architectural register file."""

    __slots__ = ("_base", "_overlay")

    def __init__(self, base) -> None:
        self._base = base
        self._overlay: dict[int, int] = {}

    def __getitem__(self, index: int) -> int:
        overlay = self._overlay
        return overlay[index] if index in overlay else self._base[index]

    def __setitem__(self, index: int, value: int) -> None:
        self._overlay[index] = value

    @property
    def dirty_count(self) -> int:
        """Registers written down the wrong path (diagnostics/tests)."""
        return len(self._overlay)


class CowMemory:
    """Byte-granular copy-on-write view over the architectural memory.

    Wrong-path stores land in the overlay (so younger wrong-path loads see
    them — store forwarding continues down the wrong path); the backing
    bytearray is never written.  Bounds and alignment checks match
    :class:`~repro.pipeline.functional.FunctionalCore` exactly, so a
    garbage wrong-path address raises the same :class:`ExecutionError`.
    """

    __slots__ = ("_base", "_overlay", "pc")

    def __init__(self, base) -> None:
        self._base = base
        self._overlay: dict[int, int] = {}
        self.pc = 0  # fetch pc of the access, for fault messages

    def _check_addr(self, addr: int, size: int, *, aligned: int) -> None:
        if addr < 0 or addr + size > len(self._base):
            raise ExecutionError(
                f"pc={self.pc}: memory access out of range: {addr:#x}")
        if aligned > 1 and addr % aligned:
            raise ExecutionError(
                f"pc={self.pc}: unaligned {size}-byte access at {addr:#x}")

    def _byte(self, addr: int) -> int:
        overlay = self._overlay
        return overlay[addr] if addr in overlay else self._base[addr]

    def load_word(self, addr: int) -> int:
        self._check_addr(addr, 4, aligned=4)
        if self._overlay:
            return (self._byte(addr) | self._byte(addr + 1) << 8
                    | self._byte(addr + 2) << 16 | self._byte(addr + 3) << 24)
        return int.from_bytes(self._base[addr:addr + 4], "little")

    def store_word(self, addr: int, value: int) -> None:
        self._check_addr(addr, 4, aligned=4)
        value &= 0xFFFFFFFF
        overlay = self._overlay
        for offset in range(4):
            overlay[addr + offset] = value >> (8 * offset) & 0xFF

    def load_byte(self, addr: int, *, signed: bool) -> int:
        self._check_addr(addr, 1, aligned=1)
        byte = self._byte(addr)
        if signed and byte >= 0x80:
            return byte - 0x100
        return byte

    def store_byte(self, addr: int, value: int) -> None:
        self._check_addr(addr, 1, aligned=1)
        self._overlay[addr] = value & 0xFF

    @property
    def dirty_bytes(self) -> int:
        """Bytes written down the wrong path (diagnostics/tests)."""
        return len(self._overlay)


class WrongPathCore:
    """Speculative fetch source: interprets down the wrong path via views.

    Implements the same state interface :func:`execute_instruction`
    expects (``registers``, memory accessors, ``halted``), backed by
    copy-on-write views of the architectural core.  ``step()`` returns one
    wrong-path :class:`DynInst` at a time, or ``None`` once the wrong path
    cannot be fetched further.
    """

    def __init__(self, program: Program, registers, memory, start_pc: int,
                 predict: Callable[[int], bool]) -> None:
        self.program = program
        self.registers = CowRegisters(registers)
        self._memory = CowMemory(memory)
        self.pc = start_pc
        self.predict = predict
        self.halted = False
        self.fetched = 0
        self.faulted = False
        self._decoded = program.decoded().insts

    # Memory interface for execute_instruction (delegates to the COW view,
    # keeping the faulting pc current for error messages).

    def load_word(self, addr: int) -> int:
        return self._memory.load_word(addr)

    def store_word(self, addr: int, value: int) -> None:
        self._memory.store_word(addr, value)

    def load_byte(self, addr: int, *, signed: bool) -> int:
        return self._memory.load_byte(addr, signed=signed)

    def store_byte(self, addr: int, value: int) -> None:
        self._memory.store_byte(addr, value)

    # -- stepping -----------------------------------------------------------

    def step(self) -> DynInst | None:
        """Fetch and speculatively execute one wrong-path instruction.

        Returns ``None`` when the wrong path ends: pc left the program,
        a HALT was fetched, or the instruction faulted.
        """
        pc = self.pc
        decoded = self._decoded
        if self.halted or not 0 <= pc < len(decoded):
            return None
        d = decoded[pc]
        if d.is_halt:
            # A speculative HALT stalls fetch; it never retires.
            return None
        dyn = DynInst(self.fetched, pc, d.inst)
        self._memory.pc = pc
        if d.is_cond_branch:
            # No outcome exists yet: record the data-determined direction
            # for observability, but *fetch* follows the prediction.
            _DISPATCH[d.op](self, dyn)
            predicted = bool(self.predict(pc))
            dyn.next_pc = d.target if predicted else pc + 1
        else:
            try:
                _DISPATCH[d.op](self, dyn)
            except ExecutionError:
                self.faulted = True
                return None
        self.fetched += 1
        self.pc = dyn.next_pc
        return dyn
