"""The unified resilience policy layer (DESIGN.md §12).

One :class:`RetryPolicy` replaces the scattered fixed-retry logic:
bounded attempts, exponential backoff with *deterministic* jitter (a
hash of the retry key, not a clock or RNG — two runs of the same grid
back off identically), shared by broker I/O and queue job requeues.
Alongside it:

* per-point deadlines — ``REPRO_POINT_TIMEOUT`` arms a SIGALRM timer
  around each point's execution; an overrun raises the typed
  :class:`PointTimeout` instead of hanging the grid;
* poison-job quarantine — points that fail all attempts are written to
  a ``deadletter/`` directory with their full attempt history
  (:class:`DeadletterStore`, surfaced via ``python -m repro.obs
  deadletter``);
* the degradation knob — ``REPRO_DEGRADE`` (default on) lets the
  scheduler walk the queue → local → serial ladder when a backend
  reports itself unavailable.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import signal
import threading
import time
from typing import Callable, Iterator

from repro import obs

_TRUTHY_OFF = ("", "0", "false", "no", "off")

DEFAULT_BACKOFF = 0.05
DEFAULT_ATTEMPTS = 3


class PointTimeout(RuntimeError):
    """A point exceeded ``REPRO_POINT_TIMEOUT`` seconds.

    Deliberately *not* a ``TimeoutError``: ``TimeoutError`` is an
    ``OSError`` subclass (PEP 3151), and retry policies treat ``OSError``
    as transient — a deadline overrun is final, not transient.
    """


class RetriesExhausted(RuntimeError):
    """An operation failed every attempt its :class:`RetryPolicy` allowed."""

    def __init__(self, what: str, attempts: int, history: list[str]):
        super().__init__(
            f"{what} failed after {attempts} attempt(s): " + "; ".join(history))
        self.what = what
        self.attempts = attempts
        self.history = list(history)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts + exponential backoff + deterministic jitter.

    ``delay(attempt, key)`` for attempt ``n`` (1-based; the delay taken
    *before* attempt ``n``) is ``backoff * factor**(n-2)`` capped at
    ``cap``, scaled into ``[1/2, 1]`` by a SHA-256 hash of
    ``f"{key}:{attempt}"`` — jitter that desynchronizes concurrent
    retriers yet is bit-stable across runs.
    """

    max_attempts: int = DEFAULT_ATTEMPTS
    backoff: float = DEFAULT_BACKOFF
    factor: float = 2.0
    cap: float = 2.0

    @classmethod
    def from_env(cls, *, max_attempts: int | None = None) -> "RetryPolicy":
        """Policy from ``REPRO_RETRY_BACKOFF`` (+ optional attempt cap)."""
        if max_attempts is None:
            try:
                max_attempts = int(os.environ.get("REPRO_QUEUE_RETRIES",
                                                  DEFAULT_ATTEMPTS))
            except ValueError:
                max_attempts = DEFAULT_ATTEMPTS
        try:
            backoff = float(os.environ.get("REPRO_RETRY_BACKOFF",
                                           DEFAULT_BACKOFF))
        except ValueError:
            backoff = DEFAULT_BACKOFF
        return cls(max_attempts=max(1, max_attempts), backoff=max(0.0, backoff))

    def delay(self, attempt: int, key: str = "") -> float:
        if attempt <= 1 or self.backoff <= 0.0:
            return 0.0
        base = min(self.backoff * self.factor ** (attempt - 2), self.cap)
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).hexdigest()[:8]
        jitter = 0.5 + 0.5 * (int(digest, 16) / 0xFFFFFFFF)
        return base * jitter

    def call(self, fn: Callable[[], object], *, key: str, what: str,
             retry_on: tuple[type[BaseException], ...] = (OSError,)):
        """Run ``fn`` under this policy; raise :class:`RetriesExhausted`.

        ``PointTimeout`` is never retried even if listed in ``retry_on``
        (a deadline overrun is final by definition).
        """
        history: list[str] = []
        for attempt in range(1, self.max_attempts + 1):
            pause = self.delay(attempt, key)
            if pause > 0.0:
                time.sleep(pause)
            try:
                return fn()
            except PointTimeout:
                raise
            except retry_on as exc:
                history.append(f"attempt {attempt}: "
                               f"{type(exc).__name__}: {exc}")
                obs.inc("retry.attempt", what=what)
        raise RetriesExhausted(what, self.max_attempts, history)


# -- per-point deadlines ------------------------------------------------------


def point_timeout() -> float:
    """``REPRO_POINT_TIMEOUT`` -> per-point deadline in seconds (0=off)."""
    raw = os.environ.get("REPRO_POINT_TIMEOUT", "").strip()
    if raw.lower() in _TRUTHY_OFF:
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        return 0.0
    return value if value > 0.0 else 0.0


@contextlib.contextmanager
def point_deadline(seconds: float | None = None) -> Iterator[None]:
    """Raise :class:`PointTimeout` if the body runs past the deadline.

    SIGALRM-based, so it interrupts a simulation stuck in pure-Python
    compute.  Only arms on the main thread (signals cannot be delivered
    elsewhere); pool/queue workers execute points on their main thread,
    which is where a runaway simulation would actually hang.
    """
    if seconds is None:
        seconds = point_timeout()
    if seconds <= 0.0 or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _overrun(signum, frame):
        raise PointTimeout(
            f"point exceeded REPRO_POINT_TIMEOUT={seconds:g}s deadline")

    previous_handler = signal.signal(signal.SIGALRM, _overrun)
    # Repeating interval: if the raise lands inside a C-level callback
    # frame (e.g. a gc callback) the interpreter swallows it as
    # unraisable — the next firing retries until one lands in
    # interruptible bytecode.
    signal.setitimer(signal.ITIMER_REAL, seconds, 0.005)
    try:
        yield
    finally:
        # A repeat firing can land inside this very block and abort the
        # disarm — loop until setitimer(0) + handler restore both stick.
        while True:
            try:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous_handler)
                break
            except PointTimeout:
                continue


# -- degradation --------------------------------------------------------------


def degrade_enabled() -> bool:
    """``REPRO_DEGRADE`` -> queue→local→serial fallback on (default on)."""
    raw = os.environ.get("REPRO_DEGRADE")
    if raw is None:
        return True
    return raw.strip().lower() not in _TRUTHY_OFF


# -- deadletter quarantine ----------------------------------------------------


def deadletter_enabled() -> bool:
    """``REPRO_DEADLETTER`` -> quarantine failed points (default on)."""
    raw = os.environ.get("REPRO_DEADLETTER")
    if raw is None:
        return True
    return raw.strip().lower() not in _TRUTHY_OFF


def default_deadletter_dir() -> pathlib.Path:
    """Where quarantined points land (``REPRO_DEADLETTER_DIR`` overrides)."""
    override = os.environ.get("REPRO_DEADLETTER_DIR")
    if override:
        return pathlib.Path(override)
    root = pathlib.Path(__file__).resolve().parents[3]
    if not (root / "pyproject.toml").is_file():
        root = pathlib.Path.cwd()
    return root / "benchmarks" / "results" / "deadletter"


class DeadletterStore:
    """Poison-point quarantine: one JSON file per failed point.

    Entries carry the point, its cache key, the final error and the
    full attempt history, so a poisoned grid is diagnosable after the
    fact (``python -m repro.obs deadletter``) instead of only through a
    traceback that scrolled by.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = pathlib.Path(directory) if directory is not None \
            else default_deadletter_dir()
        self._seq = 0

    def add(self, entry: dict) -> pathlib.Path:
        from repro.faults import fsio
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = dict(entry)
        entry.setdefault("ts", time.time())
        key = str(entry.get("key", "unkeyed"))[:16]
        self._seq += 1
        path = self.directory / f"{key}-{os.getpid()}-{self._seq}.json"
        fsio.atomic_write_bytes(
            path, (json.dumps(entry, indent=2, sort_keys=True) + "\n").encode())
        obs.inc("deadletter.quarantined")
        return path

    def entries(self) -> list[dict]:
        if not self.directory.is_dir():
            return []
        entries = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # torn/corrupt entries don't hide the others
            if isinstance(record, dict):
                record["_path"] = str(path)
                entries.append(record)
        return entries
