"""Deterministic seeded fault injection (``REPRO_FAULTS=<seed>:<profile>``).

The injector is a schedule, not a monkeypatch: production code calls a
handful of explicit seams (``maybe_io_error``, ``mangle``,
``slow_delay``, ``heartbeat_stalled``, ``maybe_crash``) and each seam
consults a per-kind ``random.Random`` stream derived from the seed, so
the same spec injects the same faults at the same call sequence every
run.  With ``REPRO_FAULTS`` unset, :func:`active` memoizes to ``None``
and every seam is a single attribute check — zero measurable overhead.

Spec grammar::

    REPRO_FAULTS = <seed>:<profile>[+<profile>...][:<budget>]

``<profile>`` names entries of :data:`PROFILES` (``crash``, ``io``,
``corrupt``, ``partial``, ``stall``, ``slow``, or the ``mixed``/``all``
blend).  ``<budget>``, when given, caps *each* fault kind at that many
injections per process; otherwise :data:`DEFAULT_BUDGETS` applies.
An unknown profile raises ``ValueError`` — a chaos run must never
silently degenerate into a clean run.

Every injected fault is logged to the telemetry layer (counter
``faults.injected`` plus a ``kind="fault"`` ledger event) so merged
ledgers show exactly what was injected where.
"""

from __future__ import annotations

import errno
import os
import pathlib
import random
import threading
import time

from repro import obs

ENV_SPEC = "REPRO_FAULTS"

# Fault kinds (the taxonomy; DESIGN.md §12):
#   crash    worker process exits hard (os._exit) right after a point
#   io       transient OSError/EIO raised from a broker I/O call
#   corrupt  a single bit flipped in a payload before it hits disk
#   partial  a file truncated at k bytes before the atomic rename
#   stall    lease heartbeats stop for ~2 lease timeouts
#   slow     extra per-point delay in the worker
KINDS = ("crash", "io", "corrupt", "partial", "stall", "slow")

# Profile name -> {kind: injection probability per opportunity}.
PROFILES = {
    "crash": {"crash": 1.0},
    "io": {"io": 0.5},
    "corrupt": {"corrupt": 0.5},
    "partial": {"partial": 0.5},
    "stall": {"stall": 0.5},
    "slow": {"slow": 1.0},
    "mixed": {
        "crash": 0.5,
        "io": 0.3,
        "corrupt": 0.3,
        "partial": 0.3,
        "stall": 0.3,
        "slow": 0.3,
    },
}
PROFILES["all"] = PROFILES["mixed"]

# Per-process injection caps so a seeded schedule perturbs a run without
# making forward progress impossible (retries are bounded; an unbounded
# fault stream would turn every chaos run into retries-exhausted).
DEFAULT_BUDGETS = {
    "crash": 1,
    "io": 2,
    "corrupt": 2,
    "partial": 2,
    "stall": 1,
    "slow": 16,
}

CRASH_EXIT_CODE = 3
CRASH_MARKER = "faults-crash.marker"


class InjectedIOError(OSError):
    """Transient I/O fault raised by the injector (errno ``EIO``)."""

    def __init__(self, site: str):
        super().__init__(errno.EIO, f"injected fault: transient I/O error at {site}")
        self.site = site


def parse_spec(spec: str) -> tuple[str, dict[str, float], dict[str, int]]:
    """Split ``<seed>:<profiles>[:<budget>]`` into (seed, rates, budgets)."""
    parts = spec.split(":")
    if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
        raise ValueError(
            f"{ENV_SPEC} must look like '<seed>:<profile>[:<budget>]', got {spec!r}"
        )
    seed, profile_field = parts[0], parts[1]
    rates: dict[str, float] = {}
    for name in profile_field.replace(",", "+").split("+"):
        name = name.strip()
        if name not in PROFILES:
            raise ValueError(
                f"{ENV_SPEC} profile {name!r} unknown; "
                f"choose from {sorted(PROFILES)}"
            )
        for kind, rate in PROFILES[name].items():
            rates[kind] = max(rates.get(kind, 0.0), rate)
    budgets = {kind: DEFAULT_BUDGETS[kind] for kind in rates}
    if len(parts) == 3:
        try:
            cap = int(parts[2])
        except ValueError:
            raise ValueError(f"{ENV_SPEC} budget must be an integer, got {parts[2]!r}")
        if cap < 1:
            raise ValueError(f"{ENV_SPEC} budget must be >= 1, got {cap}")
        budgets = {kind: cap for kind in rates}
    return seed, rates, budgets


class FaultInjector:
    """One seeded fault schedule, independent per fault kind.

    Each kind draws from its own ``random.Random(f"{seed}/{kind}")``, so
    e.g. enabling ``slow`` on top of ``crash`` does not shift *where*
    the crash lands.  Instances record everything they inject in
    ``self.injected`` (list of ``(kind, site)``) for tests.
    """

    def __init__(self, spec: str):
        self.spec = spec
        self.seed, self.rates, self.budgets = parse_spec(spec)
        self._rng = {
            kind: random.Random(f"{self.seed}/{kind}") for kind in self.rates
        }
        self._spent = {kind: 0 for kind in self.rates}
        self._stall_until = 0.0
        self.injected: list[tuple[str, str]] = []

    # -- schedule --------------------------------------------------------

    def _decide(self, kind: str) -> bool:
        rng = self._rng.get(kind)
        if rng is None:
            return False
        if self._spent[kind] >= self.budgets[kind]:
            return False
        if rng.random() >= self.rates[kind]:
            return False
        self._spent[kind] += 1
        return True

    def _log(self, kind: str, site: str, **extra) -> None:
        self.injected.append((kind, site))
        obs.inc("faults.injected", fault=kind, site=site)
        obs.emit(
            f"injected {kind} at {site}",
            kind="fault",
            attrs={"fault": kind, "site": site, "spec": self.spec, **extra},
        )

    # -- seams -----------------------------------------------------------

    def maybe_io_error(self, site: str) -> None:
        """Raise a transient :class:`InjectedIOError` per the schedule."""
        if self._decide("io"):
            self._log("io", site)
            raise InjectedIOError(site)

    def mangle(self, site: str, data: bytes) -> bytes:
        """Possibly corrupt ``data``: truncate-at-k or flip a single bit."""
        if data and self._decide("partial"):
            k = self._rng["partial"].randrange(len(data))
            self._log("partial", site, kept_bytes=k, total_bytes=len(data))
            return data[:k]
        if data and self._decide("corrupt"):
            rng = self._rng["corrupt"]
            index = rng.randrange(len(data))
            bit = 1 << rng.randrange(8)
            self._log("corrupt", site, byte=index)
            flipped = bytearray(data)
            flipped[index] ^= bit
            return bytes(flipped)
        return data

    def slow_delay(self, site: str) -> float:
        """Return an extra delay (seconds) to sleep at ``site``."""
        if not self._decide("slow"):
            return 0.0
        delay = 0.02 + self._rng["slow"].random() * 0.08
        self._log("slow", site, delay=round(delay, 4))
        return delay

    def heartbeat_stalled(self, lease_timeout: float) -> bool:
        """True while lease heartbeats should be suppressed."""
        now = time.monotonic()
        if now < self._stall_until:
            return True
        if self._decide("stall"):
            self._stall_until = now + 2.0 * lease_timeout + 0.05
            self._log("stall", "broker.renew", window=round(2.0 * lease_timeout, 3))
            return True
        return False

    def maybe_crash(self, broker_directory: str | os.PathLike) -> None:
        """Hard-kill this worker process per the schedule.

        Only fires on the main thread (in-process test drainers run the
        worker loop on helper threads and must never take the whole
        test process down), and only once per broker directory across
        *all* processes — a cross-process one-shot marker keeps
        respawned workers from crash-looping until the queue gives up.
        """
        if threading.current_thread() is not threading.main_thread():
            return
        if not self._decide("crash"):
            return
        marker = pathlib.Path(broker_directory) / CRASH_MARKER
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            return  # another worker already spent the crash for this run
        os.close(fd)
        self._log("crash", "worker.point", exit_code=CRASH_EXIT_CODE)
        telemetry = obs.current()
        if telemetry is not None:
            try:
                telemetry.snapshot_event()
            except Exception:
                pass
        os._exit(CRASH_EXIT_CODE)


# Memoized on (spec, pid): forked pool workers must not inherit the
# parent's RNG positions, and repeated seam calls with REPRO_FAULTS
# unset must cost one dict probe.
_ACTIVE: tuple[str | None, int, FaultInjector | None] = ("", -1, None)
_OVERRIDE: list[FaultInjector | None] = []


def active() -> FaultInjector | None:
    """The process-wide injector, or ``None`` when chaos is off."""
    if _OVERRIDE:
        return _OVERRIDE[-1]
    global _ACTIVE
    spec = os.environ.get(ENV_SPEC)
    pid = os.getpid()
    cached_spec, cached_pid, injector = _ACTIVE
    if spec == cached_spec and pid == cached_pid:
        return injector
    injector = FaultInjector(spec) if spec else None
    _ACTIVE = (spec, pid, injector)
    return injector


class override:
    """Context manager pinning :func:`active` to a given injector (tests)."""

    def __init__(self, injector: FaultInjector | None):
        self.injector = injector

    def __enter__(self) -> FaultInjector | None:
        _OVERRIDE.append(self.injector)
        return self.injector

    def __exit__(self, *exc) -> None:
        _OVERRIDE.pop()
