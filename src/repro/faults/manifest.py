"""Crash-safe run manifests: a killed grid resumes where it died.

A manifest is an append-only JSONL file named by the *plan hash* — the
SHA-256 over the plan's sorted point keys (which already fold in every
config knob and the simulator source fingerprint).  The first line is a
header identifying the plan; each subsequent line records one completed
point as ``{"kind": "result", "key": ..., "payload": ..., "sha": ...}``
where ``sha`` is a digest of the line's own content.  Appends are
flushed (and fsynced when ``REPRO_FSYNC`` is on) per line, so a SIGKILL
mid-grid leaves at worst one torn final line — which the self-digest
detects and skips on reload.  Restarting the same plan with the same
manifest directory replays the recorded payloads through the normal
result-delivery path (``source="manifest"`` progress events) and only
schedules the remainder; the resumed grid converges to bit-identical
results.

Enable with ``REPRO_MANIFEST=1`` (directory from ``REPRO_MANIFEST_DIR``,
default ``benchmarks/results/manifests/``) or pass ``manifest=<dir>``
to ``run_plan``/``run_suite`` explicitly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Iterable

MANIFEST_SCHEMA_VERSION = 1

_TRUTHY_OFF = ("", "0", "false", "no", "off")


def manifest_enabled() -> bool:
    """``REPRO_MANIFEST`` -> write/replay run manifests (default off)."""
    raw = os.environ.get("REPRO_MANIFEST", "")
    return raw.strip().lower() not in _TRUTHY_OFF


def manifest_dir() -> pathlib.Path:
    """Where manifests live (``REPRO_MANIFEST_DIR`` overrides)."""
    override = os.environ.get("REPRO_MANIFEST_DIR")
    if override:
        return pathlib.Path(override)
    root = pathlib.Path(__file__).resolve().parents[3]
    if not (root / "pyproject.toml").is_file():
        root = pathlib.Path.cwd()
    return root / "benchmarks" / "results" / "manifests"


def plan_hash(keys: Iterable[str]) -> str:
    """Identity of a plan: SHA-256 over its sorted point keys."""
    digest = hashlib.sha256()
    for key in sorted(keys):
        digest.update(key.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _line_sha(kind: str, key: str, payload: dict) -> str:
    canonical = json.dumps({"kind": kind, "key": key, "payload": payload},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def resolve_manifest(manifest, keys: Iterable[str]) -> "RunManifest | None":
    """Map ``run_plan``'s ``manifest=`` argument to an open manifest.

    ``False`` disables outright; ``None`` defers to ``REPRO_MANIFEST``;
    ``True`` uses the default directory; a path-like selects a
    directory.  A passed-in :class:`RunManifest` is returned as-is.
    """
    if manifest is False:
        return None
    if isinstance(manifest, RunManifest):
        return manifest
    if manifest is None:
        if not manifest_enabled():
            return None
        directory = manifest_dir()
    elif manifest is True:
        directory = manifest_dir()
    else:
        directory = pathlib.Path(manifest)
    return RunManifest.open(directory, keys)


class RunManifest:
    """One plan's append-only completion log; see module docstring."""

    def __init__(self, path: pathlib.Path, plan: str,
                 completed: dict[str, dict], handle) -> None:
        self.path = path
        self.plan = plan
        self.completed = completed  # key -> recorded result payload
        self._handle = handle
        self._keys_recorded = set(completed)

    @classmethod
    def open(cls, directory: str | os.PathLike, keys: Iterable[str],
             ) -> "RunManifest":
        """Open (creating or resuming) the manifest for this plan."""
        keys = list(keys)
        wanted = set(keys)
        plan = plan_hash(keys)
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{plan[:32]}.jsonl"
        completed: dict[str, dict] = {}
        valid_header = False
        if path.is_file():
            try:
                lines = path.read_text().splitlines()
            except OSError:
                lines = []
            for index, line in enumerate(lines):
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn line (SIGKILL mid-append): skip
                if not isinstance(record, dict):
                    continue
                if index == 0:
                    valid_header = (record.get("kind") == "plan"
                                    and record.get("plan") == plan
                                    and record.get("v") == MANIFEST_SCHEMA_VERSION)
                    if not valid_header:
                        break  # different/newer plan squatting the name
                    continue
                if not valid_header or record.get("kind") != "result":
                    continue
                key = record.get("key")
                payload = record.get("payload")
                if (key in wanted and isinstance(payload, dict)
                        and record.get("sha") == _line_sha("result", key, payload)):
                    completed[key] = payload
        mode = "a" if valid_header else "w"
        handle = open(path, mode, encoding="utf-8")
        manifest = cls(path, plan, completed, handle)
        if not valid_header:
            manifest._append({"kind": "plan", "v": MANIFEST_SCHEMA_VERSION,
                              "plan": plan, "points": len(keys)})
        return manifest

    def _append(self, record: dict) -> None:
        from repro.faults import fsio
        try:
            self._handle.write(json.dumps(record, sort_keys=True,
                                          separators=(",", ":")) + "\n")
            self._handle.flush()
            if fsio.fsync_enabled():
                os.fsync(self._handle.fileno())
        except (OSError, ValueError):
            pass  # a failing manifest write must never fail the grid

    def record(self, key: str, payload: dict) -> None:
        """Append one completed point (idempotent per key)."""
        if key in self._keys_recorded:
            return
        self._keys_recorded.add(key)
        self._append({"kind": "result", "key": key, "payload": payload,
                      "sha": _line_sha("result", key, payload)})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass
