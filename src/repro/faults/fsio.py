"""Crash-durable atomic file writes shared by cache, broker and ledger.

``tmp + os.replace`` alone is atomic against *process* crashes but not
against *host* crashes: without an fsync before the rename, journaling
filesystems may surface an empty-but-renamed file after power loss.
:func:`atomic_write_bytes` fsyncs the tmp file (and, best-effort, its
directory) before the rename.  ``REPRO_FSYNC=0`` disables the fsyncs —
the test suite runs with them off, durability tests turn them back on.

This is also the single choke point where the fault injector mangles
data on its way to disk (partial writes, bit flips) and raises
transient I/O errors for broker sites, so every consumer of atomic
writes is chaos-testable through one seam.
"""

from __future__ import annotations

import os
import pathlib
import tempfile

from repro.faults import injector as _injector

_TRUTHY_OFF = ("", "0", "false", "no", "off")


def fsync_enabled() -> bool:
    """``REPRO_FSYNC`` -> fsync-before-rename on (default on)."""
    raw = os.environ.get("REPRO_FSYNC")
    if raw is None:
        return True
    return raw.strip().lower() not in _TRUTHY_OFF


def atomic_write_bytes(path: str | os.PathLike, data: bytes, *,
                       site: str | None = None,
                       fsync: bool | None = None) -> None:
    """Write ``data`` to ``path`` atomically and (by default) durably.

    ``site`` names the call seam for the fault injector ("cache.put",
    "broker.submit", ...); transient I/O errors are only injected at
    ``broker.*`` sites (broker calls are wrapped in a retry policy;
    cache/trace writes are not, their corruption is caught by content
    digests instead).  ``fsync=None`` defers to :func:`fsync_enabled`.
    """
    path = pathlib.Path(path)
    if site is not None:
        inj = _injector.active()
        if inj is not None:
            if site.startswith("broker."):
                inj.maybe_io_error(site)
            data = inj.mangle(site, data)
    if fsync is None:
        fsync = fsync_enabled()
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:
            return  # platforms without directory fds: file fsync stands
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)
