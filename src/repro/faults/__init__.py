"""Chaos harness + resilience policies for the experiment service.

Four small modules (DESIGN.md §12):

* :mod:`repro.faults.injector` — deterministic, seeded fault injection
  (``REPRO_FAULTS=<seed>:<profile>``) at the service's existing seams:
  broker I/O, cache/trace/queue file writes, worker execution and lease
  heartbeats.  Every injected fault is logged as an obs event.
* :mod:`repro.faults.fsio` — crash-durable atomic file writes (fsync
  before rename, ``REPRO_FSYNC``) shared by the cache, broker, trace
  store and ledger; also the single choke point where write-path faults
  (partial writes, bit flips, transient ``OSError``) are injected.
* :mod:`repro.faults.policy` — the unified resilience policy layer:
  :class:`~repro.faults.policy.RetryPolicy` (bounded attempts,
  exponential backoff, deterministic jitter), per-point deadlines
  (``REPRO_POINT_TIMEOUT``), the degradation knob (``REPRO_DEGRADE``)
  and the poison-job :class:`~repro.faults.policy.DeadletterStore`.
* :mod:`repro.faults.manifest` — crash-safe run manifests
  (``REPRO_MANIFEST``): a killed grid restarted with the same plan
  skips completed points and converges to bit-identical results.

Like the rest of the harness, nothing here can change a simulation
outcome: the package is excluded from the result-cache code
fingerprint, and with ``REPRO_FAULTS`` unset the injector is a single
memoized environment lookup.
"""

from repro.faults.injector import FaultInjector, InjectedIOError, active
from repro.faults.policy import (
    DeadletterStore,
    PointTimeout,
    RetriesExhausted,
    RetryPolicy,
    point_deadline,
)

__all__ = [
    "DeadletterStore",
    "FaultInjector",
    "InjectedIOError",
    "PointTimeout",
    "RetriesExhausted",
    "RetryPolicy",
    "active",
    "point_deadline",
]
