"""Persistent result cache for experiment points.

Completed :class:`~repro.pipeline.stats.SimulationResult`\\ s are stored as
JSON files under ``benchmarks/results/cache/`` (one file per point, named
by the plan content hash from :func:`repro.experiments.plan.point_key`).
Because the key covers every outcome-affecting knob, a hit can be replayed
verbatim: the deserialized result compares equal to a fresh run.

Robustness rules:

* a corrupted, truncated or schema-mismatched cache file is treated as a
  miss (and the point recomputed) — never an error; since format 2 every
  entry carries a SHA-256 digest of its result payload, so even a
  single flipped bit that still parses as JSON is detected as a miss
  rather than replayed as a silently different result;
* writes are atomic and durable (temp file + fsync + ``os.replace`` via
  :mod:`repro.faults.fsio`; ``REPRO_FSYNC=0`` drops the fsync) so a
  crashed run — or a crashed *host* — cannot leave a half-written entry
  that later loads;
* ``REPRO_CACHE=0`` disables caching entirely; ``REPRO_CACHE_DIR``
  relocates the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.faults import fsio
from repro.pipeline.stats import SimulationResult

#: Format version of the cache files themselves (distinct from the plan
#: schema, which versions the *key*); mismatched entries are misses.
#: v2 added the result-payload digest.
CACHE_FORMAT_VERSION = 2


def _result_digest(result_dict: dict) -> str:
    canonical = json.dumps(result_dict, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()

def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no")


def default_cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    # In a source checkout the store lives under benchmarks/results/; for
    # an installed package (no repo root above the module) fall back to
    # the working directory rather than writing into the interpreter
    # prefix.
    root = pathlib.Path(__file__).resolve().parents[3]
    if not (root / "pyproject.toml").is_file():
        root = pathlib.Path.cwd()
    return root / "benchmarks" / "results" / "cache"


class ResultCache:
    """Content-addressed JSON store of simulation results."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = pathlib.Path(directory) if directory is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """Load a cached result; any malformed entry is a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("cache format mismatch")
            if payload.get("sha256") != _result_digest(payload["result"]):
                raise ValueError("cache entry digest mismatch")
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Atomically and durably persist one result under its point key."""
        path = self._path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        result_dict = result.to_dict()
        payload = {"format": CACHE_FORMAT_VERSION, "key": key,
                   "result": result_dict,
                   "sha256": _result_digest(result_dict)}
        fsio.atomic_write_bytes(path, json.dumps(payload).encode(),
                                site="cache.put")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry (and any orphaned temp file left by a
        killed writer); returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed


def default_cache() -> ResultCache | None:
    """The process-wide default store, or ``None`` when caching is off."""
    return ResultCache() if cache_enabled() else None
