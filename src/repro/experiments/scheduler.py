"""Experiment scheduling: parallel (or serial) execution of a plan.

:func:`run_plan` takes an :class:`~repro.experiments.plan.ExperimentPlan`
and executes every point that is not already in the result cache, sharding
the remainder across a :class:`concurrent.futures.ProcessPoolExecutor`.
The worker count comes from ``REPRO_JOBS`` (default ``os.cpu_count()``);
``REPRO_JOBS=1`` is a deterministic serial fallback that never spawns
worker processes.

**In-worker batching** (``REPRO_BATCH``, default on): pending points are
grouped by workload identity — ``(benchmark, scale, seed)``, the
arguments of :func:`~repro.workloads.registry.get_program` — and each
worker receives a contiguous *batch* of same-benchmark points in one
submission.  The worker builds (and pre-decodes) the shared ``Program``
once per batch and amortizes the per-task pool overhead (pickling,
future bookkeeping, wakeups) across the batch.  Batches never mix
benchmarks, point keys and cache contents are exactly those of per-point
execution, and one failing point inside a batch does not discard its
siblings' completed results.  ``REPRO_BATCH=0`` (or ``batch=False``)
restores one-point-per-task submission.

**Trace sharing** (``REPRO_TRACE``, default on; DESIGN.md §8): within a
batch — and across a serial sweep — the ``redirect`` points of one
workload identity share a single recorded committed-instruction trace
(:mod:`repro.experiments.tracing`): the functional core runs once and
every timing configuration replays the stream, which amortizes far more
than the program build.  ``wrongpath`` points keep the live core.

Determinism: every point is an independent, fully seeded simulation, and
every result — computed serially, computed in a worker process (batched
or not), replayed from a shared trace, or replayed from the cache —
passes through the same ``SimulationResult.to_dict``/``from_dict`` round
trip, so the returned objects are bit-for-bit equal (``==``) no matter
which path produced them.

Progress is streamed through an optional callback receiving one
:class:`ProgressEvent` per completed point, in completion order: workers
tick the parent through a manager queue after *every* point (carrying
the batch id), so a large batched grid shows steady per-point progress
instead of stalling until whole batches land.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import queue as queue_module
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from repro.experiments.cache import ResultCache, default_cache
from repro.experiments.plan import (
    ExperimentPlan,
    ExperimentPoint,
    plan_from_points,
    point_key,
)
from repro.pipeline.stats import SimulationResult


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set and valid, else CPU count."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        jobs = 0
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def default_batching() -> bool:
    """In-worker point batching: on unless ``REPRO_BATCH`` disables it."""
    return os.environ.get("REPRO_BATCH", "1").strip().lower() not in (
        "0", "false", "no", "off")


@dataclass(frozen=True)
class ProgressEvent:
    """One completed point, streamed to the progress callback."""

    point: ExperimentPoint
    key: str
    completed: int            # points done so far (including this one)
    total: int                # points in the plan
    source: str               # "cache" | "serial" | "worker"
    elapsed: float            # seconds since run_plan started
    batch_id: str | None = None   # worker batch the point travelled in
    batch_size: int = 1           # points in that batch


ProgressCallback = Callable[[ProgressEvent], None]


def _relayable_exception(exc: Exception) -> Exception:
    """Make a worker exception safe to return across the process boundary.

    The worker traceback is attached as an exception note (the future
    machinery's ``_RemoteTraceback`` only decorates exceptions *raised*
    out of a task, not ones returned in a payload), and unpicklable
    exceptions are summarized into a plain ``RuntimeError`` so they can
    never poison the batch's return value and take sibling results down
    with them.
    """
    import pickle
    import traceback

    note = "worker traceback:\n" + traceback.format_exc()
    try:
        exc.add_note(note)
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - unpicklable or note-less exotica
        replacement = RuntimeError(f"{type(exc).__name__}: {exc}")
        replacement.add_note(note)
        return replacement


def _compute_batch(points: tuple[ExperimentPoint, ...],
                   batch_id: str | None = None,
                   ticker=None) -> list[tuple]:
    """Worker entry: simulate a same-benchmark batch of points.

    The workload registry caches the shared ``Program`` (and its
    pre-decoded table) per process, so it is built once for the whole
    batch — and under ``REPRO_TRACE`` the batch's ``redirect`` points
    share a single recorded committed trace, so the functional core runs
    once and every timing configuration replays it.  Failures are
    isolated per point — the batch returns ``("ok", payload)`` /
    ``("error", exception)`` entries positionally so sibling results
    still reach the parent (and its cache).

    ``ticker`` (a manager queue) receives ``(batch_id, index)`` after
    each completed point so the parent can stream per-point progress
    while the batch is still running.
    """
    from repro.experiments.runner import execute_point
    from repro.experiments.tracing import SharedTraces
    traces = SharedTraces(points)
    entries: list[tuple] = []
    for index, point in enumerate(points):
        try:
            result = execute_point(point, trace=traces.get(point))
        except Exception as exc:  # noqa: BLE001 - relayed to the parent
            entries.append(("error", _relayable_exception(exc)))
            continue
        entries.append(("ok", result.to_dict()))
        if ticker is not None:
            try:
                ticker.put((batch_id, index))
            except Exception:  # noqa: BLE001 - a dead manager must not
                ticker = None  # take the batch's results down with it
    return entries


def _make_batches(pending: list[ExperimentPoint],
                  jobs: int) -> list[tuple[ExperimentPoint, ...]]:
    """Group pending points into benchmark-pure worker batches.

    Points are grouped by workload identity (benchmark, scale, seed) in
    first-appearance order, and each group is split into contiguous
    near-equal chunks sized so the total batch count is about ``jobs`` —
    every worker stays busy, while no batch ever mixes workloads (the
    whole point of batching is one program build per batch).
    """
    groups: dict[tuple, list[ExperimentPoint]] = {}
    for point in pending:
        groups.setdefault(
            (point.benchmark, point.scale, point.seed), []).append(point)
    total = len(pending)
    batches: list[tuple[ExperimentPoint, ...]] = []
    for points in groups.values():
        share = max(1, min(len(points), round(jobs * len(points) / total)))
        size, extra = divmod(len(points), share)
        start = 0
        for chunk in range(share):
            stop = start + size + (1 if chunk < extra else 0)
            batches.append(tuple(points[start:stop]))
            start = stop
    return batches


def _pool_context():
    """Prefer fork so workers inherit sys.path (PYTHONPATH=src setups)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _ensure_worker_import_path() -> str | None:
    """Make ``repro`` importable in spawn-started workers.

    Spawn workers boot a fresh interpreter that must re-import this
    module to unpickle the submitted callable, so the parent's
    ``sys.path`` entry for an uninstalled ``src/`` checkout (e.g. added
    by pytest's ``pythonpath`` option) has to travel via ``PYTHONPATH``.
    Returns the previous value for :func:`_restore_worker_import_path`;
    the caller restores it once the pool has shut down (every lazily
    spawned worker exists by then).
    """
    previous = os.environ.get("PYTHONPATH")
    src_dir = str(pathlib.Path(__file__).resolve().parents[2])
    parts = previous.split(os.pathsep) if previous else []
    if src_dir not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_dir] + parts)
    return previous


def _restore_worker_import_path(previous: str | None) -> None:
    if previous is None:
        os.environ.pop("PYTHONPATH", None)
    else:
        os.environ["PYTHONPATH"] = previous


def run_plan(plan: ExperimentPlan, *, jobs: int | None = None,
             cache: ResultCache | None = None, use_cache: bool = True,
             progress: ProgressCallback | None = None,
             batch: bool | None = None,
             ) -> dict[ExperimentPoint, SimulationResult]:
    """Execute a plan; returns {resolved point -> result}.

    ``cache=None`` with ``use_cache=True`` uses the default store (honours
    ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``); pass ``use_cache=False`` to
    force recomputation without touching any store.  ``batch=None``
    honours ``REPRO_BATCH`` (default on): same-benchmark points travel to
    workers in batches; ``batch=False`` submits one point per task.
    """
    started = time.perf_counter()
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    batch = default_batching() if batch is None else bool(batch)
    if use_cache and cache is None:
        cache = default_cache()
    elif not use_cache:
        cache = None

    keys = {point: point_key(point) for point in plan}
    results: dict[ExperimentPoint, SimulationResult] = {}
    done = 0

    def emit(point: ExperimentPoint, source: str,
             batch_id: str | None = None, batch_size: int = 1) -> None:
        if progress is not None:
            progress(ProgressEvent(
                point=point, key=keys[point], completed=done,
                total=len(plan), source=source,
                elapsed=time.perf_counter() - started,
                batch_id=batch_id, batch_size=batch_size))

    pending: list[ExperimentPoint] = []
    for point in plan:
        hit = cache.get(keys[point]) if cache is not None else None
        if hit is not None:
            results[point] = hit
            done += 1
            emit(point, "cache")
        else:
            pending.append(point)

    if pending:
        if jobs == 1 or len(pending) == 1:
            from repro.experiments.runner import execute_point
            from repro.experiments.tracing import SharedTraces

            # The serial sweep shares recorded traces across its redirect
            # points exactly like a worker batch does.
            traces = SharedTraces(pending)
            for point in pending:
                payload = execute_point(
                    point, trace=traces.get(point)).to_dict()
                results[point] = _finish(point, payload, keys, cache)
                done += 1
                emit(point, "serial")
        else:
            batches = (_make_batches(pending, jobs) if batch
                       else [(point,) for point in pending])
            workers = min(jobs, len(batches))
            context = _pool_context()
            needs_path = context.get_start_method() != "fork"
            saved_path = _ensure_worker_import_path() if needs_path else None
            # Per-point progress ticks travel through a manager queue so
            # big batches do not look stalled; only created when someone
            # is listening.
            manager = context.Manager() if progress is not None else None
            ticker = manager.Queue() if manager is not None else None
            groups = {f"batch-{index}": group
                      for index, group in enumerate(batches)}

            def drain_ticker() -> None:
                nonlocal done
                if ticker is None:
                    return
                while True:
                    try:
                        batch_id, index = ticker.get_nowait()
                    except queue_module.Empty:
                        return
                    group = groups[batch_id]
                    done += 1
                    emit(group[index], "worker", batch_id=batch_id,
                         batch_size=len(group))

            try:
                with ProcessPoolExecutor(
                        max_workers=workers, mp_context=context) as pool:
                    futures = {
                        pool.submit(_compute_batch, group,
                                    batch_id=batch_id, ticker=ticker): group
                        for batch_id, group in groups.items()}
                    remaining = set(futures)
                    failure: Exception | None = None
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED,
                            timeout=0.05 if ticker is not None else None)
                        drain_ticker()
                        for future in finished:
                            group = futures[future]
                            try:
                                entries = future.result()
                            except Exception as exc:
                                # A whole-batch failure (e.g. a dead
                                # worker); keep draining so completed
                                # sibling batches still reach the cache.
                                if failure is None:
                                    failure = exc
                                continue
                            for point, (status, payload) in zip(
                                    group, entries):
                                if status != "ok":
                                    # Keep draining: sibling points that
                                    # completed must still reach the
                                    # cache so a retry only recomputes
                                    # the failed one.
                                    if failure is None:
                                        failure = payload
                                    continue
                                results[point] = _finish(
                                    point, payload, keys, cache)
                    # A worker's final ticks can land just after its
                    # future resolves; one last drain catches them.
                    drain_ticker()
                    if failure is not None:
                        raise failure
            finally:
                if manager is not None:
                    manager.shutdown()
                if needs_path:
                    _restore_worker_import_path(saved_path)

    # Return in plan order regardless of completion order.
    return {point: results[point] for point in plan}


def _finish(point: ExperimentPoint, payload: dict,
            keys: dict[ExperimentPoint, str],
            cache: ResultCache | None) -> SimulationResult:
    result = SimulationResult.from_dict(payload)
    if cache is not None:
        cache.put(keys[point], result)
    return result


def run_points(points, *, jobs: int | None = None,
               cache: ResultCache | None = None, use_cache: bool = True,
               progress: ProgressCallback | None = None,
               batch: bool | None = None,
               ) -> dict[ExperimentPoint, SimulationResult]:
    """Convenience wrapper: plan from explicit points, then run."""
    return run_plan(plan_from_points(points), jobs=jobs, cache=cache,
                    use_cache=use_cache, progress=progress, batch=batch)
