"""Experiment scheduling: execution of a plan over a pluggable backend.

:func:`run_plan` takes an :class:`~repro.experiments.plan.ExperimentPlan`
and executes every point that is not already in the result cache.  The
*where* is delegated to an :class:`~repro.experiments.backends.
ExecutionBackend` — in-process (``serial``), a local
``ProcessPoolExecutor`` (``local``), or a distributed work queue drained
by ``python -m repro.worker`` processes (``queue``) — selected via
``REPRO_BACKEND`` or the ``backend=`` argument; unset keeps the
historical behaviour (``REPRO_JOBS=1`` runs serially, more workers use
the local pool).  Point keys, cache bytes and progress events are
identical on every backend, so the result cache and per-point progress
ticks are backend-agnostic.

**In-worker batching** (``REPRO_BATCH``, default on): pending points are
grouped by workload identity — ``(benchmark, scale, seed)``, the
arguments of :func:`~repro.workloads.registry.get_program` — and each
worker receives a contiguous *batch* of same-benchmark points in one
submission.  The worker builds (and pre-decodes) the shared ``Program``
once per batch and amortizes the per-task overhead across the batch.
Batches never mix benchmarks, point keys and cache contents are exactly
those of per-point execution, and one failing point inside a batch does
not discard its siblings' completed results.  ``REPRO_BATCH=0`` (or
``batch=False``) restores one-point-per-task submission.

**Trace sharing** (``REPRO_TRACE``, default on; DESIGN.md §8): within a
batch — and across a serial sweep — the ``redirect`` points of one
workload identity share a single recorded committed-instruction trace
(:mod:`repro.experiments.tracing`); the queue backend additionally
*ships* the serialized trace inside each job, so a whole cluster shares
one functional run per workload.  ``wrongpath`` points keep the live
core.

Determinism: every point is an independent, fully seeded simulation, and
every result — computed serially, in a pool worker, on a queue worker,
replayed from a shared or shipped trace, or replayed from the cache —
passes through the same ``SimulationResult.to_dict``/``from_dict`` round
trip, so the returned objects are bit-for-bit equal (``==``) no matter
which path produced them (enforced by the cross-backend differential
suite).

Progress is streamed through an optional callback receiving one
:class:`ProgressEvent` per completed point, in completion order (plus
one ``phase="lower"`` event when a batch pays the one-time kernel
trace-lowering cost, so the first point never looks stalled).
Backends may report a point more than once (a queue batch that is
retried after a worker crash re-runs from its start); the scheduler
dedupes, so the callback still sees exactly one event per point with a
monotone ``completed`` counter and stable batch metadata.  Failures are
collected per point and the first one is raised once the grid has
drained — completed siblings always reach the cache first.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.experiments.backends import (
    BackendUnavailable,
    ExecutionBackend,
    _compute_batch,
    _make_batches,
    default_batching,
    default_jobs,
    degrade_target,
    resolve_backend,
)
from repro.experiments.cache import ResultCache, default_cache
from repro.experiments.plan import (
    ExperimentPlan,
    ExperimentPoint,
    plan_from_points,
    point_key,
)
from repro.faults.manifest import resolve_manifest
from repro.faults.policy import (
    DeadletterStore,
    deadletter_enabled,
    degrade_enabled,
)
from repro.pipeline.stats import SimulationResult

__all__ = [
    "ProgressCallback",
    "ProgressEvent",
    "default_batching",
    "default_jobs",
    "run_plan",
    "run_points",
]

# _compute_batch and _make_batches are re-exported above for callers and
# tests that address the batching helpers through the scheduler module
# (their home since PR 3); they live in backends.py now.


@dataclass(frozen=True)
class ProgressEvent:
    """One completed point, streamed to the progress callback."""

    point: ExperimentPoint
    key: str
    completed: int            # points done so far (including this one)
    total: int                # points in the plan
    source: str               # "cache" | "manifest" | "serial" | "worker"
                              # | "queue"
    elapsed: float            # seconds since run_plan started
    batch_id: str | None = None   # worker batch the point travelled in
    batch_size: int = 1           # points in that batch
    #: "point" for a completed point; "lower" for a batch's one-time
    #: trace-lowering pass (``point`` is then the batch's first point,
    #: and ``completed`` does not advance — no point finished yet).
    phase: str = "point"
    #: Wall-clock time the event was emitted (``time.time()``); pairs
    #: with the monotonic ``elapsed`` for cross-process correlation.
    timestamp: float = 0.0
    #: Seconds this point's simulation took, when the producing backend
    #: measured it (serial always; pool/queue workers ship it with their
    #: progress ticks).  None for cache hits and lower pseudo-events.
    duration: float | None = None


ProgressCallback = Callable[[ProgressEvent], None]


class _PlanReport:
    """Scheduler side of the backend protocol.

    Translates backend callbacks into cache writes, progress events and
    collected failures.  Ticks are deduplicated on (batch, index): a
    retried queue batch re-executes points whose ticks already streamed,
    and the callback must still see exactly one event per point with a
    monotone ``completed`` counter (the double-tick fix).
    """

    def __init__(self, batches: dict[str, tuple[ExperimentPoint, ...]],
                 source: str, emit, deliver, *,
                 wants_ticks: bool) -> None:
        self._batches = batches
        self._source = source
        self._emit = emit            # (point, source, batch_id, batch_size)
        self._deliver = deliver      # (point, payload, meta) -> None
        self._ticked: set[tuple[str, int]] = set()
        self.wants_ticks = wants_ticks
        self.failure: Exception | None = None
        self.failures: list[tuple[ExperimentPoint | None, Exception]] = []

    def tick(self, batch_id: str, index: int,
             duration: float | None = None) -> None:
        if (batch_id, index) in self._ticked:
            return
        self._ticked.add((batch_id, index))
        group = self._batches[batch_id]
        if index < 0:
            # Pseudo-tick (kernel.LOWER_TICK): the batch's one-time
            # trace-lowering pass ran — report it as its own phase so
            # the first point doesn't look stalled, without advancing
            # the completed counter.
            self._emit(group[0], self._source, batch_id, len(group),
                       phase="lower")
            return
        self._emit(group[index], self._source, batch_id, len(group),
                   duration=duration)

    def deliver(self, batch_id: str, index: int, payload: dict,
                meta: dict | None = None) -> None:
        self._deliver(self._batches[batch_id][index], payload, meta)

    def fail(self, batch_id: str, index: int | None,
             error: Exception) -> None:
        point = None if index is None else self._batches[batch_id][index]
        self.failures.append((point, error))
        if self.failure is None:
            self.failure = error


def run_plan(plan: ExperimentPlan, *, jobs: int | None = None,
             cache: ResultCache | None = None, use_cache: bool = True,
             progress: ProgressCallback | None = None,
             batch: bool | None = None,
             backend: "str | ExecutionBackend | None" = None,
             manifest=None,
             sink=None,
             ) -> dict[ExperimentPoint, SimulationResult]:
    """Execute a plan; returns {resolved point -> result}.

    ``cache=None`` with ``use_cache=True`` uses the default store (honours
    ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``); pass ``use_cache=False`` to
    force recomputation without touching any store.  ``batch=None``
    honours ``REPRO_BATCH`` (default on): same-benchmark points travel to
    workers in batches; ``batch=False`` submits one point per task.
    ``backend=None`` honours ``REPRO_BACKEND`` (``serial`` | ``local`` |
    ``queue``; unset = serial for one worker, local pool otherwise); it
    also accepts a configured :class:`~repro.experiments.backends.
    ExecutionBackend` instance.  ``manifest=None`` honours
    ``REPRO_MANIFEST`` (default off); a directory path or ``True``
    enables the crash-safe run manifest (``False`` forces it off): a
    killed grid restarted with the same plan replays the points its
    manifest recorded (``source="manifest"`` events) and executes only
    the remainder, converging to bit-identical results
    (:mod:`repro.faults.manifest`).

    ``sink`` attaches a live-view aggregator (duck-typed; see
    :class:`~repro.experiments.aggregate.ViewAggregator`): it receives
    every :class:`ProgressEvent` (``on_progress``), every delivered
    result — backend deliveries, cache hits and manifest replays alike
    (``on_result``) — and the final failure list (``on_failure``), so
    its materialized views converge to the same bytes post-hoc
    construction yields.  ``sink=None`` honours ``REPRO_SERVE``
    (default off): when set, the plan runs with an aggregator plus an
    HTTP/SSE view server (:mod:`repro.serve`) attached for its
    duration.
    """
    telemetry = None
    if obs.enabled() and obs.current() is None:
        # Outermost run_plan of the process owns the telemetry run; a
        # nested call (or one under a caller-managed run) just joins it.
        telemetry = obs.start_run(label="plan")
    try:
        with obs.span("plan", kind="plan", attrs={"points": len(plan)}):
            with _resolve_sink(sink) as live_sink:
                return _run_plan(plan, jobs=jobs, cache=cache,
                                 use_cache=use_cache, progress=progress,
                                 batch=batch, backend=backend,
                                 manifest=manifest, sink=live_sink)
    finally:
        if telemetry is not None:
            obs.close_run(telemetry)


def serve_requested() -> bool:
    """``REPRO_SERVE`` truthiness (default off)."""
    return os.environ.get("REPRO_SERVE", "0").strip().lower() not in (
        "", "0", "false", "no", "off")


def _resolve_sink(sink):
    """The live-view sink context for one run_plan call.

    An explicit sink is used as-is (its owner manages any server and
    its lifetime).  With no sink, ``REPRO_SERVE`` wires up the full
    streaming tier for the duration of the plan: a
    :class:`~repro.experiments.aggregate.ViewAggregator` plus a
    :class:`~repro.serve.ViewServer` on ``REPRO_SERVE_PORT``.  Imported
    lazily so the scheduler never pays for (or circularly imports) the
    serving tier unless it is actually on.
    """
    if sink is not None or not serve_requested():
        return contextlib.nullcontext(sink)
    from repro import serve

    return serve.autoserve()


def _run_plan(plan: ExperimentPlan, *, jobs, cache, use_cache, progress,
              batch, backend, manifest, sink=None,
              ) -> dict[ExperimentPoint, SimulationResult]:
    started = time.perf_counter()
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    batch = default_batching() if batch is None else bool(batch)
    if use_cache and cache is None:
        cache = default_cache()
    elif not use_cache:
        cache = None

    keys = {point: point_key(point) for point in plan}
    results: dict[ExperimentPoint, SimulationResult] = {}
    done = 0
    # Per-point event dedupe across *backend attempts*: when a backend
    # degrades mid-grid, a point that ticked in the aborted attempt but
    # re-runs under the fallback must not advance ``completed`` twice
    # (per-report tick dedupe can't see across reports).
    emitted: set[str] = set()

    def emit(point: ExperimentPoint, source: str,
             batch_id: str | None = None, batch_size: int = 1,
             phase: str = "point", duration: float | None = None) -> None:
        nonlocal done
        if phase == "point":
            if keys[point] in emitted:
                return
            emitted.add(keys[point])
            done += 1
        attrs = {"benchmark": point.benchmark,
                 "configuration": point.configuration,
                 "depth": point.pipeline_depth, "source": source,
                 "phase": phase, "completed": done, "total": len(plan)}
        if batch_id is not None:
            attrs["batch_id"] = batch_id
        if duration is not None:
            attrs["duration"] = round(duration, 6)
        obs.emit("progress", kind="point", attrs=attrs)
        if duration is not None:
            obs.observe_duration("point.duration", duration, source=source)
        if progress is not None or sink is not None:
            event = ProgressEvent(
                point=point, key=keys[point], completed=done,
                total=len(plan), source=source,
                elapsed=time.perf_counter() - started,
                batch_id=batch_id, batch_size=batch_size, phase=phase,
                timestamp=time.time(), duration=duration)
            if progress is not None:
                progress(event)
            if sink is not None:
                sink.on_progress(event)

    def sink_result(point: ExperimentPoint, source: str,
                    result: SimulationResult,
                    meta: dict | None = None) -> None:
        if sink is not None:
            sink.on_result(point, keys[point], result,
                           source=source, meta=meta)

    store = resolve_manifest(manifest, [keys[point] for point in plan])
    if sink is not None:
        sink.on_plan(plan, keys)
    try:
        pending: list[ExperimentPoint] = []
        for point in plan:
            hit = cache.get(keys[point]) if cache is not None else None
            if cache is not None:
                obs.inc("cache.hit" if hit is not None else "cache.miss")
            if hit is not None:
                results[point] = hit
                sink_result(point, "cache", hit)
                emit(point, "cache")
            elif store is not None and keys[point] in store.completed:
                # A previous (possibly killed) run of this exact plan
                # already completed the point; replay its recorded
                # payload through the normal delivery path.
                results[point] = _finish(point, store.completed[keys[point]],
                                         keys, cache)
                obs.inc("manifest.replayed")
                sink_result(point, "manifest", results[point])
                emit(point, "manifest")
            else:
                pending.append(point)

        def deliver(point: ExperimentPoint, payload: dict,
                    meta: dict | None = None) -> None:
            results[point] = _finish(point, payload, keys, cache)
            if store is not None:
                store.record(keys[point], payload)
            sink_result(point, engine.source, results[point], meta)

        report: _PlanReport | None = None
        engine = None
        while pending:
            if engine is None:
                engine = resolve_backend(backend, jobs=jobs,
                                         pending=len(pending))
            batches = (_make_batches(pending, jobs) if batch
                       else [(point,) for point in pending])
            groups = {f"batch-{index}": group
                      for index, group in enumerate(batches)}
            report = _PlanReport(groups, engine.source, emit, deliver,
                                 wants_ticks=(progress is not None
                                              or sink is not None
                                              or obs.current() is not None))
            try:
                engine.execute(groups, report, jobs=jobs)
                break
            except BackendUnavailable as exc:
                fallback = degrade_target(engine) if degrade_enabled() \
                    else None
                if fallback is None:
                    raise
                obs.inc("backend.degrade")
                obs.emit("degrade", kind="backend", attrs={
                    "from": engine.name, "to": fallback.name,
                    "reason": str(exc)[:300]})
                engine = fallback
                # Whatever the failed attempt already delivered stays
                # delivered; only the remainder moves down the ladder.
                # Its collected failures are attempt artifacts (the
                # fallback re-runs those points), so the report resets.
                pending = [p for p in pending if p not in results]
                report = None

        if report is not None and report.failure is not None:
            if sink is not None:
                # Final failures only: a degraded attempt's failures are
                # attempt artifacts (the fallback re-ran those points),
                # so the sink sees exactly what the caller is about to.
                for failed_point, error in report.failures:
                    sink.on_failure(
                        failed_point,
                        keys.get(failed_point) if failed_point is not None
                        else None,
                        error)
            quarantined = _quarantine(report.failures, keys)
            if quarantined is not None:
                report.failure.add_note(
                    f"{len(report.failures)} failed point(s) quarantined "
                    f"to {quarantined} (inspect with `python -m repro.obs "
                    f"deadletter`)")
            raise report.failure
    finally:
        if store is not None:
            store.close()

    # Return in plan order regardless of completion order.
    return {point: results[point] for point in plan}


def _quarantine(failures, keys) -> "str | None":
    """Write failed points to the deadletter store; returns its dir.

    Best-effort by design: quarantine is diagnostics, so an unwritable
    deadletter directory must never mask the original failure (the
    caller is about to raise it).
    """
    if not deadletter_enabled() or not failures:
        return None
    store = DeadletterStore()
    try:
        for point, error in failures:
            store.add({
                "point": point.to_dict() if point is not None else None,
                "key": keys.get(point) if point is not None else None,
                "error": {"type": type(error).__name__,
                          "message": str(error)},
                "history": list(getattr(error, "history", ())),
                "notes": list(getattr(error, "__notes__", ())),
            })
    except OSError:
        return None
    obs.emit("quarantined", kind="backend", attrs={
        "points": len(failures), "directory": str(store.directory)})
    return str(store.directory)


def _finish(point: ExperimentPoint, payload: dict,
            keys: dict[ExperimentPoint, str],
            cache: ResultCache | None) -> SimulationResult:
    result = SimulationResult.from_dict(payload)
    if cache is not None:
        cache.put(keys[point], result)
    return result


def run_points(points, *, jobs: int | None = None,
               cache: ResultCache | None = None, use_cache: bool = True,
               progress: ProgressCallback | None = None,
               batch: bool | None = None,
               backend: "str | ExecutionBackend | None" = None,
               manifest=None,
               sink=None,
               ) -> dict[ExperimentPoint, SimulationResult]:
    """Convenience wrapper: plan from explicit points, then run."""
    return run_plan(plan_from_points(points), jobs=jobs, cache=cache,
                    use_cache=use_cache, progress=progress, batch=batch,
                    backend=backend, manifest=manifest, sink=sink)
