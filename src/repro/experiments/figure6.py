"""Paper Figure 6: prediction accuracy and normalized IPC, 4 configs x 3 depths.

For each pipeline depth (20/40/60), the paper plots per benchmark:

* (a,c,e) prediction accuracy of the two-level 2Bc-gskew baseline and the
  three ARVI configurations (current value / load back / perfect value);
* (b,d,f) IPC normalized to the two-level baseline, with the suite
  average as the headline (paper: +12.6% at 20 stages for current value,
  +15.6% at 60 stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache
from repro.experiments.report import arithmetic_mean, format_table
from repro.experiments.runner import CONFIGURATIONS, run_suite
from repro.experiments.scheduler import ProgressCallback
from repro.pipeline.stats import SimulationResult
from repro.workloads.registry import BENCHMARKS


@dataclass
class Figure6Data:
    depth: int
    results: dict[tuple[str, str], SimulationResult] = field(
        default_factory=dict)

    # -- series ------------------------------------------------------------

    def accuracy(self, benchmark: str, configuration: str) -> float:
        return self.results[(benchmark, configuration)].prediction_accuracy

    def normalized_ipc(self, benchmark: str, configuration: str) -> float:
        base = self.results[(benchmark, "baseline")].ipc
        return self.results[(benchmark, configuration)].ipc / base

    def benchmarks(self) -> list[str]:
        return sorted({bench for bench, _ in self.results})

    def mean_normalized_ipc(self, configuration: str) -> float:
        return arithmetic_mean([
            self.normalized_ipc(bench, configuration)
            for bench in self.benchmarks()
        ])

    def mean_ipc_gain_percent(self, configuration: str) -> float:
        return 100.0 * (self.mean_normalized_ipc(configuration) - 1.0)

    # -- rendering ----------------------------------------------------------

    def accuracy_rows(self):
        return [
            [bench] + [self.accuracy(bench, config)
                       for config in CONFIGURATIONS]
            for bench in self.benchmarks()
        ]

    def ipc_rows(self):
        rows = [
            [bench] + [self.normalized_ipc(bench, config)
                       for config in CONFIGURATIONS]
            for bench in self.benchmarks()
        ]
        rows.append(["average"] + [self.mean_normalized_ipc(config)
                                   for config in CONFIGURATIONS])
        return rows

    def render(self) -> str:
        headers = ["benchmark", "2-level gskew", "arvi current",
                   "arvi load back", "arvi perfect"]
        acc = format_table(
            headers, self.accuracy_rows(),
            title=f"Figure 6: prediction accuracy, {self.depth}-stage",
            float_format="{:.4f}")
        ipc = format_table(
            headers, self.ipc_rows(),
            title=f"Figure 6: normalized IPC, {self.depth}-stage")
        return f"{acc}\n\n{ipc}"


def run_figure6(depth: int, *, scale: float | None = None,
                warmup: int | None = None,
                benchmarks=BENCHMARKS,
                configurations=CONFIGURATIONS,
                jobs: int | None = None, cache: ResultCache | None = None,
                use_cache: bool = True,
                progress: ProgressCallback | None = None,
                sink=None) -> Figure6Data:
    grid = run_suite(configurations, depths=(depth,), benchmarks=benchmarks,
                     scale=scale, warmup=warmup, jobs=jobs, cache=cache,
                     use_cache=use_cache, progress=progress, sink=sink)
    data = Figure6Data(depth=depth)
    for (benchmark, configuration, _), result in grid.items():
        data.results[(benchmark, configuration)] = result
    return data
