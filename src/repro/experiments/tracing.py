"""Trace acquisition policy and the persistent on-disk trace store.

The mechanics of recording and replaying a committed instruction stream
live in :mod:`repro.pipeline.trace`; this module decides *when* the
experiment service uses them and where recorded traces persist:

* :func:`trace_mode` — the ``REPRO_TRACE`` knob: ``"memory"`` (default)
  shares one in-memory recording across the redirect points of a worker
  batch or serial sweep; ``"disk"`` additionally persists traces so
  *cold single points* (and later processes) skip re-interpretation;
  ``"0"`` disables replay entirely.
* :class:`TraceStore` — content-addressed ``*.trace`` files next to the
  result cache (``benchmarks/results/traces/``, relocate with
  ``REPRO_TRACE_DIR``).  Keys include the same package source
  fingerprint the result cache uses (:func:`~repro.experiments.plan.
  code_fingerprint`), so editing the simulator or a workload strands
  stale traces under dead keys instead of replaying them; corrupted or
  truncated files are misses that trigger re-recording, never errors.
* :func:`kernel_mode` — the ``REPRO_KERNEL`` knob: whether replays of a
  committed trace go through the compiled array kernel
  (:mod:`repro.pipeline.kernel`, default) or the interpreted engine
  loop — results are bit-for-bit identical either way.
* :func:`spec_mode` — the ``REPRO_KERNEL_SPEC`` knob (default off):
  whether stream-kind replays additionally try the trace-specialized
  generated module (:mod:`repro.pipeline.specialize`) before the
  kernel — again bit-for-bit identical, just faster once generated.
* :class:`SharedTraces` — the per-batch/per-sweep pool.  Recording costs
  one functional run, so a trace is only recorded when it will amortize:
  at least two redirect points of the same workload identity
  (benchmark, scale, seed), or the disk store is on (the recording
  persists for future runs).  Wrong-path points always keep the live
  core — wrong-path synthesis reads live architectural state.

Changing this module never changes a simulation outcome (replay is
bit-for-bit, enforced by the equality suite), so like the rest of the
experiment harness it is excluded from the result-cache fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from collections import Counter

from repro import obs
from repro.faults import fsio
from repro.experiments.plan import ExperimentPoint, code_fingerprint
from repro.pipeline.functional import DEFAULT_MAX_INSTRUCTIONS
from repro.pipeline.trace import CommittedTrace, TraceError, TraceRecorder
from repro.workloads.registry import get_program

#: Versions the trace *key* payload (the file layout is versioned
#: separately by ``pipeline.trace.TRACE_FORMAT_VERSION``).
TRACE_KEY_SCHEMA_VERSION = 1


def trace_mode() -> str:
    """``REPRO_TRACE`` -> "off" | "memory" | "disk" (default "memory")."""
    raw = os.environ.get("REPRO_TRACE", "1").strip().lower()
    if raw in ("0", "false", "no", "off"):
        return "off"
    if raw == "disk":
        return "disk"
    return "memory"


def kernel_mode() -> bool:
    """``REPRO_KERNEL`` -> whether the compiled replay kernel is on.

    Default on: when a redirect ``baseline`` point replays a committed
    trace, :func:`~repro.experiments.runner.execute_point` lowers the
    trace (:mod:`repro.pipeline.kernel`) and evaluates the config as an
    array pass instead of the interpreted engine loop — bit-for-bit
    equal results, enforced by the equality suite and ``repro.bench``.
    Set ``REPRO_KERNEL=0`` to force the interpreted path everywhere.
    """
    raw = os.environ.get("REPRO_KERNEL", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


def spec_mode() -> bool:
    """``REPRO_KERNEL_SPEC`` -> whether trace-specialized replay is on.

    Default off.  When on (and the kernel is on), redirect points whose
    configuration the stream kernel expresses try the trace-specialized
    replay first: :mod:`repro.pipeline.specialize` generates a flattened
    per-workload replay module (constants baked, hot segments unrolled),
    caches the source content-addressed under ``REPRO_KERNEL_SPEC_DIR``
    (default ``benchmarks/results/specialized/``) and executes it —
    bit-for-bit equal to ``kernel_run`` (enforced by the equality suite
    and ``repro.bench``), ~1.4x faster once generated.  Anything the
    specializer cannot express falls through to the kernel, then the
    interpreted replay, exactly like ``REPRO_KERNEL`` fallbacks.
    """
    raw = os.environ.get("REPRO_KERNEL_SPEC", "0").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def default_trace_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_TRACE_DIR")
    if override:
        return pathlib.Path(override)
    root = pathlib.Path(__file__).resolve().parents[3]
    if not (root / "pyproject.toml").is_file():
        root = pathlib.Path.cwd()
    return root / "benchmarks" / "results" / "traces"


def trace_key(benchmark: str, scale: float, seed: int,
              max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> str:
    """Stable content hash identifying one workload's committed stream.

    The functional path is configuration-independent, so the key covers
    only what shapes the stream: the workload identity, the recording
    budget, and the package source fingerprint (any simulator or
    workload edit strands stale traces exactly like stale results).
    """
    payload = {
        "schema": TRACE_KEY_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "benchmark": benchmark,
        "scale": scale,
        "seed": seed,
        "max_instructions": max_instructions,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class TraceStore:
    """Content-addressed store of serialized committed traces."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = pathlib.Path(directory) if directory is not None \
            else default_trace_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed trace key {key!r}")
        return self.directory / f"{key}.trace"

    def get(self, key: str) -> CommittedTrace | None:
        """Load a stored trace; any malformed file is a miss."""
        try:
            trace = CommittedTrace.from_bytes(self._path(key).read_bytes())
        except (OSError, TraceError):
            self.misses += 1
            obs.inc("trace_store.cold")
            return None
        self.hits += 1
        obs.inc("trace_store.warm")
        return trace

    def put(self, key: str, trace: CommittedTrace) -> None:
        """Atomically and durably persist one trace under its key.

        Routed through :mod:`repro.faults.fsio` (fsync-before-rename,
        chaos-injectable): a mangled stored trace fails
        ``CommittedTrace.from_bytes`` validation on the next ``get`` and
        is simply re-recorded — the store is a cache, never an oracle.
        """
        path = self._path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        fsio.atomic_write_bytes(path, trace.to_bytes(), site="trace.put")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.trace"))

    def clear(self) -> int:
        """Delete every stored trace (and orphaned temp files)."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.trace"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed


def default_trace_store() -> TraceStore:
    return TraceStore()


def load_or_record(benchmark: str, scale: float, seed: int,
                   max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                   store: TraceStore | None = None) -> CommittedTrace:
    """Produce a workload's committed trace, via the disk store if on.

    A stored trace that fails validation against the freshly built
    program (a key collision or hand-copied file) is re-recorded and
    overwritten, mirroring the result cache's corrupt-entry policy.
    """
    program = get_program(benchmark, scale=scale, seed=seed)
    if store is None and trace_mode() == "disk":
        store = default_trace_store()
    key = None
    if store is not None:
        key = trace_key(benchmark, scale, seed, max_instructions)
        trace = store.get(key)
        if trace is not None:
            try:
                trace.validate_for(program)
                return trace
            except TraceError:
                pass  # stale under this key: re-record below
    with obs.span("record", kind="phase", attrs={
            "phase": "record", "benchmark": benchmark}):
        trace = TraceRecorder(program).record(max_instructions)
    if store is not None:
        store.put(key, trace)
    return trace


def _workload_key(point: ExperimentPoint) -> tuple[str, float | None, int]:
    return (point.benchmark, point.scale, point.seed)


class SharedTraces:
    """Per-batch (or per-serial-sweep) committed-trace pool.

    ``get`` returns the trace an :func:`~repro.experiments.runner.
    execute_point` call should replay, or None for a live run.  A trace
    is recorded at most once per workload identity and dropped from the
    pool as soon as its last consumer has fetched it, bounding memory
    across long serial sweeps.
    """

    def __init__(self, points) -> None:
        self._mode = trace_mode()
        self._remaining = Counter(
            _workload_key(point) for point in points
            if point.speculation == "redirect")
        self._traces: dict[tuple, CommittedTrace] = {}

    def get(self, point: ExperimentPoint) -> CommittedTrace | None:
        if self._mode == "off" or point.speculation != "redirect":
            return None
        key = _workload_key(point)
        remaining = self._remaining[key]
        self._remaining[key] = remaining - 1
        trace = self._traces.get(key)
        if trace is not None:
            if remaining <= 1:
                del self._traces[key]
            return trace
        if self._mode != "disk" and remaining < 2:
            # Recording costs a functional run; with nothing to amortize
            # against (and no store to persist into), live wins.
            return None
        trace = load_or_record(point.benchmark, point.scale, point.seed)
        if remaining > 1:
            self._traces[key] = trace
        return trace
