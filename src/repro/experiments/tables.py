"""Paper Tables 1-4 rendered from the implementation (not hard-coded prose).

Table 1 is the ARVI access-step list (structural); Table 2 the machine
parameters; Table 3 the benchmark suite; Table 4 the predictor sizes and
access latencies.  Each renderer pulls from the live configuration objects
so a config change is reflected in the regenerated table.
"""

from __future__ import annotations

from repro.core.arvi import ARVIConfig, ARVIPredictor
from repro.core.ddt import DDT
from repro.core.shadow import ShadowMapTable, ShadowRegisterFile
from repro.experiments.report import format_table
from repro.pipeline.config import (
    MachineConfig,
    machine_for_depth,
    table2_rows,
    table4_rows,
)
from repro.predictors.gskew import level1_gskew, level2_gskew
from repro.workloads.registry import table3_rows

TABLE1_STEPS = (
    ("1", "Read the data dependence chain from the DDT for the branch"),
    ("2", "Generate the register set from the dependence chain (RSE)"),
    ("3a", "Form a BVIT index from the XOR hash of register values"),
    ("3b", "Form a sum of the register set identifiers"),
    ("4", "Index the BVIT, compare the ID and depth tags, return a prediction"),
)


def render_table1() -> str:
    return format_table(["step", "action"], TABLE1_STEPS,
                        title="Table 1: ARVI access details")


def render_table2(config: MachineConfig | None = None) -> str:
    config = config or machine_for_depth(20)
    return format_table(["parameter", "value"], table2_rows(config),
                        title="Table 2: architectural parameters")


def render_table3() -> str:
    return format_table(
        ["benchmark", "data set", "paper window", "synthetic kernel"],
        table3_rows(),
        title="Table 3: SPEC95 integer benchmarks (synthetic stand-ins)")


SPECULATION_ROWS = (
    ("redirect",
     "accounting only: misprediction restarts fetch after resolve; "
     "no wrong-path instructions (seed-identical results)"),
    ("wrongpath",
     "materialized: checkpoint at the mispredicted branch, wrong-path "
     "fetch/rename/cache pollution, DDT rollback_to on resolve"),
)


def render_speculation_modes() -> str:
    """The engine's speculation models and their counters (DESIGN.md §2.2)."""
    counters = [
        ("wrong_path_instructions", "instructions fetched past a mispredict"),
        ("rollbacks / squashed_tokens", "in-engine DDT rollback_to activity"),
        ("memory.wrong_path_*", "cache/TLB pollution by squashed accesses"),
    ]
    modes = format_table(["mode", "model"], SPECULATION_ROWS,
                         title="Speculation modes (MachineConfig.speculation)")
    stats = format_table(["counter", "meaning"], counters,
                         title="Wrong-path counters (SimulationResult)")
    return f"{modes}\n\n{stats}"


def render_table4() -> str:
    rows = [
        [name, size, f"{l20}", f"{l40}", f"{l60}"]
        for name, size, l20, l40, l60 in table4_rows()
    ]
    return format_table(
        ["predictor", "size", "20-cycle", "40-cycle", "60-cycle"],
        rows, title="Table 4: predictor access latencies (cycles)")


def render_all(config: MachineConfig | None = None) -> dict[str, str]:
    """Every configuration-derived artifact, keyed by result name.

    Unlike the figures these need no simulation, so the experiment
    service runs them inline; the keys match the files the benchmark
    harness writes under ``benchmarks/results/``.
    """
    return {
        "table1_arvi_access": render_table1(),
        "table2_machine": render_table2(config),
        "table3_benchmarks": render_table3(),
        "table4_latencies": render_table4(),
        "section2_sizing": storage_summary(config),
        "speculation_modes": render_speculation_modes(),
    }


def storage_summary(config: MachineConfig | None = None) -> str:
    """Section 2 / Section 4 hardware sizing claims, recomputed.

    The paper's DDT example is an Alpha-21264-like machine: 80 ROB entries
    x 72 physical integer registers = 5760 bits = 720 bytes of RAM (the
    paper rounds to 730), plus an 80-bit valid vector; the shadow register
    file is 72 x 11 = 792 bits.
    """
    config = config or machine_for_depth(20)
    alpha_ddt = DDT(num_regs=72, num_entries=80)
    predictor = ARVIPredictor(ARVIConfig())
    eval_ddt = DDT(num_regs=config.num_phys_regs,
                   num_entries=config.rob_entries)
    shadow_vals = ShadowRegisterFile(config.num_phys_regs)
    shadow_map = ShadowMapTable(config.num_phys_regs)
    l1 = level1_gskew()
    l2 = level2_gskew()
    rows = [
        ("DDT (21264: 72 pregs x 80 ROB)",
         f"{alpha_ddt.storage_bits} bits = {alpha_ddt.storage_bytes} bytes"),
        ("Shadow register file (72 x 11b)",
         f"{ShadowRegisterFile(72).storage_bits} bits"),
        ("DDT (evaluated machine)",
         f"{eval_ddt.storage_bits} bits = {eval_ddt.storage_bytes} bytes"),
        ("Shadow register file (evaluated)",
         f"{shadow_vals.storage_bits} bits"),
        ("Shadow map table (evaluated)",
         f"{shadow_map.storage_bits} bits"),
        ("BVIT", f"{predictor.bvit.storage_bits} bits = "
         f"{predictor.bvit.storage_bits // 8192} KB"),
        ("ARVI total (BVIT + tracking)",
         f"{predictor.storage_bits(eval_ddt.storage_bits, shadow_vals.storage_bits + shadow_map.storage_bits) // 8192} KB"),
        ("Level-1 2Bc-gskew", f"{l1.storage_bits // 8192} KB"),
        ("Level-2 2Bc-gskew", f"{l2.storage_bits // 8192} KB"),
    ]
    return format_table(["structure", "storage"], rows,
                        title="Hardware storage summary (Sections 2 and 4)")
