"""Plain-text rendering of paper-style tables and figure series."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 *, title: str | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned text table (the harness's figure output format)."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                         for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
