"""Plain-text rendering of paper-style tables and figure series."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 *, title: str | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned text table (the harness's figure output format)."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                         for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


SPECULATION_HEADERS = (
    "benchmark", "config", "depth", "speculation", "IPC", "accuracy",
    "wrong-path", "wp/commit", "rollbacks", "wp fills",
)


def speculation_row(result) -> list[object]:
    """One table row surfacing a result's wrong-path/pollution counters.

    ``result`` is any :class:`~repro.pipeline.stats.SimulationResult`-like
    object; redirect-mode rows simply show zeros, so grids mixing both
    speculation modes render uniformly.  (``squashed_tokens`` is omitted:
    today every wrong-path instruction allocates exactly one DDT entry,
    so it duplicates the wrong-path column — the engine tests assert
    that invariant.)
    """
    return [
        result.benchmark, result.configuration, result.pipeline_depth,
        result.speculation, result.ipc, result.prediction_accuracy,
        result.wrong_path_instructions, result.wrong_path_ratio,
        result.rollbacks, result.wrong_path_fills,
    ]


def render_speculation_comparison(results: Iterable,
                                  *, title: str | None = None) -> str:
    """Render a grid of results (any mix of speculation modes) as a table.

    Rows are sorted (benchmark, config, depth, speculation) so the
    redirect/wrongpath pair for each point sits together; pass the merged
    values of two ``run_suite`` calls to compare modes without custom
    scripts.
    """
    rows = sorted((speculation_row(result) for result in results),
                  key=lambda row: (row[0], row[1], row[2], row[3]))
    return format_table(
        list(SPECULATION_HEADERS), rows,
        title=title or "Speculation modes: wrong-path and pollution counters")


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
