"""Experiment planning: sweep expansion and content-addressed point keys.

The paper's evaluation is a grid of independent simulation points —
benchmark x configuration x pipeline depth (Figures 5-6, Tables 3-5).
This module turns a sweep specification into an :class:`ExperimentPlan`:
a deduplicated, deterministically ordered tuple of fully *resolved*
:class:`ExperimentPoint`\\ s, each with a stable content-hash key.

The key covers everything that influences a simulation's outcome —
benchmark, configuration, pipeline depth, scale, warmup, seed and the
ARVI configuration — plus the result-schema version, so the cache layer
(:mod:`repro.experiments.cache`) can persist results across invocations
and replay them only when they are still valid.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, fields
from typing import Iterable, Sequence

from repro.core.arvi import ARVIConfig
from repro.pipeline.config import SPECULATION_MODES

CONFIGURATIONS = ("baseline", "current", "load back", "perfect")

#: Versions the *key format itself* (which fields the hash covers and
#: how); simulation-code changes are handled by :func:`code_fingerprint`.
#: v2: the speculation mode joined the key payload.
PLAN_SCHEMA_VERSION = 2


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the outcome-affecting source of the ``repro`` package.

    Folding this into the point key makes the persistent result cache
    self-invalidating: any change to the simulator (engine, predictors,
    workloads, ...) yields new keys, so stale results can never replay
    into regenerated figures — no manual version bump required.

    The experiment *harness* itself is excluded (all of ``experiments/``
    except ``runner.py``, whose ``execute_point`` maps configurations to
    predictors): editing the scheduler, the cache layer or a figure
    renderer cannot change a simulation outcome and must not invalidate
    hours of cached grid results.
    """
    root = pathlib.Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts[0] == "experiments" and rel.name != "runner.py":
            continue
        if rel.parts in (("worker.py",), ("serve.py",)):
            # Harness, not simulator: the queue worker entrypoint
            # funnels into the same execute_point as every other path,
            # and the view server only reads results.  Neither can
            # change what a point computes.
            continue
        if rel.parts[0] == "obs":
            # Telemetry observes; it never feeds back into a simulation
            # (identity suite in tests/obs/), so editing it must not
            # strand cached results or recorded traces.
            continue
        if rel.parts[0] == "faults":
            # The chaos/resilience harness injects, retries and resumes
            # around execute_point but never inside it: any fault it
            # injects is either retried away or surfaces as a typed
            # error, so editing it cannot change a cacheable outcome.
            continue
        digest.update(str(rel).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def default_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_warmup() -> int:
    return int(os.environ.get("REPRO_WARMUP", "10000"))


@dataclass(frozen=True)
class ExperimentPoint:
    """One cell of a paper figure: benchmark x configuration x depth.

    ``scale`` / ``warmup`` / ``seed`` / ``arvi_config`` may be left at
    their defaults (``None`` meaning "resolve from the environment"); the
    plan layer resolves them so that every scheduled point is fully
    self-describing and its key is stable.
    """

    benchmark: str
    configuration: str
    pipeline_depth: int
    scale: float | None = None
    warmup: int | None = None
    seed: int = 1
    arvi_config: ARVIConfig | None = None
    speculation: str = "redirect"

    def resolve(self, *, scale: float | None = None,
                warmup: int | None = None, seed: int | None = None,
                arvi_config: ARVIConfig | None = None,
                speculation: str | None = None) -> "ExperimentPoint":
        """Fill every unset knob: explicit override > point field > env."""
        scale = scale if scale is not None else self.scale
        warmup = warmup if warmup is not None else self.warmup
        arvi = arvi_config if arvi_config is not None else self.arvi_config
        if self.configuration == "baseline":
            # The baseline (two-level hybrid) never consults ARVI, so an
            # attached config must not fork its identity or cache key.
            arvi = None
        return ExperimentPoint(
            benchmark=self.benchmark,
            configuration=self.configuration,
            pipeline_depth=self.pipeline_depth,
            scale=default_scale() if scale is None else float(scale),
            warmup=default_warmup() if warmup is None else int(warmup),
            seed=self.seed if seed is None else int(seed),
            arvi_config=arvi,
            speculation=(self.speculation if speculation is None
                         else str(speculation)),
        )

    @property
    def grid_key(self) -> tuple[str, str, int]:
        """The (benchmark, configuration, depth) key ``run_suite`` returns."""
        return (self.benchmark, self.configuration, self.pipeline_depth)

    def to_dict(self) -> dict:
        """Lossless JSON-safe form (the queue backend's wire shape)."""
        arvi = self.arvi_config
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "pipeline_depth": self.pipeline_depth,
            "scale": self.scale,
            "warmup": self.warmup,
            "seed": self.seed,
            "speculation": self.speculation,
            "arvi": None if arvi is None else {
                f.name: getattr(arvi, f.name) for f in fields(ARVIConfig)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentPoint":
        """Inverse of :meth:`to_dict`; round-trips to an equal point."""
        arvi = payload["arvi"]
        return cls(
            benchmark=payload["benchmark"],
            configuration=payload["configuration"],
            pipeline_depth=int(payload["pipeline_depth"]),
            scale=payload["scale"],
            warmup=payload["warmup"],
            seed=int(payload["seed"]),
            arvi_config=None if arvi is None else ARVIConfig(**arvi),
            speculation=payload["speculation"],
        )

    def validate(self) -> None:
        if self.configuration not in CONFIGURATIONS:
            raise ValueError(
                f"unknown configuration {self.configuration!r}; "
                f"expected one of {CONFIGURATIONS}")
        if self.speculation not in SPECULATION_MODES:
            raise ValueError(
                f"unknown speculation mode {self.speculation!r}; "
                f"expected one of {SPECULATION_MODES}")


def point_key(point: ExperimentPoint) -> str:
    """Stable content hash identifying a resolved point's result.

    Canonical JSON over every outcome-affecting field (including the ARVI
    configuration field-by-field) hashed with SHA-256.  Unresolved points
    are resolved against the current environment first, so the key of
    ``ExperimentPoint("li", "current", 20)`` reflects the active
    ``REPRO_SCALE`` / ``REPRO_WARMUP``.
    """
    point = point.resolve()
    arvi = point.arvi_config
    payload = {
        "schema": PLAN_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "benchmark": point.benchmark,
        "configuration": point.configuration,
        "pipeline_depth": point.pipeline_depth,
        "scale": point.scale,
        "warmup": point.warmup,
        "seed": point.seed,
        "speculation": point.speculation,
        "arvi": None if arvi is None else {
            f.name: getattr(arvi, f.name) for f in fields(ARVIConfig)
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class ExperimentPlan:
    """A deduplicated, ordered set of resolved points ready to schedule."""

    points: tuple[ExperimentPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def build_plan(configurations: Sequence[str] = CONFIGURATIONS,
               depths: Sequence[int] = (20,),
               benchmarks: Iterable[str] = (), *,
               scale: float | None = None, warmup: int | None = None,
               seed: int = 1,
               arvi_config: ARVIConfig | None = None,
               speculation: str = "redirect") -> ExperimentPlan:
    """Expand a sweep into a plan (grid order: depth, benchmark, config)."""
    points = [
        ExperimentPoint(benchmark, configuration, depth).resolve(
            scale=scale, warmup=warmup, seed=seed, arvi_config=arvi_config,
            speculation=speculation)
        for depth in depths
        for benchmark in benchmarks
        for configuration in configurations
    ]
    return plan_from_points(points)


def plan_from_points(points: Iterable[ExperimentPoint]) -> ExperimentPlan:
    """Resolve, validate and deduplicate explicit points (order-stable)."""
    seen: dict[ExperimentPoint, None] = {}
    for point in points:
        point = point.resolve()
        point.validate()
        seen.setdefault(point)
    return ExperimentPlan(points=tuple(seen))
