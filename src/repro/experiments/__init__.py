"""Experiment harness regenerating every table and figure of the paper.

Layered as an experiment service (see DESIGN.md §6 and §9):

* :mod:`repro.experiments.plan`      — sweep expansion + content-hash keys;
* :mod:`repro.experiments.scheduler` — plan execution + progress/caching;
* :mod:`repro.experiments.backends`  — serial / local-pool / queue
  execution backends (``REPRO_BACKEND``);
* :mod:`repro.experiments.broker`    — the work-queue wire format and
  filesystem broker behind the queue backend;
* :mod:`repro.experiments.cache`     — persistent JSON result store;
* :mod:`repro.experiments.runner`    — the plan->schedule->cache facade.
"""

from repro.experiments.backends import (
    ExecutionBackend,
    LocalPoolBackend,
    QueueBackend,
    SerialBackend,
    default_backend_name,
)
from repro.experiments.broker import (
    FileBroker,
    MessageError,
    QueueError,
    RemotePointError,
)
from repro.experiments.cache import ResultCache, default_cache
from repro.experiments.figure5 import Figure5Data, run_figure5
from repro.experiments.figure6 import Figure6Data, run_figure6
from repro.experiments.plan import (
    ExperimentPlan,
    build_plan,
    plan_from_points,
    point_key,
)
from repro.experiments.report import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    render_speculation_comparison,
)
from repro.experiments.runner import (
    CONFIGURATIONS,
    ExperimentPoint,
    execute_point,
    run_point,
    run_suite,
)
from repro.experiments.scheduler import (
    ProgressEvent,
    default_jobs,
    run_plan,
    run_points,
)
from repro.experiments.tables import (
    render_all,
    render_speculation_modes,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    storage_summary,
)

__all__ = [
    "CONFIGURATIONS",
    "ExecutionBackend",
    "ExperimentPlan",
    "ExperimentPoint",
    "Figure5Data",
    "Figure6Data",
    "FileBroker",
    "LocalPoolBackend",
    "MessageError",
    "ProgressEvent",
    "QueueBackend",
    "QueueError",
    "RemotePointError",
    "ResultCache",
    "SerialBackend",
    "arithmetic_mean",
    "build_plan",
    "default_backend_name",
    "default_cache",
    "default_jobs",
    "execute_point",
    "format_table",
    "geometric_mean",
    "plan_from_points",
    "point_key",
    "render_all",
    "render_speculation_comparison",
    "render_speculation_modes",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_figure5",
    "run_figure6",
    "run_plan",
    "run_point",
    "run_points",
    "run_suite",
    "storage_summary",
]
