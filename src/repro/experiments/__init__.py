"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.figure5 import Figure5Data, run_figure5
from repro.experiments.figure6 import Figure6Data, run_figure6
from repro.experiments.report import (
    arithmetic_mean,
    format_table,
    geometric_mean,
)
from repro.experiments.runner import (
    CONFIGURATIONS,
    ExperimentPoint,
    run_point,
    run_suite,
)
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    storage_summary,
)

__all__ = [
    "CONFIGURATIONS",
    "ExperimentPoint",
    "Figure5Data",
    "Figure6Data",
    "arithmetic_mean",
    "format_table",
    "geometric_mean",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_figure5",
    "run_figure6",
    "run_point",
    "run_suite",
    "storage_summary",
]
