"""Streaming aggregation tier: per-point materialized views (DESIGN.md §14).

The figures and tables used to exist only *after* a grid drained — a
multi-hour sweep had no readable intermediate state.  This module turns
the scheduler's per-point progress/result stream into **materialized
views** updated as each point lands, on every backend:

* ``figure5``   — load-branch fraction per (benchmark, depth) and the
  calculated-vs-load accuracy split (paper Figure 5);
* ``figure6``   — accuracy + baseline-normalized IPC per depth, with
  the suite-average headline (paper Figure 6);
* ``speculation`` — the wrong-path/pollution comparison table
  (:func:`~repro.experiments.report.render_speculation_comparison`);
* ``benchmarks`` — per-benchmark rollups (points, mean IPC/accuracy,
  best-IPC cell);
* ``status``    — the run itself: points done/pending/failed, result
  sources, the ``trace_source``/``kernel_source`` mix, and per-phase
  timing rollups from ``phase_seconds``.

**Copy-on-write snapshots.**  Every applied event rebuilds the view
bodies from the accumulated per-point cells and publishes a fresh
immutable :class:`ViewSnapshot` with a monotonically increasing
version; readers (the :mod:`repro.serve` HTTP/SSE front end, or any
thread holding a reference) only ever touch a fully-built snapshot —
never a half-applied point.

**The view-identity invariant.**  The data views are *pure functions of
the final result set*: per-point scalars are stored in cells keyed by
the point's canonical identity, and every derived aggregate (means,
normalizations, table rows) is recomputed over the cells **in sorted
cell order** at snapshot-build time.  Arrival order therefore cannot
leak into the bytes — not even through float-summation order — so a
live-attached aggregator converges to views byte-identical to
:func:`build_views` run post-hoc over the finished results, across
serial/local/queue backends, under chaos schedules, and across a
SIGKILL + ``REPRO_MANIFEST`` resume (gated in
``tests/experiments/test_aggregate.py`` and CI's serve-smoke job).
Duplicate deliveries (requeued batches, manifest replays) are deduped
on the cell key; results are bit-identical per the standing invariant,
so first-wins is exact.  The ``status`` view describes the *run*, not
the results, and is excluded from the identity set.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro import obs
from repro.experiments.plan import ExperimentPoint
from repro.experiments.report import (
    SPECULATION_HEADERS,
    format_table,
    speculation_row,
)
from repro.pipeline.stats import SimulationResult

__all__ = [
    "ALL_VIEWS",
    "IDENTITY_VIEWS",
    "ViewAggregator",
    "ViewSnapshot",
    "build_views",
    "canonical_json",
    "identity_json",
    "views_from_env",
]

#: Views covered by the bit-for-bit view-identity invariant: pure
#: functions of the delivered result set.
IDENTITY_VIEWS = ("figure5", "figure6", "speculation", "benchmarks")

#: Every maintainable view; ``status`` is live-run metadata (sources,
#: timing rollups, failure counts) and deliberately outside the
#: identity set.
ALL_VIEWS = IDENTITY_VIEWS + ("status",)


def canonical_json(obj: Any) -> str:
    """The one serialization identity is defined over: sorted, compact."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def views_from_env() -> "tuple[str, ...] | None":
    """``REPRO_VIEWS`` -> view selection, or None for all.

    A comma-separated subset of :data:`ALL_VIEWS` (unset or ``all``
    keeps every view).  Unknown names are a hard error — a typo that
    silently dropped a view would look like an empty run.
    """
    import os

    raw = os.environ.get("REPRO_VIEWS", "").strip()
    if not raw or raw.lower() == "all":
        return None
    names = tuple(part.strip() for part in raw.split(",") if part.strip())
    unknown = sorted(set(names) - set(ALL_VIEWS))
    if unknown:
        raise ValueError(
            f"unknown REPRO_VIEWS entr{'ies' if len(unknown) > 1 else 'y'} "
            f"{unknown}; expected a comma-separated subset of "
            f"{list(ALL_VIEWS)}")
    return names


@dataclass(frozen=True)
class ViewSnapshot:
    """One immutable, fully-applied state of every maintained view.

    ``views`` maps view name -> JSON-ready body.  Snapshots are built
    copy-on-write: the aggregator never mutates a published snapshot's
    bodies, so readers may hold one indefinitely without locking.
    """

    version: int
    views: Mapping[str, Any]
    #: View names whose bytes changed vs. the previous version.
    changed: tuple[str, ...] = ()
    #: True once the producing run marked itself complete.
    done: bool = False

    def to_json(self) -> str:
        return canonical_json({
            "version": self.version, "done": self.done,
            "views": self.views})

    def view_json(self, name: str) -> str:
        return canonical_json(self.views[name])


def identity_json(snapshot: ViewSnapshot) -> str:
    """Canonical bytes of the identity views — the invariant's subject."""
    return canonical_json({name: snapshot.views[name]
                           for name in IDENTITY_VIEWS
                           if name in snapshot.views})


def _cell_id(point: ExperimentPoint) -> str:
    """Canonical per-point cell key: the point's full resolved identity.

    Content-addressed from ``to_dict`` (not :func:`~repro.experiments.
    plan.point_key`, which folds in the source fingerprint): stable
    across processes, so a served run and an in-process post-hoc build
    key their cells identically.
    """
    return canonical_json(point.to_dict())


# -- view builders ----------------------------------------------------------
#
# Each builder is a pure function of the sorted cell map.  Iteration is
# ALWAYS over sorted(cells) so float accumulation order — and with it
# the rendered bytes — is independent of delivery order.


def _sorted_cells(cells: Mapping[str, tuple[ExperimentPoint,
                                            SimulationResult]]):
    return sorted(cells.items())


def _figure5_view(cells) -> dict:
    """Figure 5 curves from the ``current``-configuration cells.

    ``accuracy`` reflects the shallowest depth present per benchmark
    (the canonical Figure 5(b) run probes the 20-stage machine, the
    minimum of ``PIPELINE_DEPTHS``).
    """
    load_rates: dict[str, dict[str, float]] = {}
    accuracy: dict[str, dict[str, float]] = {}
    best_depth: dict[str, int] = {}
    for _, (point, result) in _sorted_cells(cells):
        if point.configuration != "current":
            continue
        bench = point.benchmark
        load_rates.setdefault(bench, {})[str(point.pipeline_depth)] = \
            result.load_branch_rate
        if bench not in best_depth \
                or point.pipeline_depth < best_depth[bench]:
            best_depth[bench] = point.pipeline_depth
            accuracy[bench] = {
                "calculated": result.calculated.accuracy,
                "load": result.load.accuracy,
            }
    return {"load_rates": load_rates, "accuracy": accuracy}


def _figure6_view(cells) -> dict:
    """Figure 6 series: accuracy + normalized IPC per depth.

    ``normalized_ipc`` appears once a benchmark's ``baseline`` cell has
    landed (None until then — a live reader sees the view *grow toward*
    the final figure, never a wrong number); the per-depth
    ``mean_normalized_ipc`` averages only fully-normalizable cells.
    """
    depths: dict[str, dict[str, dict[str, dict]]] = {}
    for _, (point, result) in _sorted_cells(cells):
        bench_cells = depths.setdefault(
            str(point.pipeline_depth), {}).setdefault(point.benchmark, {})
        bench_cells[point.configuration] = {
            "accuracy": result.prediction_accuracy,
            "ipc": result.ipc,
            "normalized_ipc": None,
        }
    means: dict[str, dict[str, float]] = {}
    for depth, benches in sorted(depths.items()):
        totals: dict[str, list[float]] = {}
        for bench, configs in sorted(benches.items()):
            base = configs.get("baseline")
            for config, body in sorted(configs.items()):
                if base is not None and base["ipc"]:
                    body["normalized_ipc"] = body["ipc"] / base["ipc"]
                    totals.setdefault(config, []).append(
                        body["normalized_ipc"])
        means[depth] = {
            config: sum(values) / len(values)
            for config, values in sorted(totals.items())}
    return {"depths": depths, "mean_normalized_ipc": means}


def _speculation_view(cells) -> dict:
    """The speculation-comparison table, structured and rendered."""
    rows = sorted(
        (speculation_row(result) for _, (_, result) in _sorted_cells(cells)),
        key=lambda row: (row[0], row[1], row[2], row[3]))
    return {
        "headers": list(SPECULATION_HEADERS),
        "rows": rows,
        "rendered": format_table(
            list(SPECULATION_HEADERS), rows,
            title="Speculation modes: wrong-path and pollution counters"),
    }


def _benchmarks_view(cells) -> dict:
    """Per-benchmark rollups across every configuration and depth."""
    summary: dict[str, dict] = {}
    for _, (point, result) in _sorted_cells(cells):
        entry = summary.setdefault(point.benchmark, {
            "points": 0, "_ipc_sum": 0.0, "_acc_sum": 0.0,
            "configurations": set(), "depths": set(),
            "best_ipc": None,
        })
        entry["points"] += 1
        entry["_ipc_sum"] += result.ipc
        entry["_acc_sum"] += result.prediction_accuracy
        entry["configurations"].add(point.configuration)
        entry["depths"].add(point.pipeline_depth)
        best = entry["best_ipc"]
        if best is None or result.ipc > best["ipc"]:
            entry["best_ipc"] = {
                "configuration": point.configuration,
                "depth": point.pipeline_depth,
                "ipc": result.ipc,
            }
    return {
        bench: {
            "points": entry["points"],
            "mean_ipc": entry["_ipc_sum"] / entry["points"],
            "mean_accuracy": entry["_acc_sum"] / entry["points"],
            "configurations": sorted(entry["configurations"]),
            "depths": sorted(entry["depths"]),
            "best_ipc": entry["best_ipc"],
        }
        for bench, entry in sorted(summary.items())
    }


_BUILDERS: dict[str, Callable] = {
    "figure5": _figure5_view,
    "figure6": _figure6_view,
    "speculation": _speculation_view,
    "benchmarks": _benchmarks_view,
}


class ViewAggregator:
    """Incremental materialized views over the scheduler's event stream.

    The scheduler-facing half of the streaming tier: attach one as
    ``run_plan(..., sink=aggregator)`` (or let ``REPRO_SERVE`` do it)
    and it consumes the per-point stream — ``on_plan`` once,
    ``on_progress`` per :class:`~repro.experiments.scheduler.
    ProgressEvent`, ``on_result`` per delivered result (backend
    deliveries, cache hits and manifest replays alike; duplicates are
    deduped on the point's canonical cell id), ``on_failure`` for final
    failures — and republishes an immutable :class:`ViewSnapshot` after
    each applied event.

    Thread model: mutators are serialized by an internal lock (the
    scheduler calls them from one thread anyway); :meth:`snapshot` is a
    single attribute read of an immutable object, safe from any thread
    with no lock.  ``subscribe`` callbacks fire under the lock, in
    version order — keep them cheap and non-reentrant (the HTTP server
    just trampolines the delta onto its event loop).
    """

    def __init__(self, *, views: "Iterable[str] | None" = None) -> None:
        selected = tuple(views) if views is not None else ALL_VIEWS
        unknown = sorted(set(selected) - set(ALL_VIEWS))
        if unknown:
            raise ValueError(f"unknown view(s) {unknown}; expected a "
                             f"subset of {list(ALL_VIEWS)}")
        self._views = selected
        self._lock = threading.RLock()
        self._cells: dict[str, tuple[ExperimentPoint, SimulationResult]] = {}
        self._cell_meta: dict[str, dict] = {}
        self._sources: dict[str, int] = {}
        self._failures: list[dict] = []
        self._total: "int | None" = None
        self._ticked: set[str] = set()
        self._lower_ticks = 0
        self._done = False
        self._rendered: dict[str, str] = {}
        self._subscribers: list[Callable[[dict], None]] = []
        self.duplicates = 0
        self._snapshot = ViewSnapshot(version=0, views=self._build_views())

    # -- scheduler protocol --------------------------------------------------

    def on_plan(self, plan, keys: Mapping[ExperimentPoint, str]) -> None:
        """A run over ``plan`` is starting (idempotent across resumes)."""
        with self._lock:
            self._total = len(plan)
            self._publish()

    def on_progress(self, event) -> None:
        """One scheduler ProgressEvent (``phase`` "point" or "lower")."""
        with self._lock:
            if event.phase == "lower":
                self._lower_ticks += 1
            else:
                self._ticked.add(event.key)
            self._publish()

    def on_result(self, point: ExperimentPoint, key: "str | None",
                  result: SimulationResult, *, source: str = "unknown",
                  meta: "dict | None" = None) -> None:
        """A point's result landed (at-least-once; first delivery wins)."""
        with self._lock:
            cell = _cell_id(point)
            if cell in self._cells:
                self.duplicates += 1
                return
            self._cells[cell] = (point, result)
            if meta:
                self._cell_meta[cell] = meta
            self._sources[source] = self._sources.get(source, 0) + 1
            self._publish()

    def on_failure(self, point: "ExperimentPoint | None",
                   key: "str | None", error: Exception) -> None:
        """A point (or whole batch, ``point=None``) finally failed."""
        with self._lock:
            self._failures.append({
                "point": point.to_dict() if point is not None else None,
                "error": f"{type(error).__name__}: {error}",
            })
            self._publish()

    def mark_done(self) -> None:
        """The producing run is over; the current snapshot is final."""
        with self._lock:
            if not self._done:
                self._done = True
                self._publish()

    # -- read side -----------------------------------------------------------

    def snapshot(self) -> ViewSnapshot:
        """The latest fully-applied snapshot (lock-free, any thread)."""
        return self._snapshot

    def subscribe(self, callback: Callable[[dict], None]):
        """Register a delta callback; returns an unsubscribe callable.

        Each delta is ``{"version", "changed", "views": {changed-name:
        body}, "done"}`` — a reader holding snapshot ``v`` reconstructs
        ``v+1`` by replacing the changed views wholesale (the SSE
        protocol, DESIGN.md §14).
        """
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)
        return unsubscribe

    # -- internals -----------------------------------------------------------

    def _build_views(self) -> dict[str, Any]:
        views: dict[str, Any] = {}
        for name in self._views:
            if name == "status":
                views[name] = self._status_view()
            else:
                views[name] = _BUILDERS[name](self._cells)
        return views

    def _status_view(self) -> dict:
        trace_mix: dict[str, int] = {}
        kernel_mix: dict[str, int] = {}
        phase_cells: dict[str, list[float]] = {}
        for cell in sorted(self._cell_meta):
            meta = self._cell_meta[cell]
            for mix, field in ((trace_mix, "trace_source"),
                               (kernel_mix, "kernel_source")):
                value = meta.get(field)
                if value:
                    mix[value] = mix.get(value, 0) + 1
            for phase, seconds in sorted(
                    (meta.get("phase_seconds") or {}).items()):
                phase_cells.setdefault(phase, []).append(float(seconds))
        done = len(self._cells)
        return {
            "done": done,
            "total": self._total,
            "pending": max(self._total - done, 0)
            if self._total is not None else None,
            "failed": len(self._failures),
            "failures": list(self._failures),
            "sources": dict(sorted(self._sources.items())),
            "trace_sources": dict(sorted(trace_mix.items())),
            "kernel_sources": dict(sorted(kernel_mix.items())),
            # Sorted-cell accumulation: the rollup is a function of the
            # meta *set*, not of delivery order.
            "phase_seconds": {
                phase: round(sum(values), 6)
                for phase, values in sorted(phase_cells.items())},
            "ticks": len(self._ticked),
            "lower_ticks": self._lower_ticks,
            "complete": self._done,
        }

    def _publish(self) -> None:
        """Rebuild, diff, and swap in a fresh snapshot (caller holds lock)."""
        previous = self._snapshot
        with obs.span("view_update", kind="view", attrs={
                "results": len(self._cells),
                "version": previous.version + 1}):
            views = self._build_views()
        rendered = {name: canonical_json(body)
                    for name, body in views.items()}
        changed = tuple(sorted(
            name for name, body in rendered.items()
            if self._rendered.get(name) != body))
        if not changed and previous.done == self._done \
                and previous.version > 0:
            return  # byte-identical: publishing would be a no-op delta
        self._rendered = rendered
        snapshot = ViewSnapshot(
            version=previous.version + 1, views=views,
            changed=changed, done=self._done)
        self._snapshot = snapshot
        obs.inc("views_updated_total", value=max(len(changed), 1))
        delta = {
            "version": snapshot.version,
            "changed": list(changed),
            "views": {name: views[name] for name in changed},
            "done": snapshot.done,
        }
        for callback in list(self._subscribers):
            callback(delta)


def build_views(results: Mapping[ExperimentPoint, SimulationResult], *,
                views: "Iterable[str] | None" = None) -> ViewSnapshot:
    """Post-hoc view construction — the invariant's reference side.

    Feeds a finished ``{point: result}`` mapping (``run_plan``'s return
    shape) through a fresh aggregator.  A live-attached aggregator's
    identity views must equal this function's output byte-for-byte
    (:func:`identity_json`); the ``status`` view will differ — it
    describes the run that produced the results, and this one had none.
    """
    aggregator = ViewAggregator(views=views)
    for point, result in results.items():
        aggregator.on_result(point, None, result, source="posthoc")
    aggregator.mark_done()
    return aggregator.snapshot()
