"""Work-queue broker for the distributed experiment backend.

Two independent pieces live here (DESIGN.md §9):

* **The wire format** — :func:`encode_message` / :func:`decode_message`
  frame every queue payload (job descriptions, result envelopes) as
  ``magic | u32 body length | canonical-JSON body | raw blob``.  The
  body carries a SHA-256 digest over the canonical body-minus-digest
  plus the blob, so *any* truncation or bit flip — in the framing, the
  JSON, the digest itself or the blob — raises :class:`MessageError`.
  Nothing transport-corrupted can ever decode into a silently different
  job or result.  The blob slot ships binary sidecars (a serialized
  :class:`~repro.pipeline.trace.CommittedTrace`) without base64 bloat.
* **The queue** — :class:`FileBroker`, a single-directory work queue
  (``queue/`` → ``leased/`` → ``results/`` plus a ``ticks/`` progress
  stream) whose only primitives are atomic rename and atomic
  write-then-rename, so any filesystem shared between the scheduler and
  its workers (local disk for subprocess workers, NFS for a cluster)
  works unchanged.  The message layer above is transport-agnostic: a
  socket broker would reuse :func:`encode_message` verbatim.

Queue state machine (the scheduler side lives in
:class:`~repro.experiments.backends.QueueBackend`):

* ``submit`` writes a job message into ``queue/``;
* a worker ``lease``\\ s by atomically renaming the file into
  ``leased/`` — rename either succeeds for exactly one worker or raises,
  so no job is ever double-leased;
* the lease heartbeat is a **monotonic counter** in a ``.hb`` sidecar
  next to the leased file: ``renew`` (and every per-point ``tick``)
  increments it, and :meth:`FileBroker.expired` reports jobs whose
  counter has not advanced for ``lease_timeout`` seconds *of the
  scheduler's own monotonic clock* — immune to wall-clock skew between
  hosts and to coarse-mtime filesystems.  The file mtime (also touched
  by ``renew``) remains the fallback for a lease this scheduler has
  never observed before, e.g. one taken before the scheduler restarted;
* ``complete`` atomically publishes a result message into ``results/``
  and releases the lease; :meth:`FileBroker.collect_results` consumes
  result files, surfacing undecodable ones as :class:`MessageError`
  values (the scheduler retries those with the same bounded-attempt
  machinery as an expired lease — a corrupt payload is never an answer
  and never silently dropped).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
import time
from dataclasses import dataclass

from repro.faults import fsio
from repro.faults.injector import active as _faults_active
from repro.faults.policy import RetriesExhausted, RetryPolicy

#: Versions the framing + digest rules; mismatches are decode errors.
MESSAGE_FORMAT_VERSION = 1

_MAGIC = b"REPROQMS"


class QueueError(RuntimeError):
    """A queue operation failed (transport, lease, or retry exhaustion)."""


class MessageError(QueueError):
    """A queue message is malformed, truncated, or fails its checksum."""


class RemotePointError(QueueError):
    """A worker failed to simulate one point; carries the remote detail."""


def _canonical(header: dict) -> bytes:
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode()


def encode_message(kind: str, payload: dict, blob: bytes = b"") -> bytes:
    """Frame one message: magic, body length, digested JSON body, blob."""
    header = {
        "format": MESSAGE_FORMAT_VERSION,
        "kind": kind,
        "payload": payload,
        "blob_len": len(blob),
    }
    header["sha256"] = hashlib.sha256(_canonical(header) + blob).hexdigest()
    body = _canonical(header)
    return _MAGIC + struct.pack("<I", len(body)) + body + blob


@dataclass(frozen=True)
class Message:
    """One decoded (and integrity-verified) queue message."""

    kind: str
    payload: dict
    blob: bytes


def decode_message(data: bytes) -> Message:
    """Parse a framed message; any corruption raises :class:`MessageError`.

    The checksum covers the canonical body and the blob, so the JSON
    payload, the counts, the digest field and the binary sidecar are all
    tamper-evident — a bit-flipped message can never decode into a
    different job or result.
    """
    try:
        if data[:8] != _MAGIC:
            raise MessageError("bad queue-message magic")
        (body_len,) = struct.unpack_from("<I", data, 8)
        body = data[12:12 + body_len]
        if len(body) != body_len:
            raise MessageError(
                f"truncated message body ({len(body)} of {body_len} bytes)")
        header = json.loads(body.decode())
        if header.get("format") != MESSAGE_FORMAT_VERSION:
            raise MessageError(
                f"queue-message format {header.get('format')!r} != "
                f"{MESSAGE_FORMAT_VERSION}")
        blob = bytes(data[12 + body_len:])
        if len(blob) != header["blob_len"]:
            raise MessageError(
                f"blob is {len(blob)} bytes, header says "
                f"{header['blob_len']}")
        stated = header.pop("sha256")
        actual = hashlib.sha256(_canonical(header) + blob).hexdigest()
        if stated != actual:
            raise MessageError("queue-message checksum mismatch")
        return Message(kind=header["kind"], payload=header["payload"],
                       blob=blob)
    except MessageError:
        raise
    except Exception as exc:  # truncated/garbage input of any shape
        raise MessageError(f"malformed queue message: {exc}") from exc


@dataclass(frozen=True)
class LeasedJob:
    """One job a worker holds: its id plus the decoded message (``None``
    when the stored file itself failed to decode — the worker reports
    that back so the scheduler can retry from its pristine copy)."""

    job_id: str
    message: Message | None
    error: str | None = None


class FileBroker:
    """Single-directory work queue shared by scheduler and workers."""

    def __init__(self, directory: str | os.PathLike, *,
                 lease_timeout: float = 30.0) -> None:
        self.directory = pathlib.Path(directory)
        self.lease_timeout = float(lease_timeout)
        self.queue_dir = self.directory / "queue"
        self.leased_dir = self.directory / "leased"
        self.results_dir = self.directory / "results"
        self.ticks_dir = self.directory / "ticks"
        for path in (self.queue_dir, self.leased_dir, self.results_dir,
                     self.ticks_dir):
            path.mkdir(parents=True, exist_ok=True)
        # Read offset per tick file, so drain_ticks is incremental.
        self._tick_offsets: dict[str, int] = {}
        # Scheduler-side heartbeat tracking: job -> (last counter value,
        # monotonic instant we saw it change).  Worker-side: job -> the
        # counter value this process last wrote.
        self._hb_seen: dict[str, tuple[int | None, float]] = {}
        self._hb_counts: dict[str, int] = {}
        # Transient-I/O policy for submit/complete/tick (backoff knob
        # shared with the queue's job-level retries via the env).
        self._retry = RetryPolicy.from_env(max_attempts=3)

    # -- low-level helpers ---------------------------------------------------

    @staticmethod
    def _check_job_id(job_id: str) -> str:
        if not job_id or any(c in job_id for c in "/\\\0") \
                or job_id.startswith("."):
            raise ValueError(f"malformed job id {job_id!r}")
        return job_id

    def _atomic_write(self, path: pathlib.Path, data: bytes, *,
                      site: str | None = None) -> None:
        fsio.atomic_write_bytes(path, data, site=site)

    def _hb_path(self, job_id: str) -> pathlib.Path:
        return self.leased_dir / f"{job_id}.hb"

    def _write_heartbeat(self, job_id: str, count: int) -> None:
        try:
            # No fsync: heartbeats are advisory liveness, not results.
            fsio.atomic_write_bytes(self._hb_path(job_id),
                                    str(count).encode(), fsync=False)
        except OSError:
            pass

    def _read_heartbeat(self, job_id: str) -> int | None:
        try:
            return int(self._hb_path(job_id).read_bytes())
        except (OSError, ValueError):
            return None

    def _forget_lease(self, job_id: str) -> None:
        self._hb_seen.pop(job_id, None)
        self._hb_counts.pop(job_id, None)
        try:
            os.unlink(self._hb_path(job_id))
        except OSError:
            pass

    # -- scheduler side ------------------------------------------------------

    def submit(self, job_id: str, payload: dict, blob: bytes = b"") -> None:
        """Enqueue one job message (atomically visible to workers).

        Transient ``OSError`` (real or injected) is retried under the
        broker's :class:`~repro.faults.policy.RetryPolicy`; exhaustion
        raises the typed :class:`~repro.faults.policy.RetriesExhausted`.
        """
        self._check_job_id(job_id)
        data = encode_message("job", payload, blob)
        self._retry.call(
            lambda: self._atomic_write(self.queue_dir / f"{job_id}.msg",
                                       data, site="broker.submit"),
            key=f"submit/{job_id}", what=f"submit of job {job_id}")

    def remove(self, job_id: str) -> None:
        """Withdraw a job from the queue and release any lease on it."""
        self._check_job_id(job_id)
        for directory in (self.queue_dir, self.leased_dir):
            try:
                os.unlink(directory / f"{job_id}.msg")
            except OSError:
                pass
        self._forget_lease(job_id)

    def drain_ticks(self) -> list[tuple[str, int, float | None]]:
        """New per-point progress ticks since the last drain.

        Each worker appends ``"<index>\\n"`` or ``"<index>:<seconds>\\n"``
        lines to its job's tick file (the second form carries the
        point's compute duration for progress telemetry); only complete
        lines are consumed (a torn final line is left for the next
        drain), and unparseable lines are skipped — ticks are progress
        hints, never results.  Yields ``(job_id, index, duration)``
        with ``duration=None`` for bare-index lines.
        """
        ticks: list[tuple[str, int, float | None]] = []
        for path in sorted(self.ticks_dir.glob("*.ticks")):
            job_id = path.stem
            offset = self._tick_offsets.get(job_id, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            complete = chunk.rfind(b"\n") + 1
            self._tick_offsets[job_id] = offset + complete
            for line in chunk[:complete].splitlines():
                index_part, _, dur_part = line.partition(b":")
                try:
                    index = int(index_part)
                    duration = float(dur_part) if dur_part else None
                except ValueError:
                    continue
                ticks.append((job_id, index, duration))
            # A requeued job's ticks restart from index 0; truncation is
            # impossible (append-only), so offsets only grow.
        return ticks

    def collect_results(self) -> list[tuple[str, Message | MessageError]]:
        """Consume result files; corrupt ones surface as MessageError."""
        collected: list[tuple[str, Message | MessageError]] = []
        for path in sorted(self.results_dir.glob("*.msg")):
            try:
                data = path.read_bytes()
            except OSError:
                continue
            try:
                outcome: Message | MessageError = decode_message(data)
            except MessageError as exc:
                outcome = exc
            try:
                os.unlink(path)
            except OSError:
                pass
            collected.append((path.stem, outcome))
        return collected

    def expired(self) -> list[str]:
        """Leased jobs whose heartbeat has stalled for ``lease_timeout``.

        Liveness is judged by the monotonic heartbeat *counter* in the
        lease's ``.hb`` sidecar, aged against this process's own
        monotonic clock — wall-clock skew between scheduler and worker
        hosts cannot misfire it.  A lease observed for the first time
        (taken before this scheduler started watching) falls back to the
        file-mtime test once, then joins counter tracking.  That
        one-shot test carries a staleness floor of one observation
        interval (never less than a second): filesystems may round
        ``st_mtime`` to whole seconds, so with a sub-second
        ``lease_timeout`` a lease taken *just now* could otherwise look
        up to a second stale and be expired before its worker ever had
        a chance to heartbeat.  Genuinely orphaned leases (minutes or
        hours old) still expire on first sight.
        """
        now = time.monotonic()
        slack = max(1.0, self.lease_timeout)
        mtime_deadline = time.time() - self.lease_timeout - slack
        stale = []
        for path in self.leased_dir.glob("*.msg"):
            job_id = path.stem
            try:
                mtime = path.stat().st_mtime
            except OSError:
                self._hb_seen.pop(job_id, None)
                continue  # completed/withdrawn between glob and stat
            count = self._read_heartbeat(job_id)
            record = self._hb_seen.get(job_id)
            if record is None:
                if mtime < mtime_deadline:
                    # Orphaned long before this watcher started.  Not
                    # recorded in _hb_seen: the job is about to be
                    # requeued, and its heartbeat age is genuinely
                    # unknown (the mtime came from another host's wall
                    # clock — see lease_age).
                    stale.append(job_id)
                else:
                    self._hb_seen[job_id] = (count, now)
                continue
            seen_count, seen_at = record
            if count is not None and count != seen_count:
                self._hb_seen[job_id] = (count, now)
                continue
            if now - seen_at > self.lease_timeout:
                stale.append(job_id)
        return stale

    def lease_age(self, job_id: str) -> float | None:
        """Seconds since a leased job's last observed heartbeat, or None.

        Skew-immune by construction: the age is this process's own
        monotonic clock measured from the moment the heartbeat counter
        was last seen to advance.  A lease this watcher has never
        observed has no trusted reference point — its file mtime was
        stamped by another host's wall clock, and cross-host skew makes
        ``time.time() - st_mtime`` arbitrarily wrong (a future-skewed
        mtime clamps to an innocent-looking 0.0, hiding a genuinely
        stalled lease) — so the age is ``None`` (unknown), rendered as
        "unknown" in QueueError messages and lease-lifecycle events.
        """
        try:
            path = self.leased_dir / f"{self._check_job_id(job_id)}.msg"
            record = self._hb_seen.get(job_id)
            if record is not None and path.exists():
                return max(0.0, time.monotonic() - record[1])
        except (OSError, ValueError):
            return None
        return None

    def queued_count(self) -> int:
        return sum(1 for _ in self.queue_dir.glob("*.msg"))

    def leased_count(self) -> int:
        return sum(1 for _ in self.leased_dir.glob("*.msg"))

    # -- worker side ---------------------------------------------------------

    def lease(self) -> LeasedJob | None:
        """Atomically claim the oldest queued job, or None when idle.

        The queue→leased rename succeeds for exactly one process; losers
        move on to the next file.  A stored message that fails to decode
        is still *leased* (so it stops bouncing between workers) and
        returned with ``message=None`` — the worker reports the decode
        failure as its result and the scheduler retries from its own
        pristine copy of the job.
        """
        for path in sorted(self.queue_dir.glob("*.msg")):
            target = self.leased_dir / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue  # another worker won the rename
            try:
                os.utime(target)
                data = target.read_bytes()
            except OSError:
                # The scheduler withdrew the job (remove()) in the
                # instant between our rename and this read — it is no
                # longer ours; move on.
                continue
            self._hb_counts[path.stem] = 0
            self._write_heartbeat(path.stem, 0)
            try:
                message = decode_message(data)
            except MessageError as exc:
                return LeasedJob(path.stem, None, error=str(exc))
            return LeasedJob(path.stem, message)
        return None

    def renew(self, job_id: str) -> None:
        """Heartbeat: advance the lease's monotonic counter (+ mtime)."""
        self._check_job_id(job_id)
        injector = _faults_active()
        if injector is not None \
                and injector.heartbeat_stalled(self.lease_timeout):
            return  # injected stall: the scheduler must expire us
        try:
            os.utime(self.leased_dir / f"{job_id}.msg")
        except OSError:
            return  # lease already reclaimed; the result dedupe handles it
        count = self._hb_counts.get(job_id, 0) + 1
        self._hb_counts[job_id] = count
        self._write_heartbeat(job_id, count)

    def tick(self, job_id: str, index: int,
             duration: float | None = None) -> None:
        """Record one completed point (and renew the lease)."""
        self._check_job_id(job_id)
        line = f"{index}\n" if duration is None \
            else f"{index}:{duration:.6f}\n"

        def _append() -> None:
            injector = _faults_active()
            if injector is not None:
                injector.maybe_io_error("broker.tick")
            with open(self.ticks_dir / f"{job_id}.ticks", "ab") as handle:
                handle.write(line.encode())

        try:
            self._retry.call(_append, key=f"tick/{job_id}/{index}",
                             what=f"tick for job {job_id}")
        except RetriesExhausted:
            pass  # ticks are progress hints; the result is what matters
        self.renew(job_id)

    def complete(self, job_id: str, payload: dict, blob: bytes = b"", *,
                 raw: bytes | None = None) -> None:
        """Publish a result message and release the lease.

        ``raw`` bypasses encoding — it exists for fault injection (the
        worker's ``--corrupt-results`` flag) and tests.  Transient
        ``OSError`` on the result write is retried like ``submit``.
        """
        self._check_job_id(job_id)
        data = raw if raw is not None \
            else encode_message("result", payload, blob)
        self._retry.call(
            lambda: self._atomic_write(self.results_dir / f"{job_id}.msg",
                                       data, site="broker.complete"),
            key=f"complete/{job_id}", what=f"result publish for job {job_id}")
        try:
            os.unlink(self.leased_dir / f"{job_id}.msg")
        except OSError:
            pass
        self._forget_lease(job_id)

    def release(self, job_id: str) -> bool:
        """Hand a leased job back to the queue (graceful shutdown).

        The opposite of :meth:`lease`: the leased file atomically moves
        back into ``queue/`` so the next worker picks it up immediately
        instead of waiting out the lease timeout.  Returns False when
        the lease is no longer ours (already expired and requeued, or
        completed) — callers should then just carry on.
        """
        self._check_job_id(job_id)
        try:
            os.rename(self.leased_dir / f"{job_id}.msg",
                      self.queue_dir / f"{job_id}.msg")
        except OSError:
            return False
        self._forget_lease(job_id)
        return True
