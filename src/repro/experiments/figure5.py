"""Paper Figure 5: calculated vs load branches under ARVI current value.

* Figure 5(a): fraction of conditional branches that are *load branches*
  (dependence chain terminating in a pending load) per benchmark, for the
  20/40/60-stage machines.  The paper observes a large fraction that grows
  slightly with pipeline depth.
* Figure 5(b): prediction accuracy of calculated vs load branches
  (20-stage machine) — calculated branches predict better everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache
from repro.experiments.plan import ExperimentPoint, plan_from_points
from repro.experiments.report import format_table
from repro.experiments.scheduler import ProgressCallback, run_plan
from repro.pipeline.config import PIPELINE_DEPTHS
from repro.workloads.registry import BENCHMARKS


@dataclass
class Figure5Data:
    load_rates: dict[tuple[str, int], float] = field(default_factory=dict)
    calc_accuracy: dict[str, float] = field(default_factory=dict)
    load_accuracy: dict[str, float] = field(default_factory=dict)

    def figure5a_rows(self):
        return [
            [bench] + [self.load_rates[(bench, depth)]
                       for depth in PIPELINE_DEPTHS]
            for bench in BENCHMARKS
        ]

    def figure5b_rows(self):
        return [
            [bench, self.load_accuracy[bench], self.calc_accuracy[bench]]
            for bench in BENCHMARKS
        ]

    def render(self) -> str:
        fig_a = format_table(
            ["benchmark", "20-cycle", "40-cycle", "60-cycle"],
            self.figure5a_rows(),
            title="Figure 5(a): fraction of load branches")
        fig_b = format_table(
            ["benchmark", "load branch", "calc branch"],
            self.figure5b_rows(),
            title="Figure 5(b): prediction accuracy by class (20-stage)")
        return f"{fig_a}\n\n{fig_b}"


def run_figure5(*, scale: float | None = None, warmup: int | None = None,
                depths=PIPELINE_DEPTHS, benchmarks=BENCHMARKS,
                jobs: int | None = None, cache: ResultCache | None = None,
                use_cache: bool = True,
                progress: ProgressCallback | None = None,
                sink=None) -> Figure5Data:
    plan = plan_from_points(
        ExperimentPoint(benchmark, "current", depth).resolve(
            scale=scale, warmup=warmup)
        for benchmark in benchmarks
        for depth in depths)
    results = run_plan(plan, jobs=jobs, cache=cache, use_cache=use_cache,
                       progress=progress, sink=sink)
    data = Figure5Data()
    for point, result in results.items():
        data.load_rates[(point.benchmark, point.pipeline_depth)] = (
            result.load_branch_rate)
        if point.pipeline_depth == depths[0]:
            data.calc_accuracy[point.benchmark] = result.calculated.accuracy
            data.load_accuracy[point.benchmark] = result.load.accuracy
    return data
