"""Paper Figure 5: calculated vs load branches under ARVI current value.

* Figure 5(a): fraction of conditional branches that are *load branches*
  (dependence chain terminating in a pending load) per benchmark, for the
  20/40/60-stage machines.  The paper observes a large fraction that grows
  slightly with pipeline depth.
* Figure 5(b): prediction accuracy of calculated vs load branches
  (20-stage machine) — calculated branches predict better everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentPoint, run_point
from repro.pipeline.config import PIPELINE_DEPTHS
from repro.workloads.registry import BENCHMARKS


@dataclass
class Figure5Data:
    load_rates: dict[tuple[str, int], float] = field(default_factory=dict)
    calc_accuracy: dict[str, float] = field(default_factory=dict)
    load_accuracy: dict[str, float] = field(default_factory=dict)

    def figure5a_rows(self):
        return [
            [bench] + [self.load_rates[(bench, depth)]
                       for depth in PIPELINE_DEPTHS]
            for bench in BENCHMARKS
        ]

    def figure5b_rows(self):
        return [
            [bench, self.load_accuracy[bench], self.calc_accuracy[bench]]
            for bench in BENCHMARKS
        ]

    def render(self) -> str:
        fig_a = format_table(
            ["benchmark", "20-cycle", "40-cycle", "60-cycle"],
            self.figure5a_rows(),
            title="Figure 5(a): fraction of load branches")
        fig_b = format_table(
            ["benchmark", "load branch", "calc branch"],
            self.figure5b_rows(),
            title="Figure 5(b): prediction accuracy by class (20-stage)")
        return f"{fig_a}\n\n{fig_b}"


def run_figure5(*, scale: float | None = None, warmup: int | None = None,
                depths=PIPELINE_DEPTHS, benchmarks=BENCHMARKS) -> Figure5Data:
    data = Figure5Data()
    for benchmark in benchmarks:
        for depth in depths:
            result = run_point(
                ExperimentPoint(benchmark, "current", depth),
                scale=scale, warmup=warmup)
            data.load_rates[(benchmark, depth)] = result.load_branch_rate
            if depth == depths[0]:
                data.calc_accuracy[benchmark] = result.calculated.accuracy
                data.load_accuracy[benchmark] = result.load.accuracy
    return data
