"""Pluggable execution backends for the experiment scheduler.

:func:`~repro.experiments.scheduler.run_plan` decides *what* to compute
(cache misses, grouped into benchmark-pure batches) and how to account
for it (result cache, progress events, failure collection); a backend
decides *where* the batches execute.  All three backends funnel every
point through :func:`~repro.experiments.runner.execute_point`, so the
plan/point-key layer is location-transparent: results are bit-for-bit
equal (``==``) no matter which backend produced them (enforced by the
cross-backend differential suite in ``tests/experiments/``).

* :class:`SerialBackend` — in-process loop, shares recorded traces
  across the sweep exactly like a worker batch; the deterministic
  reference every other backend is diffed against.
* :class:`LocalPoolBackend` — the ``ProcessPoolExecutor`` sharding
  formerly inlined in ``scheduler.py``; per-point progress ticks travel
  through a manager queue.
* :class:`QueueBackend` — a work queue (:mod:`repro.experiments.broker`)
  plus standalone ``python -m repro.worker`` processes.  Jobs carry
  serialized points *and* a serialized committed trace sidecar (the PR 4
  wire format), so a whole cluster shares one functional run per
  workload; leases expire and requeue, results are integrity-checked,
  and retries are bounded — a crashed worker or corrupted payload delays
  a batch, it never corrupts or drops one.

Selection: ``REPRO_BACKEND=serial|local|queue`` (or
``run_suite(backend=...)`` with a name or a configured instance); unset
picks ``serial`` for single-worker runs and ``local`` otherwise, which
is exactly the pre-backend behaviour.

Backends report through the :class:`BackendReport` protocol —
``tick`` (a point finished somewhere; at-least-once, the scheduler
dedupes retried batches), ``deliver`` (its result payload arrived;
exactly once per point) and ``fail`` (a per-point or whole-batch
failure; the scheduler surfaces the first one after the grid drains).
"""

from __future__ import annotations

import abc
import os
import pathlib
import queue as queue_module
import shutil
import subprocess
import sys
import tempfile
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Mapping, Protocol

from repro import obs
from repro.experiments.broker import (
    FileBroker,
    MessageError,
    QueueError,
    RemotePointError,
)
from repro.experiments.plan import ExperimentPoint
from repro.faults.policy import RetryPolicy, point_deadline

Batches = Mapping[str, tuple[ExperimentPoint, ...]]


class BackendUnavailable(QueueError):
    """A backend cannot run here at all (as opposed to a job failing).

    Raised when the environment, not the work, is broken: worker
    processes cannot be spawned, or spawn fine but crash-loop without
    ever producing a result.  The scheduler catches this and walks the
    degradation ladder (queue → local → serial, ``REPRO_DEGRADE``)
    instead of abandoning the grid — the points themselves are
    backend-agnostic, so a healthier backend produces identical results.
    """


#: Graceful-degradation ladder: who takes over when a backend reports
#: itself unavailable.  Serial is the floor — it has no moving parts.
_DEGRADE_LADDER = {"queue": "local", "local": "serial"}


def degrade_target(engine: ExecutionBackend) -> "ExecutionBackend | None":
    """The next backend down the ladder, or None at the floor."""
    name = _DEGRADE_LADDER.get(engine.name)
    return BACKENDS[name]() if name is not None else None


class BackendReport(Protocol):
    """What a backend calls back into the scheduler with."""

    wants_ticks: bool

    def tick(self, batch_id: str, index: int,
             duration: float | None = None) -> None:
        """Point ``index`` of ``batch_id`` completed (progress only).

        ``duration`` is the point's compute wall-clock in seconds when
        the producing worker measured it (None for lower pseudo-ticks
        and legacy producers)."""

    def deliver(self, batch_id: str, index: int, payload: dict,
                meta: dict | None = None) -> None:
        """Its serialized ``SimulationResult`` payload arrived.

        ``meta`` (optional) carries per-point delivery metadata —
        ``trace_source`` / ``kernel_source`` / ``phase_seconds`` — for
        the live-view aggregator's run-status view; it never affects
        the result payload or its cache bytes."""

    def fail(self, batch_id: str, index: int | None,
             error: Exception) -> None:
        """Point ``index`` (or the whole batch, ``None``) failed."""


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set and valid, else CPU count."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        jobs = 0
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def default_batching() -> bool:
    """In-worker point batching: on unless ``REPRO_BATCH`` disables it."""
    return os.environ.get("REPRO_BATCH", "1").strip().lower() not in (
        "0", "false", "no", "off")


def _relayable_exception(exc: Exception) -> Exception:
    """Make a worker exception safe to return across the process boundary.

    The worker traceback is attached as an exception note (the future
    machinery's ``_RemoteTraceback`` only decorates exceptions *raised*
    out of a task, not ones returned in a payload), and unpicklable
    exceptions are summarized into a plain ``RuntimeError`` so they can
    never poison the batch's return value and take sibling results down
    with them.
    """
    import pickle
    import traceback

    note = "worker traceback:\n" + traceback.format_exc()
    try:
        exc.add_note(note)
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - unpicklable or note-less exotica
        replacement = RuntimeError(f"{type(exc).__name__}: {exc}")
        replacement.add_note(note)
        return replacement


def point_meta(info: dict, point_trace, *,
               shipped: bool = False) -> dict:
    """Per-point delivery metadata for the live-view aggregator.

    Summarizes how a point actually ran — which functional source fed
    it (``trace_source``: shipped / local / live), which replay tier
    executed it (``kernel_source``), and its per-phase wall-clock —
    from the ``info`` dict :func:`~repro.experiments.runner.
    execute_point` populated.  Observability only: it rides next to the
    result payload, never inside it, so cache bytes and the bit-for-bit
    result invariant are untouched.
    """
    return {
        "trace_source": "shipped" if shipped
        else ("local" if point_trace is not None else "live"),
        "kernel_source": info.get("kernel_source", "live"),
        "phase_seconds": {
            phase: round(seconds, 6)
            for phase, seconds in sorted(
                info.get("phase_seconds", {}).items())},
    }


def _maybe_prelower(point: ExperimentPoint, trace) -> bool:
    """Pay a batch's one-time trace-lowering cost up front, observably.

    Returns True only when the compiled kernel applies to this point
    (a ``redirect`` point replaying a trace, ``REPRO_KERNEL`` on — the
    kernel now covers the ARVI configurations too, so every redirect
    configuration shares the lowered form) *and*
    the lowering pass actually ran now; the caller then reports it as a
    :data:`~repro.pipeline.kernel.LOWER_TICK` progress tick, which the
    scheduler turns into a ``phase="lower"`` event — so the first point
    of a batch never looks stalled behind the lowering pass.  Any
    failure here is deferred: the point itself will surface it.
    """
    from repro.experiments.tracing import kernel_mode
    from repro.pipeline.kernel import ensure_lowered, is_lowered
    from repro.workloads.registry import get_program

    if (trace is None or point.speculation != "redirect"
            or not kernel_mode()):
        return False
    try:
        program = get_program(point.benchmark, scale=point.scale,
                              seed=point.seed)
        if is_lowered(trace, program):
            return False
        with obs.span("lower", kind="phase", attrs={
                "phase": "lower", "benchmark": point.benchmark}):
            ensure_lowered(program, trace)
    except Exception:  # noqa: BLE001 - execute_point reports it per point
        return False
    return True


def _compute_batch(points: tuple[ExperimentPoint, ...],
                   batch_id: str | None = None,
                   ticker=None, obs_ctx: dict | None = None) -> list[tuple]:
    """Pool-worker entry: simulate a same-benchmark batch of points.

    The workload registry caches the shared ``Program`` (and its
    pre-decoded table) per process, so it is built once for the whole
    batch — and under ``REPRO_TRACE`` the batch's ``redirect`` points
    share a single recorded committed trace, so the functional core runs
    once and every timing configuration replays it.  Failures are
    isolated per point — the batch returns ``("ok", payload, meta)`` /
    ``("error", exception)`` entries positionally so sibling results
    still reach the parent (and its cache).  ``meta`` is per-point
    delivery metadata for the live-view aggregator (``trace_source``,
    ``kernel_source``, ``phase_seconds``) — observability only, never
    part of the result payload or its cache bytes.

    ``ticker`` (a manager queue) receives ``(batch_id, index,
    duration_seconds)`` after each completed point so the parent can
    stream per-point progress while the batch is still running — plus
    one ``(batch_id, LOWER_TICK, None)`` when the batch pays the
    kernel's one-time trace-lowering cost.

    ``obs_ctx`` (a parent :meth:`repro.obs.Telemetry.context`) joins
    this worker to the parent's telemetry run: the batch runs under a
    ``batch`` span in a per-process shard stream the parent merges at
    run close.
    """
    from repro.experiments.runner import execute_point
    from repro.experiments.tracing import SharedTraces
    from repro.pipeline.kernel import LOWER_TICK

    shard = obs.worker_shard(obs_ctx) if obs_ctx is not None else None
    with obs.activate(shard):
        with obs.span(batch_id or "batch", kind="batch", attrs={
                "batch_id": batch_id, "points": len(points),
                "benchmark": points[0].benchmark if points else None,
                "worker": os.getpid()}):
            traces = SharedTraces(points)
            entries: list[tuple] = []
            lower_ticked = False
            for index, point in enumerate(points):
                point_trace = traces.get(point)
                if (not lower_ticked and ticker is not None
                        and _maybe_prelower(point, point_trace)):
                    lower_ticked = True
                    try:
                        ticker.put((batch_id, LOWER_TICK, None))
                    except Exception:  # noqa: BLE001 - a dead manager must
                        ticker = None  # not take the results down with it
                info: dict = {}
                started = time.perf_counter()
                try:
                    with point_deadline():
                        result = execute_point(point, trace=point_trace,
                                               info=info)
                except Exception as exc:  # noqa: BLE001 - relayed to parent
                    entries.append(("error", _relayable_exception(exc)))
                    continue
                duration = time.perf_counter() - started
                entries.append(("ok", result.to_dict(),
                                point_meta(info, point_trace)))
                if ticker is not None:
                    try:
                        ticker.put((batch_id, index, duration))
                    except Exception:  # noqa: BLE001 - a dead manager must
                        ticker = None  # not take the results down with it
        if shard is not None:
            shard.snapshot_event()
        return entries


def _make_batches(pending: list[ExperimentPoint],
                  jobs: int) -> list[tuple[ExperimentPoint, ...]]:
    """Group pending points into benchmark-pure worker batches.

    Points are grouped by workload identity (benchmark, scale, seed) in
    first-appearance order, and each group is split into contiguous
    near-equal chunks sized so the total batch count is about ``jobs`` —
    every worker stays busy, while no batch ever mixes workloads (the
    whole point of batching is one program build per batch).
    """
    groups: dict[tuple, list[ExperimentPoint]] = {}
    for point in pending:
        groups.setdefault(
            (point.benchmark, point.scale, point.seed), []).append(point)
    total = len(pending)
    batches: list[tuple[ExperimentPoint, ...]] = []
    for points in groups.values():
        share = max(1, min(len(points), round(jobs * len(points) / total)))
        size, extra = divmod(len(points), share)
        start = 0
        for chunk in range(share):
            stop = start + size + (1 if chunk < extra else 0)
            batches.append(tuple(points[start:stop]))
            start = stop
    return batches


def _pool_context():
    """Prefer fork so workers inherit sys.path (PYTHONPATH=src setups)."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _src_dir() -> str:
    return str(pathlib.Path(__file__).resolve().parents[2])


def _ensure_worker_import_path() -> str | None:
    """Make ``repro`` importable in spawn-started workers.

    Spawn workers boot a fresh interpreter that must re-import this
    module to unpickle the submitted callable, so the parent's
    ``sys.path`` entry for an uninstalled ``src/`` checkout (e.g. added
    by pytest's ``pythonpath`` option) has to travel via ``PYTHONPATH``.
    Returns the previous value for :func:`_restore_worker_import_path`;
    the caller restores it once the pool has shut down (every lazily
    spawned worker exists by then).
    """
    previous = os.environ.get("PYTHONPATH")
    src_dir = _src_dir()
    parts = previous.split(os.pathsep) if previous else []
    if src_dir not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_dir] + parts)
    return previous


def _restore_worker_import_path(previous: str | None) -> None:
    if previous is None:
        os.environ.pop("PYTHONPATH", None)
    else:
        os.environ["PYTHONPATH"] = previous


class ExecutionBackend(abc.ABC):
    """Where a plan's pending batches execute.

    ``name`` is the ``REPRO_BACKEND`` selector; ``source`` labels the
    :class:`~repro.experiments.scheduler.ProgressEvent`\\ s the backend's
    points emit.  ``execute`` must call ``report.deliver`` or
    ``report.fail`` exactly once per point and may ``report.tick``
    at-least-once per completed point (the scheduler dedupes retries).
    """

    name: str
    source: str

    @abc.abstractmethod
    def execute(self, batches: Batches, report: BackendReport, *,
                jobs: int) -> None:
        """Run every batch, reporting per-point outcomes as they land."""


class SerialBackend(ExecutionBackend):
    """Deterministic in-process execution, one point at a time.

    Recorded traces are shared across the whole sweep (not just within
    a batch), matching the pre-backend serial path; per-point failures
    are isolated just like in a worker batch, so one bad point never
    discards its siblings' completed (and cached) results.
    """

    name = "serial"
    source = "serial"

    def execute(self, batches: Batches, report: BackendReport, *,
                jobs: int) -> None:
        from repro.experiments.runner import execute_point
        from repro.experiments.tracing import SharedTraces
        from repro.pipeline.kernel import LOWER_TICK

        traces = SharedTraces(
            [point for group in batches.values() for point in group])
        for batch_id, group in batches.items():
            with obs.span(batch_id, kind="batch", attrs={
                    "batch_id": batch_id, "points": len(group),
                    "benchmark": group[0].benchmark if group else None}):
                lower_ticked = False
                for index, point in enumerate(group):
                    point_trace = traces.get(point)
                    if not lower_ticked \
                            and _maybe_prelower(point, point_trace):
                        lower_ticked = True
                        report.tick(batch_id, LOWER_TICK)
                    info: dict = {}
                    started = time.perf_counter()
                    try:
                        with point_deadline():
                            payload = execute_point(
                                point, trace=point_trace,
                                info=info).to_dict()
                    except Exception as exc:  # noqa: BLE001 - per point
                        report.fail(batch_id, index, exc)
                        continue
                    duration = time.perf_counter() - started
                    report.deliver(batch_id, index, payload,
                                   point_meta(info, point_trace))
                    report.tick(batch_id, index, duration)


class LocalPoolBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` sharding on the local host."""

    name = "local"
    source = "worker"

    def execute(self, batches: Batches, report: BackendReport, *,
                jobs: int) -> None:
        workers = min(jobs, len(batches))
        context = _pool_context()
        needs_path = context.get_start_method() != "fork"
        saved_path = _ensure_worker_import_path() if needs_path else None
        # Per-point progress ticks travel through a manager queue so big
        # batches do not look stalled; only created when someone listens.
        manager = context.Manager() if report.wants_ticks else None
        ticker = manager.Queue() if manager is not None else None
        # Workers join the parent's telemetry run (if any) by writing
        # shard streams straight into its shards/ directory — same host,
        # same filesystem — which the close-time merge picks up.
        obs_ctx = obs.worker_context()

        def drain_ticker() -> None:
            if ticker is None:
                return
            while True:
                try:
                    batch_id, index, duration = ticker.get_nowait()
                except queue_module.Empty:
                    return
                report.tick(batch_id, index, duration)

        try:
            with ProcessPoolExecutor(
                    max_workers=workers, mp_context=context) as pool:
                futures = {
                    pool.submit(_compute_batch, group,
                                batch_id=batch_id, ticker=ticker,
                                obs_ctx=obs_ctx): batch_id
                    for batch_id, group in batches.items()}
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED,
                        timeout=0.05 if ticker is not None else None)
                    drain_ticker()
                    for future in finished:
                        batch_id = futures[future]
                        try:
                            entries = future.result()
                        except Exception as exc:
                            # A whole-batch failure (e.g. a dead worker);
                            # keep draining so completed sibling batches
                            # still reach the cache.
                            report.fail(batch_id, None, exc)
                            continue
                        for index, entry in enumerate(entries):
                            status, payload = entry[0], entry[1]
                            if status != "ok":
                                report.fail(batch_id, index, payload)
                            else:
                                report.deliver(
                                    batch_id, index, payload,
                                    entry[2] if len(entry) > 2 else None)
                # A worker's final ticks can land just after its future
                # resolves; one last drain catches them.
                drain_ticker()
        finally:
            if manager is not None:
                manager.shutdown()
            if needs_path:
                _restore_worker_import_path(saved_path)


def _tail_worker_logs(broker_dir: pathlib.Path, limit: int = 2000) -> str:
    """The tail of the newest worker log, for crash-loop diagnostics.

    Runs while this is being assembled into a QueueError, so it must
    never raise: a log rotated or unlinked between ``glob`` and ``stat``
    is simply skipped — a vanished diagnostic file must not mask the
    original failure being reported.
    """
    def _mtime(path: pathlib.Path) -> "float | None":
        try:
            return path.stat().st_mtime
        except OSError:
            return None  # vanished between glob and stat

    stamped = [(stamp, path)
               for path in broker_dir.glob("worker-*.log")
               if (stamp := _mtime(path)) is not None]
    if not stamped:
        return "(no worker logs found)"
    newest = max(stamped)[1]
    try:
        data = newest.read_bytes()[-limit:]
    except OSError as exc:
        return f"(unreadable: {exc})"
    return f"{newest.name}:\n" + data.decode(errors="replace")


def _crash_report(broker_dir: pathlib.Path, limit: int = 5) -> str:
    """Crash diagnostics: structured worker-error lines + raw log tail.

    Workers append one JSONL record per fatal error to
    ``<broker>/obs/worker-errors.jsonl`` (worker pid, job/batch id,
    lease path, exception, traceback — see ``repro.worker``), so a
    crash-loop failure names *which* batch took which worker down even
    when the raw log is just an import-time stack trace.
    """
    sections: list[str] = []
    errors = broker_dir / "obs" / "worker-errors.jsonl"
    if errors.is_file():
        try:
            lines = errors.read_text(
                encoding="utf-8", errors="replace").splitlines()
            tail = [line for line in lines if line.strip()][-limit:]
            if tail:
                sections.append(
                    "structured worker errors (last "
                    f"{len(tail)}):\n" + "\n".join(tail))
        except OSError:
            pass
    sections.append(_tail_worker_logs(broker_dir))
    return "\n".join(sections)


@dataclass
class _QueueJob:
    """Scheduler-side record of one in-flight queue job."""

    batch_id: str
    points: tuple[ExperimentPoint, ...]
    blob: bytes
    attempts: int = 1
    history: list[str] = field(default_factory=list)


class QueueBackend(ExecutionBackend):
    """Distributed execution over a :class:`FileBroker` work queue.

    Jobs are benchmark-pure batches; each carries its points in the
    integrity-checked message format plus a serialized
    :class:`~repro.pipeline.trace.CommittedTrace` sidecar when the
    grid's trace policy recorded one, so remote ``redirect`` batches
    replay a single parent-side functional run instead of re-running the
    interpreter per host (``trace_source`` in each result records what
    the worker actually used: ``shipped`` / ``local`` / ``live``; the
    sibling ``kernel_source`` records how replays ran: ``kernel`` /
    ``interpreted`` / ``live`` — workers lower shipped traces locally).

    Fault model: a lease that stops heartbeating (crashed or wedged
    worker) or a result that fails its checksum re-queues the job, up to
    ``max_attempts`` total attempts, after which every point of the
    batch fails with a :class:`QueueError` naming the attempt history —
    failures are surfaced per point, never silently dropped, and retried
    batches cannot double-report progress (the scheduler dedupes ticks).
    Deterministic worker-side *point* failures (a bad benchmark name)
    are final on the first attempt: they come back inside a valid result
    message and retrying could not change them.

    ``workers > 0`` spawns that many ``python -m repro.worker``
    subprocesses on this host (and respawns any that die while work is
    outstanding); ``workers=0`` assumes external workers are attached to
    ``broker_dir`` — how a multi-host cluster runs, with the directory
    on a shared filesystem.
    """

    name = "queue"
    source = "queue"

    def __init__(self, *, workers: int | None = None,
                 broker_dir: str | os.PathLike | None = None,
                 lease_timeout: float | None = None,
                 max_attempts: int | None = None,
                 poll: float = 0.02,
                 worker_args: tuple[str, ...] = (),
                 timeout: float | None = None) -> None:
        env = os.environ.get
        if workers is None:
            raw = env("REPRO_QUEUE_WORKERS", "")
            workers = int(raw) if raw.strip().isdigit() else None
        self.workers = workers
        self.broker_dir = broker_dir if broker_dir is not None \
            else env("REPRO_QUEUE_DIR") or None
        self.lease_timeout = float(
            lease_timeout if lease_timeout is not None
            else env("REPRO_QUEUE_LEASE", "30"))
        self.max_attempts = max(1, int(
            max_attempts if max_attempts is not None
            else env("REPRO_QUEUE_RETRIES", "3")))
        self.poll = poll
        self.worker_args = tuple(worker_args)
        self.timeout = timeout
        # Requeue pacing: bounded attempts are self.max_attempts; the
        # policy adds exponential backoff with deterministic jitter
        # (REPRO_RETRY_BACKOFF) so a flapping worker pool is not hammered
        # with instant resubmits.
        self.retry_policy = RetryPolicy.from_env(max_attempts=self.max_attempts)
        # Per-execute observability (reset each run).
        self.trace_sources: dict[str, str] = {}
        self.kernel_sources: dict[str, str] = {}
        self.requeues = 0
        self.corrupt_results = 0
        self.respawns = 0

    # -- trace shipping ------------------------------------------------------

    @staticmethod
    def _trace_blobs(batches: Batches) -> dict[tuple, bytes]:
        """Serialized committed traces, one per shippable workload identity.

        Mirrors the :class:`~repro.experiments.tracing.SharedTraces`
        policy: a trace is recorded (once, parent-side) when at least
        two ``redirect`` points of the same (benchmark, scale, seed)
        will amortize it, or the persistent disk store is on.  A
        workload that fails to record (e.g. an unknown benchmark) ships
        nothing — the workers will surface the same failure per point.
        """
        from repro.experiments.tracing import load_or_record, trace_mode

        mode = trace_mode()
        if mode == "off":
            return {}
        counts = Counter(
            (point.benchmark, point.scale, point.seed)
            for group in batches.values() for point in group
            if point.speculation == "redirect")
        blobs: dict[tuple, bytes] = {}
        for identity, count in counts.items():
            if count < 2 and mode != "disk":
                continue
            try:
                blobs[identity] = load_or_record(*identity).to_bytes()
            except Exception:  # noqa: BLE001 - workers report it per point
                continue
        return blobs

    # -- worker process management -------------------------------------------

    def _spawn_worker(self, broker_dir: pathlib.Path, index: int,
                      logs: list) -> subprocess.Popen:
        env = dict(os.environ)
        src_dir = _src_dir()
        parts = env.get("PYTHONPATH", "")
        if src_dir not in parts.split(os.pathsep):
            env["PYTHONPATH"] = os.pathsep.join(
                [src_dir] + ([parts] if parts else []))
        log = open(broker_dir / f"worker-{index}.log", "ab")
        logs.append(log)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.worker",
             "--broker", str(broker_dir),
             "--poll", str(min(self.poll, 0.05)),
             "--idle-exit", "300",
             *self.worker_args],
            env=env, stdout=log, stderr=subprocess.STDOUT)

    # -- execution -----------------------------------------------------------

    def execute(self, batches: Batches, report: BackendReport, *,
                jobs: int) -> None:
        self.trace_sources = {}
        self.kernel_sources = {}
        self.requeues = 0
        self.corrupt_results = 0
        self.respawns = 0
        workers = jobs if self.workers is None else self.workers
        owns_dir = self.broker_dir is None
        broker_dir = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-queue-") if owns_dir
            else self.broker_dir)
        broker = FileBroker(broker_dir, lease_timeout=self.lease_timeout)
        blobs = self._trace_blobs(batches)
        telemetry = obs.current()
        obs_ctx = obs.worker_context()

        jobs_map: dict[str, _QueueJob] = {}
        for batch_id, group in batches.items():
            blob = b""
            if any(p.speculation == "redirect" for p in group):
                identity = (group[0].benchmark, group[0].scale,
                            group[0].seed)
                blob = blobs.get(identity, b"")
            jobs_map[batch_id] = _QueueJob(batch_id, group, blob)
        outstanding = set(jobs_map)

        def submit(job_id: str) -> None:
            job = jobs_map[job_id]
            payload = {
                "job_id": job_id,
                "batch_id": job.batch_id,
                "attempt": job.attempts,
                "points": [point.to_dict() for point in job.points],
            }
            if obs_ctx is not None:
                # Workers join the telemetry run via the broker dir (the
                # only filesystem guaranteed shared); "dir" is dropped
                # because the parent's run directory may not exist there.
                payload["obs"] = {"run": obs_ctx["run"],
                                  "parent": obs_ctx["parent"]}
            broker.submit(job_id, payload, job.blob)
            obs.emit("submit", kind="queue", attrs={
                "job": job_id, "attempt": job.attempts,
                "points": len(job.points)})

        def retry(job_id: str, reason: str) -> None:
            job = jobs_map[job_id]
            job.history.append(f"attempt {job.attempts}: {reason}")
            broker.remove(job_id)
            if job.attempts >= self.max_attempts:
                outstanding.discard(job_id)
                obs.emit("retries_exhausted", kind="queue", attrs={
                    "job": job_id, "attempts": job.attempts,
                    "reason": reason[:200]})
                error = QueueError(
                    f"batch {job.batch_id} failed after "
                    f"{job.attempts} attempt(s): "
                    + "; ".join(job.history))
                # The attempt history rides along for the deadletter
                # quarantine (scheduler-side).
                error.history = list(job.history)
                for index in range(len(job.points)):
                    report.fail(job.batch_id, index, error)
                return
            job.attempts += 1
            self.requeues += 1
            obs.inc("queue.requeue")
            obs.emit("requeue", kind="queue", attrs={
                "job": job_id, "attempt": job.attempts,
                "reason": reason[:200]})
            pause = self.retry_policy.delay(job.attempts, job_id)
            if pause > 0.0:
                time.sleep(pause)
            submit(job_id)

        for job_id in jobs_map:
            submit(job_id)

        if workers == 0 and owns_dir:
            raise QueueError(
                "QueueBackend(workers=0) needs an external broker "
                "directory (broker_dir= / REPRO_QUEUE_DIR) that outside "
                "workers drain; a private temp directory would never "
                "complete")

        def drain_ticks() -> None:
            for job_id, index, duration in broker.drain_ticks():
                job = jobs_map.get(job_id)
                if job is not None:
                    report.tick(job.batch_id, index, duration)

        procs: list[subprocess.Popen] = []
        logs: list = []
        started = time.monotonic()
        respawns_since_progress = 0
        try:
            try:
                for index in range(workers):
                    procs.append(self._spawn_worker(broker_dir, index, logs))
            except OSError as exc:
                raise BackendUnavailable(
                    f"cannot spawn queue workers: {exc}") from exc
            while outstanding:
                drain_ticks()
                for job_id, outcome in broker.collect_results():
                    respawns_since_progress = 0
                    job = jobs_map.get(job_id)
                    if job is None or job_id not in outstanding:
                        continue  # stale duplicate from a reclaimed lease
                    if isinstance(outcome, MessageError):
                        self.corrupt_results += 1
                        obs.inc("queue.corrupt_result")
                        retry(job_id, f"corrupt result payload: {outcome}")
                        continue
                    payload = outcome.payload
                    entries = payload.get("entries")
                    if payload.get("malformed_job") or not isinstance(
                            entries, list) \
                            or len(entries) != len(job.points):
                        retry(job_id, payload.get("malformed_job")
                              or "malformed result entries")
                        continue
                    outstanding.discard(job_id)
                    broker.remove(job_id)  # withdraw any requeued twin
                    self.trace_sources[job.batch_id] = payload.get(
                        "trace_source", "live")
                    self.kernel_sources[job.batch_id] = payload.get(
                        "kernel_source", "live")
                    for index, entry in enumerate(entries):
                        status, item = entry[0], entry[1]
                        if status == "ok":
                            report.deliver(
                                job.batch_id, index, item,
                                entry[2] if len(entry) > 2 else None)
                        else:
                            error = RemotePointError(
                                f"{item.get('type', 'Error')}: "
                                f"{item.get('message', '')} "
                                f"(attempt {job.attempts} of "
                                f"{self.max_attempts})")
                            if item.get("traceback"):
                                error.add_note(
                                    "worker traceback:\n" + item["traceback"])
                            report.fail(job.batch_id, index, error)
                for job_id in broker.expired():
                    age = broker.lease_age(job_id)
                    if job_id in outstanding:
                        obs.inc("queue.lease_expired")
                        obs.emit("lease_expired", kind="lease", attrs={
                            "job": job_id,
                            "age": round(age, 3) if age is not None
                            else "unknown",
                            "timeout": self.lease_timeout})
                        retry(job_id, "lease expired"
                              + (f" (heartbeat {age:.1f}s old, timeout "
                                 f"{self.lease_timeout:.1f}s)"
                                 if age is not None else
                                 f" (heartbeat age unknown, timeout "
                                 f"{self.lease_timeout:.1f}s)"))
                    else:
                        broker.remove(job_id)
                if procs and outstanding:
                    for index, proc in enumerate(procs):
                        if proc.poll() is not None:
                            self.respawns += 1
                            respawns_since_progress += 1
                            obs.inc("queue.worker_respawn")
                            obs.emit("respawn", kind="worker", attrs={
                                "exited_pid": proc.pid,
                                "returncode": proc.returncode,
                                "respawns": self.respawns})
                            try:
                                procs[index] = self._spawn_worker(
                                    broker_dir, len(procs) + self.respawns,
                                    logs)
                            except OSError as exc:
                                raise BackendUnavailable(
                                    f"cannot respawn queue worker: {exc}"
                                ) from exc
                    # Workers crash-looping without ever producing a
                    # result means the worker environment is broken (an
                    # import error, a missing interpreter feature) — a
                    # retry can never fix that.  Report the backend
                    # unavailable (with the evidence) so the scheduler
                    # can degrade to a backend with no worker processes
                    # instead of respawning forever.
                    if respawns_since_progress > 3 * len(procs) + 5:
                        raise BackendUnavailable(
                            "queue workers are crash-looping without "
                            "producing results; diagnostics:\n"
                            + _crash_report(broker_dir))
                if telemetry is not None:
                    telemetry.gauge("queue.depth", broker.queued_count())
                    telemetry.gauge("queue.leased", broker.leased_count())
                    telemetry.gauge("queue.outstanding", len(outstanding))
                if self.timeout is not None \
                        and time.monotonic() - started > self.timeout:
                    raise QueueError(
                        f"queue run timed out after {self.timeout}s with "
                        f"{len(outstanding)} job(s) outstanding")
                if outstanding:
                    time.sleep(self.poll)
            # A worker writes all of a job's ticks before it publishes
            # the result, so one final drain catches ticks that landed
            # in the same poll iteration as the last result (mirrors
            # LocalPoolBackend's post-loop drain).
            drain_ticks()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            for log in logs:
                try:
                    log.close()
                except OSError:
                    pass
            if telemetry is not None:
                # Adopt worker telemetry shards (written under the
                # broker dir, the shared filesystem) into the run before
                # the broker dir can be torn down.
                shard_root = broker_dir / "obs" / telemetry.run_id
                if shard_root.is_dir():
                    for shard in sorted(shard_root.glob("*.jsonl")):
                        telemetry.adopt_shard(shard)
            if owns_dir:
                shutil.rmtree(broker_dir, ignore_errors=True)


#: Registered backends, keyed by their ``REPRO_BACKEND`` selector.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, LocalPoolBackend, QueueBackend)
}


def default_backend_name() -> str | None:
    """``REPRO_BACKEND`` -> validated selector, or None for auto."""
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not raw or raw == "auto":
        return None
    if raw not in BACKENDS:
        raise ValueError(
            f"unknown REPRO_BACKEND {raw!r}; expected one of "
            f"{sorted(BACKENDS)} (or 'auto')")
    return raw


def resolve_backend(backend: "str | ExecutionBackend | None", *,
                    jobs: int, pending: int) -> ExecutionBackend:
    """Pick the backend: explicit instance > explicit/env name > auto.

    Auto keeps the historical scheduler behaviour: one worker (or a
    single pending point) runs serially in-process, anything else
    shards across the local pool.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend.strip().lower() if isinstance(backend, str) \
        else default_backend_name()
    if backend is not None and not isinstance(backend, str):
        raise TypeError(
            f"backend must be a name, an ExecutionBackend instance or "
            f"None; got {backend!r}")
    if name is None:
        name = "serial" if jobs == 1 or pending == 1 else "local"
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{sorted(BACKENDS)}") from None
    return factory()
