"""Experiment runner: one (benchmark, configuration, depth) simulation.

The four configurations match paper Section 5:

* ``baseline``   — two-level 2Bc-gskew (L1 4 KB + L2 32 KB hybrid);
* ``current``    — ARVI level 2 with committed (current) values;
* ``load back``  — ARVI with aggressively hoisted loads;
* ``perfect``    — ARVI with oracle values (upper bound).

``REPRO_SCALE`` / ``REPRO_WARMUP`` environment variables rescale every
experiment (the benchmark harness honours them), since a pure-Python
timing simulator cannot run the paper's 100M-instruction windows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.arvi import ARVIConfig, ValueMode
from repro.pipeline.config import MachineConfig, machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.pipeline.stats import SimulationResult
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import BENCHMARKS, get_program

CONFIGURATIONS = ("baseline", "current", "load back", "perfect")

_VALUE_MODES = {
    "current": ValueMode.CURRENT,
    "load back": ValueMode.LOAD_BACK,
    "perfect": ValueMode.PERFECT,
}


def default_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_warmup() -> int:
    return int(os.environ.get("REPRO_WARMUP", "10000"))


@dataclass(frozen=True)
class ExperimentPoint:
    """One cell of a paper figure: benchmark x configuration x depth."""

    benchmark: str
    configuration: str
    pipeline_depth: int


def run_point(point: ExperimentPoint, *, scale: float | None = None,
              warmup: int | None = None, seed: int = 1,
              arvi_config: ARVIConfig | None = None) -> SimulationResult:
    """Simulate one experiment point and return its statistics."""
    if point.configuration not in CONFIGURATIONS:
        raise ValueError(f"unknown configuration {point.configuration!r}")
    scale = default_scale() if scale is None else scale
    warmup = default_warmup() if warmup is None else warmup
    program = get_program(point.benchmark, scale=scale, seed=seed)
    config = machine_for_depth(point.pipeline_depth)

    if point.configuration == "baseline":
        predictor = build_predictor(LevelTwoKind.HYBRID, config)
        mode = ValueMode.CURRENT
    else:
        predictor = build_predictor(LevelTwoKind.ARVI, config, arvi_config)
        mode = _VALUE_MODES[point.configuration]

    engine = PipelineEngine(program, config, predictor,
                            value_mode=mode, warmup_instructions=warmup)
    result = engine.run()
    result.configuration = point.configuration
    return result


def run_suite(configurations=CONFIGURATIONS, depths=(20,),
              benchmarks=BENCHMARKS, *, scale: float | None = None,
              warmup: int | None = None,
              seed: int = 1) -> dict[tuple[str, str, int], SimulationResult]:
    """Run a grid of experiment points; keyed (benchmark, config, depth)."""
    results: dict[tuple[str, str, int], SimulationResult] = {}
    for depth in depths:
        for benchmark in benchmarks:
            for configuration in configurations:
                point = ExperimentPoint(benchmark, configuration, depth)
                results[(benchmark, configuration, depth)] = run_point(
                    point, scale=scale, warmup=warmup, seed=seed)
    return results
