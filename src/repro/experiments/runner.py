"""Experiment runner: the facade over the plan/schedule/cache layers.

The four configurations match paper Section 5:

* ``baseline``   — two-level 2Bc-gskew (L1 4 KB + L2 32 KB hybrid);
* ``current``    — ARVI level 2 with committed (current) values;
* ``load back``  — ARVI with aggressively hoisted loads;
* ``perfect``    — ARVI with oracle values (upper bound).

:func:`execute_point` performs one raw simulation; :func:`run_point` adds
default resolution (``REPRO_SCALE`` / ``REPRO_WARMUP``); :func:`run_suite`
expands a benchmark x configuration x depth grid through
:mod:`repro.experiments.plan`, shards it across processes via
:mod:`repro.experiments.scheduler` (``REPRO_JOBS`` workers) and replays
completed points from :mod:`repro.experiments.cache` — identical keyed
results whether a point was computed serially, in parallel, or loaded
from the cache.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.arvi import ARVIConfig, ValueMode
from repro.experiments.cache import ResultCache
from repro.experiments.plan import (
    CONFIGURATIONS,
    ExperimentPoint,
    build_plan,
    default_scale,
    default_warmup,
    point_key,
)
from repro.experiments.scheduler import ProgressCallback, run_plan
from repro.experiments.tracing import (
    kernel_mode,
    load_or_record,
    spec_mode,
    trace_mode,
)
from repro.obs.interval import IntervalSampler
from repro.pipeline.config import machine_for_depth
from repro.pipeline.engine import PipelineEngine, build_predictor
from repro.pipeline.kernel import (
    KernelUnsupported,
    ensure_lowered,
    is_lowered,
    kernel_run,
)
from repro.pipeline.specialize import specialized_run
from repro.pipeline.stats import SimulationResult
from repro.pipeline.trace import CommittedTrace, TraceReplayCore
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import BENCHMARKS, get_program

__all__ = [
    "CONFIGURATIONS",
    "ExperimentPoint",
    "default_scale",
    "default_warmup",
    "execute_point",
    "run_point",
    "run_suite",
]

_VALUE_MODES = {
    "current": ValueMode.CURRENT,
    "load back": ValueMode.LOAD_BACK,
    "perfect": ValueMode.PERFECT,
}


def execute_point(point: ExperimentPoint, *,
                  trace: "CommittedTrace | bool | None" = None,
                  info: dict | None = None,
                  ) -> SimulationResult:
    """Simulate one *resolved* point (no cache, no default resolution).

    This is the single compute kernel every execution path funnels
    through — the serial loop and the pool workers both call it.

    ``trace`` selects the functional source for ``redirect`` points
    (results are bit-for-bit identical either way):

    * a :class:`~repro.pipeline.trace.CommittedTrace` — replay it
      instead of re-interpreting the program (how the scheduler shares
      one recording across a batch);
    * ``None`` (default) — honour the environment: under
      ``REPRO_TRACE=disk`` the persistent trace store supplies (or
      records) the trace, otherwise run the live core;
    * ``False`` — force the live functional core regardless of the
      environment (the perf harness measures the live path this way).

    ``wrongpath`` points always run the live core.

    When a trace replays and the compiled kernel is on (``REPRO_KERNEL``,
    :func:`~repro.experiments.tracing.kernel_mode`), every redirect
    configuration runs over the lowered trace — ``baseline`` as the
    stream pass, the ARVI configurations as the fused pass — and with
    ``REPRO_KERNEL_SPEC`` on, stream-kind points first try the
    trace-specialized generated module.  Anything a tier cannot express
    falls through to the next (specialized -> kernel -> interpreted),
    counted in ``kernel_fallback_total`` and attributed to the point in
    the run ledger.  ``info``, when given, reports which path actually
    ran: ``info["kernel_source"]`` is ``"specialized"``, ``"kernel"``,
    ``"interpreted"`` or ``"live"`` (mirroring the backends'
    ``trace_source``).
    """
    point.validate()
    if trace is not None and not isinstance(trace, CommittedTrace) \
            and trace is not False:
        raise TypeError(
            "trace must be a CommittedTrace, False (force the live "
            f"core) or None (honour REPRO_TRACE); got {trace!r}")
    if point.scale is None or point.warmup is None:
        raise ValueError(
            "execute_point requires a resolved point; call "
            "point.resolve() first or use run_point/run_suite")
    perf = time.perf_counter
    phase_seconds: dict[str, float] = {}
    if info is not None:
        info["phase_seconds"] = phase_seconds
    with obs.span(point.benchmark, kind="point", attrs={
            "benchmark": point.benchmark,
            "configuration": point.configuration,
            "depth": point.pipeline_depth,
            "speculation": point.speculation}):
        result = _execute_phases(point, trace, info, phase_seconds, perf)
    result.configuration = point.configuration
    return result


def _execute_phases(point: ExperimentPoint,
                    trace: "CommittedTrace | bool | None",
                    info: dict | None,
                    phase_seconds: dict[str, float],
                    perf) -> SimulationResult:
    """The phase-instrumented body of :func:`execute_point`.

    Each phase (``lower`` / ``replay`` / ``live``; ``record`` lives in
    :func:`~repro.experiments.tracing.load_or_record`) is wall-clock
    timed into ``phase_seconds`` unconditionally — the bench harness
    reads these — and wrapped in a ledger span when telemetry is on.
    """
    program = get_program(point.benchmark, scale=point.scale,
                          seed=point.seed)
    config = machine_for_depth(point.pipeline_depth,
                               speculation=point.speculation)

    core = None
    if point.speculation == "redirect" and trace is not False:
        if trace is None and trace_mode() == "disk":
            trace = load_or_record(point.benchmark, point.scale, point.seed)
        if trace is not None:
            if kernel_mode():
                replayed = _compiled_replay(point, program, trace, config,
                                            phase_seconds, perf)
                if replayed is not None:
                    result, source = replayed
                    if info is not None:
                        info["kernel_source"] = source
                    return result
            core = TraceReplayCore(program, trace)
    if info is not None:
        info["kernel_source"] = "interpreted" if core is not None else "live"

    if point.configuration == "baseline":
        predictor = build_predictor(LevelTwoKind.HYBRID, config)
        mode = ValueMode.CURRENT
    else:
        predictor = build_predictor(LevelTwoKind.ARVI, config,
                                    point.arvi_config)
        mode = _VALUE_MODES[point.configuration]

    telemetry = obs.current()
    every = obs.interval_cycles() if telemetry is not None else 0
    sampler = IntervalSampler(every) if every else None

    phase = "replay" if core is not None else "live"
    start = perf()
    with obs.span(phase, kind="phase", attrs={
            "phase": phase,
            "mode": "interpreted" if core is not None else "live"}):
        engine = PipelineEngine(program, config, predictor, value_mode=mode,
                                warmup_instructions=point.warmup, core=core,
                                sampler=sampler)
        result = engine.run()
        if sampler is not None and telemetry is not None:
            for sample in sampler.samples:
                telemetry.emit("interval", kind="interval",
                               attrs=sample.to_attrs())
                telemetry.observe("engine.ddt_chain_length",
                                  sample.chain_length)
    phase_seconds[phase] = perf() - start
    return result


def _kernel_fallback(point: ExperimentPoint, exc: Exception,
                     tier: str) -> None:
    """Count and attribute one compiled-replay fallback.

    ``kernel_fallback_total{reason=...}`` aggregates across a run; the
    ``kernel_fallback`` ledger event carries the point key (prefix) and
    grid coordinates so an interpreted point in a grid is attributable
    from the run ledger alone.
    """
    obs.inc("kernel_fallback_total",
            reason=str(exc).split(";")[0][:80])
    obs.emit("kernel_fallback", kind="phase", attrs={
        "point": point_key(point)[:12],
        "benchmark": point.benchmark,
        "configuration": point.configuration,
        "depth": point.pipeline_depth,
        "tier": tier,
        "reason": str(exc)[:200]})


def _compiled_replay(point: ExperimentPoint, program, trace, config,
                     phase_seconds: dict[str, float],
                     perf) -> "tuple[SimulationResult, str] | None":
    """Try the compiled replay tiers for one redirect point.

    ``baseline`` maps to the stream kernel (``LevelTwoKind.HYBRID``);
    the paper's ARVI configurations map to the fused ARVI pass.  With
    ``REPRO_KERNEL_SPEC`` on, stream-kind points first try the
    trace-specialized generated module (its one-time codegen is timed
    as its own ``codegen`` phase).  Returns ``(result, source)`` with
    ``source`` in {"specialized", "kernel"}, or None when every tier
    declined — each fallback is counted and attributed via
    :func:`_kernel_fallback`, and the caller proceeds to the
    interpreted replay.
    """
    if point.configuration == "baseline":
        kind, value_mode = LevelTwoKind.HYBRID, ValueMode.CURRENT
    else:
        kind = LevelTwoKind.ARVI
        value_mode = _VALUE_MODES[point.configuration]
    try:
        if not is_lowered(trace, program):
            start = perf()
            with obs.span("lower", kind="phase",
                          attrs={"phase": "lower"}):
                ensure_lowered(program, trace)
            phase_seconds["lower"] = perf() - start
        if kind is LevelTwoKind.HYBRID and spec_mode():
            try:
                start = perf()
                with obs.span("replay", kind="phase", attrs={
                        "phase": "replay", "mode": "specialized"}):
                    result = specialized_run(
                        program, trace, config, kind,
                        warmup_instructions=point.warmup,
                        phase_seconds=phase_seconds)
                phase_seconds["replay"] = (
                    perf() - start - phase_seconds.get("codegen", 0.0))
            except KernelUnsupported as exc:
                _kernel_fallback(point, exc, "specialized")
            else:
                return result, "specialized"
        start = perf()
        with obs.span("replay", kind="phase", attrs={
                "phase": "replay", "mode": "kernel"}):
            result = kernel_run(
                program, trace, config, kind,
                warmup_instructions=point.warmup,
                value_mode=value_mode,
                arvi_config=point.arvi_config)
        phase_seconds["replay"] = perf() - start
    except KernelUnsupported as exc:
        _kernel_fallback(point, exc, "kernel")
        return None
    return result, "kernel"


def run_point(point: ExperimentPoint, *, scale: float | None = None,
              warmup: int | None = None, seed: int | None = None,
              arvi_config: ARVIConfig | None = None,
              speculation: str | None = None) -> SimulationResult:
    """Simulate one experiment point and return its statistics."""
    resolved = point.resolve(scale=scale, warmup=warmup, seed=seed,
                             arvi_config=arvi_config,
                             speculation=speculation)
    resolved.validate()
    return execute_point(resolved)


def run_suite(configurations=CONFIGURATIONS, depths=(20,),
              benchmarks=BENCHMARKS, *, scale: float | None = None,
              warmup: int | None = None, seed: int = 1,
              arvi_config: ARVIConfig | None = None,
              speculation: str = "redirect",
              jobs: int | None = None, cache: ResultCache | None = None,
              use_cache: bool = True,
              progress: ProgressCallback | None = None,
              batch: bool | None = None,
              backend=None,
              manifest=None,
              sink=None,
              ) -> dict[tuple[str, str, int], SimulationResult]:
    """Run a grid of experiment points; keyed (benchmark, config, depth).

    Facade over plan -> schedule -> cache -> collect.  ``jobs=None``
    honours ``REPRO_JOBS`` (default CPU count, ``1`` = serial);
    ``cache``/``use_cache`` control result replay (default store under
    ``benchmarks/results/cache/``, disable globally with ``REPRO_CACHE=0``).
    ``speculation`` selects the engine's wrong-path model for every point
    of the grid ("redirect" | "wrongpath"); run the suite once per mode to
    sweep it — each mode has its own cache keys, so replays never mix.
    ``batch=None`` honours ``REPRO_BATCH`` (default on): same-benchmark
    points are simulated in per-worker batches that share one program
    build (results are identical either way).  ``backend=None`` honours
    ``REPRO_BACKEND`` (``serial`` | ``local`` | ``queue``; see
    :mod:`repro.experiments.backends`) — results are bit-for-bit equal
    on every backend.  ``manifest=None`` honours ``REPRO_MANIFEST``
    (crash-safe resumable runs; see :func:`run_plan`).  ``sink`` is an
    optional live-view aggregator (see
    :mod:`repro.experiments.aggregate`) fed every progress tick and
    per-point result as the grid runs; ``sink=None`` honours
    ``REPRO_SERVE`` (serve the views over HTTP/SSE for the duration of
    the run; see :mod:`repro.serve`).
    """
    plan = build_plan(configurations, depths, benchmarks, scale=scale,
                      warmup=warmup, seed=seed, arvi_config=arvi_config,
                      speculation=speculation)
    results = run_plan(plan, jobs=jobs, cache=cache, use_cache=use_cache,
                       progress=progress, batch=batch, backend=backend,
                       manifest=manifest, sink=sink)
    return {point.grid_key: result for point, result in results.items()}
