"""Tracked performance harness (``python -m repro.bench``).

Measures the simulator's *host* performance — simulated instructions per
second and per-point wall time — so the perf trajectory of the hot path
is tracked from PR 3 onward:

* **single points**: m88ksim and compress, ``baseline`` configuration,
  20-stage machine, in both speculation modes (``redirect`` and
  ``wrongpath``), best-of-N wall time (always the live functional core);
* **trace replay** (DESIGN.md §8): for the redirect points, live-core
  sim-ips vs replaying a recorded committed trace through the
  *interpreted* engine loop (``REPRO_KERNEL=0``, the PR 4 path, kept
  measurable for continuity) — the recording cost, the warm replay
  throughput, and the speedup.  Replay and live results **must** be
  bit-for-bit equal; a divergence raises and fails the run (this is the
  CI correctness gate — perf numbers stay informational);
* **kernel replay** (DESIGN.md §10): the same redirect points through
  the compiled replay kernel, with per-phase timing (record / lower /
  replay) and kernel-vs-interpreted-vs-live speedups.  The kernel
  result **must** equal both the interpreted replay and the live run —
  the second hard gate — and the PR 4 interpreted-replay numbers are
  carried forward (``kernel.pr4_baseline``) so the kernel's speedup
  over them stays visible across regenerations;
* **ARVI kernel replay** (DESIGN.md §13): the ``current`` ARVI
  configuration through the fused kernel pass vs interpreted vs live —
  the paper's own sweep axis, hard-gated bit-for-bit like the stream
  kinds;
* **specialized replay** (DESIGN.md §13): the redirect points through
  the trace-specialized generated module (``REPRO_KERNEL_SPEC=1``) vs
  the stream kernel, with record / lower / codegen / replay phase
  timings — equality hard-gated, the warm ``specialized_vs_kernel``
  ratio is the ISSUE 9 acceptance number;
* **grid batching**: a cold same-benchmark grid (cache disabled) run
  twice through the process-pool scheduler — once with in-worker point
  batching, once per-point — to track the scheduling-overhead win;
* **grid trace amortization**: a redirect configuration x depth grid run
  with trace sharing on vs off (``REPRO_TRACE``), tracking the
  batch-amortized record-once/replay-many win;
* **telemetry overhead** (DESIGN.md §11): the same live point with the
  flight recorder off vs on (``REPRO_OBS=1`` + default-period interval
  sampling) — results must stay bit-for-bit identical, and the relative
  overhead is gated (``--obs-gate``, default <3%) in the perf smoke.

Results are written to ``BENCH_perf.json`` at the repository root.  The
file carries a ``baseline`` section (the pre-optimization seed numbers,
recorded when the harness was introduced) that is preserved across runs;
when the current run's scale/warmup match the baseline's, per-point and
trace-replay speedups are reported against it.  Numbers are
host-dependent — comparisons are only meaningful on the same machine.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from datetime import datetime, timezone

from repro.experiments.plan import ExperimentPoint, plan_from_points
from repro.experiments.runner import execute_point
from repro.experiments.scheduler import run_plan
from repro.pipeline.kernel import ensure_lowered
from repro.pipeline.trace import TraceRecorder
from repro.predictors.twolevel import LevelTwoKind
from repro.workloads.registry import get_program

#: v5: ``arvi_kernel`` (fused ARVI pass vs interpreted vs live, hard
#: equality gate) + ``specialized`` (trace-specialized codegen vs the
#: kernel, with per-phase record/lower/codegen/replay timings) sections,
#: and the observability overhead re-measured as paired rounds /
#: median-of-ratios; v4 sourced kernel phase timings from
#: ``execute_point``'s ``info["phase_seconds"]`` + the ``observability``
#: section with its CI gate (PR 7); v3 added the kernel section +
#: carried PR 4 baseline (PR 6); v2 added trace_replay + grid_trace
#: (PR 4).
SCHEMA_VERSION = 5

#: Single-point measurements: (benchmark, speculation mode).
POINT_MATRIX = (
    ("m88ksim", "redirect"),
    ("m88ksim", "wrongpath"),
    ("compress", "redirect"),
    ("compress", "wrongpath"),
)

#: Grid for the batching comparison: many small same-benchmark points
#: (the CI-smoke / figure-grid shape) so the per-task scheduling overhead
#: is a visible fraction of the work.
GRID_CONFIGURATIONS = ("baseline", "current", "load back", "perfect")
GRID_DEPTHS = (20, 40, 60)
GRID_SEEDS = tuple(range(1, 9))
GRID_BENCHMARK = "m88ksim"


def repo_root() -> pathlib.Path:
    """The checkout root (where ``BENCH_perf.json`` lives)."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root
    return pathlib.Path.cwd()


def measure_point(benchmark: str, speculation: str, *, scale: float,
                  warmup: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time for one cold baseline point."""
    point = ExperimentPoint(benchmark, "baseline", 20, scale=scale,
                            warmup=warmup, speculation=speculation).resolve()
    best = None
    instructions = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = execute_point(point, trace=False)  # always the live core
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        instructions = result.total_instructions
    return {
        "instructions": instructions,
        "wall_seconds": round(best, 4),
        "sim_ips": round(instructions / best, 1),
    }


def measure_trace_replay(benchmark: str, *, scale: float, warmup: int,
                         repeats: int = 3) -> dict:
    """Live-core vs trace-replay sim-ips for one redirect point.

    Records the committed trace once (timed), replays it through the
    same timing configuration (warm best-of-``repeats``, so the
    materialized stream is shared the way a batch shares it), and
    *asserts* the replayed ``SimulationResult`` equals the live one —
    the correctness gate CI relies on.  The replay is forced onto the
    interpreted path (``REPRO_KERNEL=0``) so this section keeps
    measuring the PR 4 loop; the compiled kernel has its own section
    (:func:`measure_kernel_replay`).
    """
    point = ExperimentPoint(benchmark, "baseline", 20, scale=scale,
                            warmup=warmup).resolve()
    live_best = None
    live_result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        live_result = execute_point(point, trace=False)
        elapsed = time.perf_counter() - start
        if live_best is None or elapsed < live_best:
            live_best = elapsed

    program = get_program(benchmark, scale=point.scale, seed=point.seed)
    start = time.perf_counter()
    trace = TraceRecorder(program).record()
    record_seconds = time.perf_counter() - start

    replay_best = None
    replay_result = None
    previous = os.environ.get("REPRO_KERNEL")
    try:
        os.environ["REPRO_KERNEL"] = "0"  # measure the interpreted path
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            replay_result = execute_point(point, trace=trace)
            elapsed = time.perf_counter() - start
            if replay_best is None or elapsed < replay_best:
                replay_best = elapsed
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous

    if replay_result != live_result:  # the hard correctness gate
        raise AssertionError(
            f"{benchmark}: trace-replay result diverged from the live "
            "functional core")
    instructions = live_result.total_instructions
    return {
        "instructions": instructions,
        "live_sim_ips": round(instructions / live_best, 1),
        "replay_sim_ips": round(instructions / replay_best, 1),
        "record_seconds": round(record_seconds, 4),
        "replay_wall_seconds": round(replay_best, 4),
        "replay_speedup": round(live_best / replay_best, 4),
    }


def measure_kernel_replay(benchmark: str, *, scale: float, warmup: int,
                          repeats: int = 3) -> dict:
    """Compiled-kernel replay vs interpreted replay vs live, per phase.

    Times each phase of the kernel path separately — recording the
    committed trace, lowering it to array form (including the one-shot
    branch decision streams), and the warm per-config replay — and
    *asserts* the kernel result is bit-for-bit equal to both the
    interpreted replay and the live run: the PR 6 correctness gate
    mirroring PR 4's replay==live gate.

    The lower/replay timings come from ``execute_point``'s
    ``info["phase_seconds"]`` — the same per-phase clocks that feed the
    telemetry ledger spans — so the bench numbers and a run ledger's
    phase breakdown are directly comparable (schema v4).
    """
    point = ExperimentPoint(benchmark, "baseline", 20, scale=scale,
                            warmup=warmup).resolve()
    live_best = None
    live_result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        live_result = execute_point(point, trace=False)
        elapsed = time.perf_counter() - start
        if live_best is None or elapsed < live_best:
            live_best = elapsed

    program = get_program(benchmark, scale=point.scale, seed=point.seed)
    start = time.perf_counter()
    trace = TraceRecorder(program).record()
    record_seconds = time.perf_counter() - start

    previous = os.environ.get("REPRO_KERNEL")
    try:
        os.environ["REPRO_KERNEL"] = "0"
        interp_best = None
        interpreted = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            interpreted = execute_point(point, trace=trace)
            elapsed = time.perf_counter() - start
            if interp_best is None or elapsed < interp_best:
                interp_best = elapsed

        os.environ["REPRO_KERNEL"] = "1"
        kernel_best = None
        kernel_result = None
        lower_seconds = None
        for _ in range(max(1, repeats)):
            info: dict = {}
            kernel_result = execute_point(point, trace=trace, info=info)
            phases = info["phase_seconds"]
            if "lower" in phases:      # only the first (cold) run lowers
                lower_seconds = phases["lower"]
            elapsed = phases["replay"]
            if kernel_best is None or elapsed < kernel_best:
                kernel_best = elapsed
            if info.get("kernel_source") != "kernel":
                raise AssertionError(
                    f"{benchmark}: compiled kernel did not engage "
                    f"(kernel_source={info.get('kernel_source')!r})")
        if lower_seconds is None:
            raise AssertionError(
                f"{benchmark}: no cold lowering phase observed — was the "
                "trace already lowered before the harness ran?")
        lowered = ensure_lowered(program, trace)  # cached: just the label
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous

    if kernel_result != interpreted:  # the hard correctness gate
        raise AssertionError(
            f"{benchmark}: kernel replay diverged from the interpreted "
            "replay")
    if interpreted != live_result:  # PR 4's gate, kept
        raise AssertionError(
            f"{benchmark}: trace replay diverged from the live "
            "functional core")
    instructions = live_result.total_instructions
    return {
        "instructions": instructions,
        "lowering_backend": lowered.backend,
        "phases": {
            "record_seconds": round(record_seconds, 4),
            "lower_seconds": round(lower_seconds, 4),
            "replay_wall_seconds": round(kernel_best, 4),
        },
        "kernel_sim_ips": round(instructions / kernel_best, 1),
        "interpreted_sim_ips": round(instructions / interp_best, 1),
        "live_sim_ips": round(instructions / live_best, 1),
        "kernel_vs_interpreted": round(interp_best / kernel_best, 4),
        "kernel_vs_live": round(live_best / kernel_best, 4),
    }


def measure_arvi_kernel(benchmark: str, *, scale: float, warmup: int,
                        repeats: int = 3) -> dict:
    """Fused ARVI kernel pass vs interpreted replay vs live.

    The paper's own sweep axis: the ``current`` ARVI configuration at
    depth 20, replayed through the fused kernel pass
    (``LevelTwoKind.ARVI`` in ``_SUPPORTED_KINDS``) and through the
    interpreted engine loop, against the live run.  All three results
    **must** be bit-for-bit equal — the ISSUE 9 hard gate mirroring the
    PR 6 stream-kind gate — and the kernel must actually engage
    (``kernel_source == "kernel"``); the speedups are informational.
    """
    point = ExperimentPoint(benchmark, "current", 20, scale=scale,
                            warmup=warmup).resolve()
    live_best = None
    live_result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        live_result = execute_point(point, trace=False)
        elapsed = time.perf_counter() - start
        if live_best is None or elapsed < live_best:
            live_best = elapsed

    program = get_program(benchmark, scale=point.scale, seed=point.seed)
    trace = TraceRecorder(program).record()

    previous = os.environ.get("REPRO_KERNEL")
    try:
        os.environ["REPRO_KERNEL"] = "0"
        interp_best = None
        interpreted = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            interpreted = execute_point(point, trace=trace)
            elapsed = time.perf_counter() - start
            if interp_best is None or elapsed < interp_best:
                interp_best = elapsed

        os.environ["REPRO_KERNEL"] = "1"
        kernel_best = None
        kernel_result = None
        for _ in range(max(1, repeats)):
            info: dict = {}
            kernel_result = execute_point(point, trace=trace, info=info)
            elapsed = info["phase_seconds"]["replay"]
            if kernel_best is None or elapsed < kernel_best:
                kernel_best = elapsed
            if info.get("kernel_source") != "kernel":
                raise AssertionError(
                    f"{benchmark}: ARVI fused kernel did not engage "
                    f"(kernel_source={info.get('kernel_source')!r})")
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous

    if kernel_result != interpreted:  # the ISSUE 9 hard gate
        raise AssertionError(
            f"{benchmark}: ARVI kernel replay diverged from the "
            "interpreted replay")
    if interpreted != live_result:
        raise AssertionError(
            f"{benchmark}: ARVI trace replay diverged from the live "
            "functional core")
    instructions = live_result.total_instructions
    return {
        "instructions": instructions,
        "configuration": "current",
        "kernel_sim_ips": round(instructions / kernel_best, 1),
        "interpreted_sim_ips": round(instructions / interp_best, 1),
        "live_sim_ips": round(instructions / live_best, 1),
        "arvi_kernel_vs_interpreted": round(interp_best / kernel_best, 4),
        "arvi_kernel_vs_live": round(live_best / kernel_best, 4),
    }


def measure_specialized_replay(benchmark: str, *, scale: float,
                               warmup: int, repeats: int = 3) -> dict:
    """Trace-specialized generated replay vs the stream kernel.

    Times every phase of the specialized path — recording, lowering,
    the one-time codegen (into a throwaway ``REPRO_KERNEL_SPEC_DIR`` so
    it is always measured cold) and the warm replay — and **asserts**
    the specialized result is bit-for-bit equal to the kernel's (which
    ``measure_kernel_replay`` already gated against interpreted and
    live).  ``specialized_vs_kernel`` is the warm replay-phase ratio —
    the ISSUE 9 acceptance number (≥1.2x on m88ksim at scale 1.0).
    """
    import tempfile

    point = ExperimentPoint(benchmark, "baseline", 20, scale=scale,
                            warmup=warmup).resolve()
    program = get_program(benchmark, scale=point.scale, seed=point.seed)
    start = time.perf_counter()
    trace = TraceRecorder(program).record()
    record_seconds = time.perf_counter() - start

    env_keys = ("REPRO_KERNEL", "REPRO_KERNEL_SPEC",
                "REPRO_KERNEL_SPEC_DIR")
    previous = {key: os.environ.get(key) for key in env_keys}
    try:
        os.environ["REPRO_KERNEL"] = "1"
        os.environ["REPRO_KERNEL_SPEC"] = "0"
        kernel_best = None
        kernel_result = None
        lower_seconds = 0.0
        for _ in range(max(1, repeats)):
            info: dict = {}
            kernel_result = execute_point(point, trace=trace, info=info)
            phases = info["phase_seconds"]
            if "lower" in phases:      # only the first (cold) run lowers
                lower_seconds = phases["lower"]
            elapsed = phases["replay"]
            if kernel_best is None or elapsed < kernel_best:
                kernel_best = elapsed

        os.environ["REPRO_KERNEL_SPEC"] = "1"
        spec_best = None
        spec_result = None
        codegen_seconds = None
        with tempfile.TemporaryDirectory() as tmp:
            os.environ["REPRO_KERNEL_SPEC_DIR"] = tmp
            for _ in range(max(1, repeats)):
                info = {}
                spec_result = execute_point(point, trace=trace, info=info)
                phases = info["phase_seconds"]
                if "codegen" in phases:  # only the first (cold) run
                    codegen_seconds = phases["codegen"]
                elapsed = phases["replay"]
                if spec_best is None or elapsed < spec_best:
                    spec_best = elapsed
                if info.get("kernel_source") != "specialized":
                    raise AssertionError(
                        f"{benchmark}: specialized replay did not engage "
                        f"(kernel_source={info.get('kernel_source')!r})")
        if codegen_seconds is None:
            raise AssertionError(
                f"{benchmark}: no cold codegen phase observed — was the "
                "specialized module cached before the harness ran?")
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    if spec_result != kernel_result:  # the ISSUE 9 hard gate
        raise AssertionError(
            f"{benchmark}: specialized replay diverged from the kernel "
            "replay")
    instructions = kernel_result.total_instructions
    return {
        "instructions": instructions,
        "phases": {
            "record_seconds": round(record_seconds, 4),
            "lower_seconds": round(lower_seconds, 4),
            "codegen_seconds": round(codegen_seconds, 4),
            "replay_wall_seconds": round(spec_best, 4),
        },
        "specialized_sim_ips": round(instructions / spec_best, 1),
        "kernel_sim_ips": round(instructions / kernel_best, 1),
        "specialized_vs_kernel": round(kernel_best / spec_best, 4),
    }


def measure_obs_overhead(benchmark: str = "m88ksim", *, scale: float,
                         warmup: int, repeats: int = 3) -> dict:
    """Telemetry-on vs telemetry-off throughput for one live point.

    Runs the same cold baseline point with the flight recorder off and
    inside an active telemetry run with interval sampling at its default
    period (``REPRO_OBS=1`` + ``REPRO_OBS_INTERVAL=1``, ledger into a
    throwaway directory), and reports the relative wall-time overhead.

    Methodology (schema v5): off/on run **back-to-back as a pair** each
    round so host-load drift hits both sides of a ratio equally, the
    first paired round is discarded (it pays cold caches and first-touch
    allocator costs for both sides), and the reported overhead is the
    **median of the per-round on/off ratios** — the old best-of-per-side
    estimator let an unlucky "off" best make the overhead come out
    negative, turning the <3% CI gate into a scheduling-noise test.
    The results **must** be bit-for-bit equal — telemetry observing a
    simulation is the ISSUE 7 do-no-harm gate — and CI additionally
    bounds ``overhead_pct`` via ``--obs-gate`` (default 3%).
    """
    import gc
    import statistics
    import tempfile

    from repro import obs

    point = ExperimentPoint(benchmark, "baseline", 20, scale=scale,
                            warmup=warmup).resolve()
    env_keys = ("REPRO_OBS", "REPRO_OBS_DIR", "REPRO_OBS_INTERVAL")
    previous = {key: os.environ.get(key) for key in env_keys}
    pairs: list[tuple[float, float]] = []
    off_result = on_result = None
    # Twelve warm pairs minimum: single-run wall times on shared hosts
    # spread 20-30%, so a small-sample median still lands outside the
    # CI gate too often.  A dozen paired ratios keep the median's own
    # noise comfortably inside it, and the off/on legs stay adjacent so
    # load drift cancels within each ratio.
    rounds = max(12, repeats) + 1  # round 0 is a discarded warmup pair
    try:
        with tempfile.TemporaryDirectory() as tmp:
            for _ in range(rounds):
                for key in env_keys:
                    os.environ.pop(key, None)
                gc.collect()  # the previous on-leg's dead ledger
                # objects must not be collected inside the off-leg
                start = time.perf_counter()
                off_result = execute_point(point, trace=False)
                off_elapsed = time.perf_counter() - start

                os.environ["REPRO_OBS"] = "1"
                os.environ["REPRO_OBS_DIR"] = tmp
                os.environ["REPRO_OBS_INTERVAL"] = "1"
                telemetry = obs.start_run(label="bench-overhead", root=tmp)
                try:
                    gc.collect()
                    start = time.perf_counter()
                    on_result = execute_point(point, trace=False)
                    on_elapsed = time.perf_counter() - start
                finally:
                    obs.close_run(telemetry)
                pairs.append((off_elapsed, on_elapsed))
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    if on_result != off_result:  # the do-no-harm hard gate
        raise AssertionError(
            f"{benchmark}: enabling telemetry changed the simulation "
            "result")
    warm = pairs[1:]
    off_median = statistics.median(off for off, _ in warm)
    on_median = statistics.median(on for _, on in warm)
    ratio = statistics.median(on / off for off, on in warm)
    instructions = off_result.total_instructions
    return {
        "benchmark": benchmark,
        "instructions": instructions,
        "interval_cycles": 50_000,
        "rounds": len(warm),
        "off_sim_ips": round(instructions / off_median, 1),
        "on_sim_ips": round(instructions / on_median, 1),
        "off_wall_seconds": round(off_median, 4),
        "on_wall_seconds": round(on_median, 4),
        "overhead_pct": round((ratio - 1.0) * 100, 2),
    }


def measure_grid_batching(*, scale: float, warmup: int, jobs: int = 2,
                          repeats: int = 2) -> dict:
    """Cold same-benchmark grid: batched vs per-point worker submission.

    Both runs bypass the result cache entirely, use the same worker count
    and produce identical results (asserted); only the submission policy
    differs.  Best-of-``repeats`` per mode to damp pool-startup noise.
    """
    points = [
        ExperimentPoint(GRID_BENCHMARK, configuration, depth, scale=scale,
                        warmup=warmup, seed=seed)
        for configuration in GRID_CONFIGURATIONS
        for depth in GRID_DEPTHS
        for seed in GRID_SEEDS
    ]
    plan = plan_from_points(points)

    timings: dict[bool, float] = {}
    outcomes: dict[bool, dict] = {}
    for _ in range(max(1, repeats)):
        for batching in (True, False):
            start = time.perf_counter()
            outcomes[batching] = run_plan(plan, jobs=jobs, use_cache=False,
                                          batch=batching)
            elapsed = time.perf_counter() - start
            if batching not in timings or elapsed < timings[batching]:
                timings[batching] = elapsed

    if outcomes[True] != outcomes[False]:  # pragma: no cover - invariant
        raise AssertionError("batched and per-point grid results differ")
    return {
        "benchmark": GRID_BENCHMARK,
        "points": len(plan),
        "scale": scale,
        "warmup": warmup,
        "jobs": jobs,
        "batched_seconds": round(timings[True], 4),
        "per_point_seconds": round(timings[False], 4),
        "batching_speedup": round(timings[False] / timings[True], 4),
    }


def measure_grid_trace(*, scale: float, warmup: int, jobs: int = 2,
                       repeats: int = 2) -> dict:
    """Batch-amortized trace win: a redirect config x depth grid, cold.

    The same plan runs through the batched scheduler with trace sharing
    on (record once per batch, replay every point) and off (live core
    per point); results must be identical, only the wall time differs.
    Unlike the batching grid this one uses the harness scale directly —
    trace replay amortizes *simulation* work, so the points must be big
    enough to measure.
    """
    points = [
        ExperimentPoint(GRID_BENCHMARK, configuration, depth, scale=scale,
                        warmup=warmup)
        for configuration in GRID_CONFIGURATIONS
        for depth in GRID_DEPTHS
    ]
    plan = plan_from_points(points)

    timings: dict[str, float] = {}
    outcomes: dict[str, dict] = {}
    previous = os.environ.get("REPRO_TRACE")
    try:
        for _ in range(max(1, repeats)):
            for mode in ("1", "0"):
                os.environ["REPRO_TRACE"] = mode
                start = time.perf_counter()
                outcomes[mode] = run_plan(plan, jobs=jobs, use_cache=False,
                                          batch=True)
                elapsed = time.perf_counter() - start
                if mode not in timings or elapsed < timings[mode]:
                    timings[mode] = elapsed
    finally:
        if previous is None:
            os.environ.pop("REPRO_TRACE", None)
        else:
            os.environ["REPRO_TRACE"] = previous

    if outcomes["1"] != outcomes["0"]:  # the hard correctness gate
        raise AssertionError("trace-shared and live grid results differ")
    return {
        "benchmark": GRID_BENCHMARK,
        "points": len(plan),
        "scale": scale,
        "warmup": warmup,
        "jobs": jobs,
        "traced_seconds": round(timings["1"], 4),
        "live_seconds": round(timings["0"], 4),
        "trace_speedup": round(timings["0"] / timings["1"], 4),
    }


def _load_previous(output: pathlib.Path) -> dict | None:
    try:
        previous = json.loads(output.read_text())
    except (OSError, ValueError):
        return None
    return previous if isinstance(previous, dict) else None


def _load_baseline(output: pathlib.Path) -> dict | None:
    """Carry the recorded pre-optimization baseline across runs."""
    previous = _load_previous(output)
    if previous is None:
        return None
    baseline = previous.get("baseline")
    return baseline if isinstance(baseline, dict) else None


def _pr4_baseline(output: pathlib.Path) -> dict | None:
    """Carry the PR 4 interpreted-replay numbers across runs.

    Seeded from a schema-2 file's ``trace_replay`` section on the first
    schema-3 regeneration, then preserved verbatim — so the kernel's
    speedup over the pre-kernel replay loop stays visible no matter how
    often the file is regenerated.
    """
    previous = _load_previous(output)
    if previous is None:
        return None
    kernel = previous.get("kernel")
    if isinstance(kernel, dict) and isinstance(
            kernel.get("pr4_baseline"), dict):
        return kernel["pr4_baseline"]
    replay = previous.get("trace_replay")
    if isinstance(replay, dict):
        points = {
            name: sample["replay_sim_ips"]
            for name, sample in replay.items()
            if isinstance(sample, dict) and sample.get("replay_sim_ips")}
        if points:
            return {
                "label": "PR 4 interpreted trace replay",
                "scale": previous.get("scale"),
                "warmup": previous.get("warmup"),
                "points": points,
            }
    return None


def run_bench(*, scale: float = 1.0, warmup: int = 1000, repeats: int = 3,
              jobs: int = 2, grid_scale: float | None = None,
              skip_grid: bool = False, skip_trace: bool = False,
              obs_gate: float = 3.0,
              output: pathlib.Path | None = None,
              echo=print) -> dict:
    """Run the harness and write ``BENCH_perf.json``; returns the report."""
    output = repo_root() / "BENCH_perf.json" if output is None else output
    baseline = _load_baseline(output)
    pr4 = _pr4_baseline(output)

    report: dict = {
        "schema": SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "scale": scale,
        "warmup": warmup,
        "repeats": repeats,
        "points": {},
    }

    for benchmark, speculation in POINT_MATRIX:
        key = f"{benchmark}/{speculation}"
        sample = measure_point(benchmark, speculation, scale=scale,
                               warmup=warmup, repeats=repeats)
        report["points"][key] = sample
        echo(f"{key}: {sample['sim_ips']:,.0f} sim-inst/s "
             f"({sample['instructions']} instructions, "
             f"{sample['wall_seconds']:.3f}s)")

    if not skip_trace:
        report["trace_replay"] = {}
        for benchmark, speculation in POINT_MATRIX:
            if speculation != "redirect":
                continue  # replay only exists for redirect points
            sample = measure_trace_replay(benchmark, scale=scale,
                                          warmup=warmup, repeats=repeats)
            report["trace_replay"][benchmark] = sample
            echo(f"{benchmark} trace replay: "
                 f"{sample['replay_sim_ips']:,.0f} sim-inst/s vs live "
                 f"{sample['live_sim_ips']:,.0f} "
                 f"({sample['replay_speedup']:.2f}x; record "
                 f"{sample['record_seconds']:.3f}s, results identical)")

        report["kernel"] = {}
        if pr4 is not None:
            report["kernel"]["pr4_baseline"] = pr4
        for benchmark, speculation in POINT_MATRIX:
            if speculation != "redirect":
                continue  # the kernel only exists for redirect points
            sample = measure_kernel_replay(benchmark, scale=scale,
                                           warmup=warmup, repeats=repeats)
            if (pr4 is not None and pr4.get("scale") == scale
                    and pr4.get("warmup") == warmup):
                base = pr4.get("points", {}).get(benchmark)
                if base:
                    sample["kernel_vs_pr4_replay"] = round(
                        sample["kernel_sim_ips"] / base, 3)
            report["kernel"][benchmark] = sample
            echo(f"{benchmark} kernel replay: "
                 f"{sample['kernel_sim_ips']:,.0f} sim-inst/s vs "
                 f"interpreted {sample['interpreted_sim_ips']:,.0f} "
                 f"({sample['kernel_vs_interpreted']:.2f}x) vs live "
                 f"{sample['live_sim_ips']:,.0f} "
                 f"({sample['kernel_vs_live']:.2f}x; lower "
                 f"{sample['phases']['lower_seconds']:.3f}s, results "
                 "identical)")

        report["arvi_kernel"] = {}
        for benchmark, speculation in POINT_MATRIX:
            if speculation != "redirect":
                continue  # the kernel only exists for redirect points
            sample = measure_arvi_kernel(benchmark, scale=scale,
                                         warmup=warmup, repeats=repeats)
            report["arvi_kernel"][benchmark] = sample
            echo(f"{benchmark} ARVI kernel replay: "
                 f"{sample['kernel_sim_ips']:,.0f} sim-inst/s vs "
                 f"interpreted {sample['interpreted_sim_ips']:,.0f} "
                 f"({sample['arvi_kernel_vs_interpreted']:.2f}x) vs live "
                 f"{sample['live_sim_ips']:,.0f} "
                 f"({sample['arvi_kernel_vs_live']:.2f}x, results "
                 "identical)")

        report["specialized"] = {}
        for benchmark, speculation in POINT_MATRIX:
            if speculation != "redirect":
                continue  # specialization only exists for redirect points
            sample = measure_specialized_replay(
                benchmark, scale=scale, warmup=warmup, repeats=repeats)
            report["specialized"][benchmark] = sample
            echo(f"{benchmark} specialized replay: "
                 f"{sample['specialized_sim_ips']:,.0f} sim-inst/s vs "
                 f"kernel {sample['kernel_sim_ips']:,.0f} "
                 f"({sample['specialized_vs_kernel']:.2f}x; codegen "
                 f"{sample['phases']['codegen_seconds']:.3f}s, results "
                 "identical)")

        grid = measure_grid_trace(scale=scale, warmup=warmup, jobs=jobs)
        report["grid_trace"] = grid
        echo(f"grid trace sharing ({grid['points']} {GRID_BENCHMARK} "
             f"redirect points, {grid['jobs']} workers): traced "
             f"{grid['traced_seconds']:.2f}s vs live "
             f"{grid['live_seconds']:.2f}s ({grid['trace_speedup']:.2f}x)")

    sample = measure_obs_overhead(scale=scale, warmup=warmup,
                                  repeats=repeats)
    report["observability"] = sample
    echo(f"{sample['benchmark']} telemetry overhead: "
         f"{sample['on_sim_ips']:,.0f} sim-inst/s on vs "
         f"{sample['off_sim_ips']:,.0f} off "
         f"({sample['overhead_pct']:+.2f}%, results identical)")
    if obs_gate > 0 and sample["overhead_pct"] > obs_gate:
        raise AssertionError(
            f"telemetry overhead {sample['overhead_pct']:.2f}% exceeds "
            f"the {obs_gate:.1f}% gate (--obs-gate 0 disables)")

    if not skip_grid:
        # Tiny windows: the grid measures scheduling overhead, not the
        # simulator, so each of its ~100 points should be milliseconds.
        grid = measure_grid_batching(
            scale=scale * 0.005 if grid_scale is None else grid_scale,
            warmup=min(warmup, 100), jobs=jobs)
        report["grid_batching"] = grid
        echo(f"grid batching ({grid['points']} {GRID_BENCHMARK} points, "
             f"{grid['jobs']} workers): batched {grid['batched_seconds']:.2f}s"
             f" vs per-point {grid['per_point_seconds']:.2f}s "
             f"({grid['batching_speedup']:.2f}x)")

    if baseline is not None:
        report["baseline"] = baseline
        if (baseline.get("scale") == scale
                and baseline.get("warmup") == warmup):
            speedups = {}
            for key, sample in report["points"].items():
                base = baseline.get("points", {}).get(key)
                if base and base.get("sim_ips"):
                    speedups[key] = round(
                        sample["sim_ips"] / base["sim_ips"], 3)
            for benchmark, sample in report.get("trace_replay", {}).items():
                base = baseline.get("points", {}).get(f"{benchmark}/redirect")
                if base and base.get("sim_ips"):
                    speedups[f"{benchmark}/redirect via trace replay"] = (
                        round(sample["replay_sim_ips"] / base["sim_ips"], 3))
            for benchmark, sample in report.get("kernel", {}).items():
                if benchmark == "pr4_baseline":
                    continue
                base = baseline.get("points", {}).get(f"{benchmark}/redirect")
                if base and base.get("sim_ips"):
                    speedups[f"{benchmark}/redirect via kernel replay"] = (
                        round(sample["kernel_sim_ips"] / base["sim_ips"], 3))
            report["speedup_vs_baseline"] = speedups
            for key, ratio in speedups.items():
                echo(f"{key}: {ratio:.2f}x vs baseline "
                     f"({baseline.get('label', 'recorded baseline')})")
        else:
            echo("baseline recorded at a different scale/warmup; "
                 "speedups not computed")

    output.write_text(json.dumps(report, indent=2) + "\n")
    echo(f"[written to {output}]")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulator host performance and write "
                    "BENCH_perf.json at the repository root.")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="simulation window scale for the single "
                             "points (default 1.0)")
    parser.add_argument("--warmup", type=int, default=1000,
                        help="warmup instructions per point (default 1000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per point (default 3)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="workers for the grid comparison (default 2)")
    parser.add_argument("--grid-scale", type=float, default=None,
                        help="scale for the batching grid "
                             "(default: --scale x 0.005 — the grid "
                             "measures scheduling overhead, so its ~100 "
                             "points are kept tiny)")
    parser.add_argument("--skip-grid", action="store_true",
                        help="skip the batched-vs-per-point grid run")
    parser.add_argument("--skip-trace", action="store_true",
                        help="skip the trace-replay comparison (also "
                             "skips its replay==live correctness gate)")
    parser.add_argument("--obs-gate", type=float, default=3.0,
                        help="fail if telemetry overhead exceeds this "
                             "percentage (default 3.0; 0 disables the "
                             "gate, the measurement always runs)")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="output path (default: BENCH_perf.json at "
                             "the repo root)")
    args = parser.parse_args(argv)
    run_bench(scale=args.scale, warmup=args.warmup, repeats=args.repeats,
              jobs=args.jobs, grid_scale=args.grid_scale,
              skip_grid=args.skip_grid, skip_trace=args.skip_trace,
              obs_gate=args.obs_gate, output=args.output)
    return 0
