"""Set-associative caches, TLBs and the memory hierarchy timing model.

These are *timing* models only: data values come from the functional core,
so the caches track tags and recency, not contents.  ``MemoryHierarchy``
composes L1I/L1D over a unified L2 over main memory and returns the access
latency for a given address, performing fills along the way.

Wrong-path accesses (``wrong_path=True``, issued by the engine's
``wrongpath`` speculation mode) mutate tag/recency state exactly like
demand accesses — that *is* the pollution/prefetch effect being modelled —
but are counted separately, so demand miss rates stay comparable across
speculation modes and the pollution itself is measurable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.pipeline.config import CacheConfig, MachineConfig, TLBConfig


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses (tags only)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        if 1 << self._line_shift != config.line_bytes:
            raise ValueError("line size must be a power of two")
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self.hit_latency = config.hit_latency
        # Each set is a dict tag -> recency counter; dict order is not used,
        # an explicit counter implements exact LRU.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self._num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.wrong_path_hits = 0
        self.wrong_path_misses = 0

    def _locate(self, addr: int) -> tuple[dict[int, int], int]:
        line = addr >> self._line_shift
        return self._sets[line % self._num_sets], line // self._num_sets

    def access(self, addr: int, *, wrong_path: bool = False) -> bool:
        """Look up and fill on miss; returns True on hit.

        ``wrong_path`` accesses update tag/recency state identically (a
        wrong-path fill is a real fill — pollution) but count into the
        separate wrong-path statistics.
        """
        tick = self._tick + 1
        self._tick = tick
        cache_set, tag = self._locate(addr)
        if tag in cache_set:
            cache_set[tag] = tick
            if wrong_path:
                self.wrong_path_hits += 1
            else:
                self.hits += 1
            return True
        if wrong_path:
            self.wrong_path_misses += 1
        else:
            self.misses += 1
        if len(cache_set) >= self._assoc:
            victim = min(cache_set, key=cache_set.__getitem__)
            del cache_set[victim]
        cache_set[tag] = tick
        return False

    def probe(self, addr: int) -> bool:
        """Look up without filling or touching recency."""
        cache_set, tag = self._locate(addr)
        return tag in cache_set

    def invalidate_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """LRU set-associative TLB; returns the added miss penalty."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._page_shift = config.page_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._sets: list[dict[int, int]] = [dict() for _ in range(self._num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.wrong_path_hits = 0
        self.wrong_path_misses = 0

    def access(self, addr: int, *, wrong_path: bool = False) -> int:
        """Translate; returns 0 on hit, the miss penalty on a TLB miss."""
        self._tick += 1
        page = addr >> self._page_shift
        tlb_set = self._sets[page % self._num_sets]
        tag = page // self._num_sets
        if tag in tlb_set:
            tlb_set[tag] = self._tick
            if wrong_path:
                self.wrong_path_hits += 1
            else:
                self.hits += 1
            return 0
        if wrong_path:
            self.wrong_path_misses += 1
        else:
            self.misses += 1
        if len(tlb_set) >= self.config.assoc:
            victim = min(tlb_set, key=tlb_set.__getitem__)
            del tlb_set[victim]
        tlb_set[tag] = self._tick
        return self.config.miss_penalty


@dataclass
class MemoryStats:
    """Aggregated hierarchy statistics for reporting."""

    l1i_hits: int = 0
    l1i_misses: int = 0
    l1d_hits: int = 0
    l1d_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    # Wrong-path (speculative) accesses, counted separately so demand miss
    # rates stay comparable across speculation modes; a wrong-path miss is
    # a fill performed for a squashed instruction — the pollution metric.
    wrong_path_l1i_accesses: int = 0
    wrong_path_l1i_misses: int = 0
    wrong_path_l1d_accesses: int = 0
    wrong_path_l1d_misses: int = 0
    wrong_path_l2_misses: int = 0
    wrong_path_itlb_misses: int = 0
    wrong_path_dtlb_misses: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryStats":
        # Strict: a missing counter means a truncated/stale payload, and
        # the result cache must treat that as a corrupt-entry miss.
        return cls(**{f.name: int(data[f.name])
                      for f in dataclasses.fields(cls)})


class MemoryHierarchy:
    """Two-level cache + TLB timing model.

    ``instruction_latency(addr)`` and ``data_latency(addr)`` return the
    total access latency in cycles for the given byte address, updating
    cache/TLB state.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1i = SetAssociativeCache(config.icache)
        self.l1d = SetAssociativeCache(config.dcache)
        self.l2 = SetAssociativeCache(config.l2cache)
        self.itlb = TLB(config.itlb)
        self.dtlb = TLB(config.dtlb)

    def _access(self, level1: SetAssociativeCache, tlb: TLB,
                addr: int, wrong_path: bool = False) -> int:
        latency = tlb.access(addr, wrong_path=wrong_path)
        l1_hit_latency = level1.hit_latency
        if level1.access(addr, wrong_path=wrong_path):
            return latency + l1_hit_latency
        latency += l1_hit_latency  # detect the miss
        l2 = self.l2
        if l2.access(addr, wrong_path=wrong_path):
            return latency + l2.hit_latency
        return latency + l2.hit_latency + self.config.memory_latency

    def instruction_latency(self, addr: int, *, wrong_path: bool = False) -> int:
        return self._access(self.l1i, self.itlb, addr, wrong_path)

    def data_latency(self, addr: int, *, wrong_path: bool = False) -> int:
        return self._access(self.l1d, self.dtlb, addr, wrong_path)

    def stats(self) -> MemoryStats:
        return MemoryStats(
            l1i_hits=self.l1i.hits, l1i_misses=self.l1i.misses,
            l1d_hits=self.l1d.hits, l1d_misses=self.l1d.misses,
            l2_hits=self.l2.hits, l2_misses=self.l2.misses,
            itlb_misses=self.itlb.misses, dtlb_misses=self.dtlb.misses,
            wrong_path_l1i_accesses=(self.l1i.wrong_path_hits
                                     + self.l1i.wrong_path_misses),
            wrong_path_l1i_misses=self.l1i.wrong_path_misses,
            wrong_path_l1d_accesses=(self.l1d.wrong_path_hits
                                     + self.l1d.wrong_path_misses),
            wrong_path_l1d_misses=self.l1d.wrong_path_misses,
            wrong_path_l2_misses=self.l2.wrong_path_misses,
            wrong_path_itlb_misses=self.itlb.wrong_path_misses,
            wrong_path_dtlb_misses=self.dtlb.wrong_path_misses,
        )
