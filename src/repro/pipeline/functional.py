"""Functional (architectural) execution.

The timing engine is oracle-driven: a :class:`FunctionalCore` executes the
program in architectural order and produces one :class:`DynInst` record per
dynamic instruction (values, branch outcomes, effective addresses).  The
out-of-order timing model consumes this stream, attaching cycle timestamps
and driving the predictors and the DDT.

Instruction semantics live in :func:`execute_instruction`, which is
re-entrant over an abstract *state* (register file + memory accessors +
``halted`` flag).  :class:`FunctionalCore` is the architectural state; the
speculation subsystem (``repro.speculation.wrongpath``) drives the same
function over copy-on-write views to synthesize wrong-path instruction
streams without mutating architectural state (DESIGN.md §2.2).
"""

from __future__ import annotations

from repro.isa import regs
from repro.isa.instructions import (
    Instruction,
    Op,
    branch_taken,
    disassemble,
    to_s32,
    to_u32,
)
from repro.isa.program import DATA_BASE, STACK_TOP, Program


class ExecutionError(RuntimeError):
    """Raised on architectural faults (bad address, unaligned access...)."""


class DynInst:
    """One dynamic instruction instance with its architectural effects."""

    __slots__ = (
        "seq", "pc", "inst", "op", "rd", "rs1", "rs2",
        "sval1", "sval2", "result", "taken", "next_pc",
        "addr", "store_value", "is_load", "is_store", "is_cond_branch",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.op = int(inst.op)
        self.rd = inst.rd
        self.rs1 = inst.rs1
        self.rs2 = inst.rs2
        self.sval1 = 0
        self.sval2 = 0
        self.result: int | None = None
        self.taken: bool | None = None
        self.next_pc = pc + 1
        self.addr: int | None = None
        self.store_value: int | None = None
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.is_cond_branch = inst.is_cond_branch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynInst #{self.seq} pc={self.pc} {disassemble(self.inst)}>"


class FunctionalCore:
    """In-order architectural interpreter for assembled programs."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.memory = program.initial_memory()
        self.registers = [0] * 32
        self.registers[regs.sp] = STACK_TOP
        self.registers[regs.gp] = DATA_BASE
        self.pc = program.entry
        self.halted = False
        self.instruction_count = 0

    # -- memory helpers ------------------------------------------------------

    def load_word(self, addr: int) -> int:
        self._check_addr(addr, 4, aligned=4)
        return int.from_bytes(self.memory[addr:addr + 4], "little")

    def store_word(self, addr: int, value: int) -> None:
        self._check_addr(addr, 4, aligned=4)
        self.memory[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def load_byte(self, addr: int, *, signed: bool) -> int:
        self._check_addr(addr, 1, aligned=1)
        byte = self.memory[addr]
        if signed and byte >= 0x80:
            return byte - 0x100
        return byte

    def store_byte(self, addr: int, value: int) -> None:
        self._check_addr(addr, 1, aligned=1)
        self.memory[addr] = value & 0xFF

    def _check_addr(self, addr: int, size: int, *, aligned: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise ExecutionError(
                f"pc={self.pc}: memory access out of range: {addr:#x}"
            )
        if aligned > 1 and addr % aligned:
            raise ExecutionError(
                f"pc={self.pc}: unaligned {size}-byte access at {addr:#x}"
            )

    # -- execution --------------------------------------------------------------

    def step(self) -> DynInst | None:
        """Execute one instruction; returns None once halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program.instructions):
            raise ExecutionError(f"pc out of range: {self.pc}")
        inst = self.program.instructions[self.pc]
        dyn = DynInst(self.instruction_count, self.pc, inst)
        self.instruction_count += 1
        execute_instruction(self, dyn)
        self.pc = dyn.next_pc
        return dyn

    def run(self, max_instructions: int = 10_000_000):
        """Yield dynamic instructions until HALT or the budget is reached."""
        while not self.halted and self.instruction_count < max_instructions:
            dyn = self.step()
            if dyn is None:
                break
            yield dyn

    def run_to_completion(self, max_instructions: int = 10_000_000) -> int:
        """Execute without yielding; returns the instruction count."""
        for _ in self.run(max_instructions):
            pass
        return self.instruction_count


def execute_instruction(state, dyn: DynInst) -> DynInst:
    """Execute ``dyn.inst`` against ``state``, filling in ``dyn``'s effects.

    ``state`` is any object exposing the architectural interface:
    ``registers`` (32-entry indexable), ``load_word`` / ``load_byte`` /
    ``store_word`` / ``store_byte``, and a writable ``halted`` flag.
    :class:`FunctionalCore` is the real architectural state; the wrong-path
    fetcher passes copy-on-write views so speculative execution leaves the
    architectural state untouched.  Register writes and memory stores go
    through ``state``; ``dyn.next_pc`` carries the control-flow outcome
    back to the caller (which owns the pc).
    """
    inst = dyn.inst
    op = inst.op
    regfile = state.registers

    a = regfile[inst.rs1] if inst.rs1 is not None else 0
    b = regfile[inst.rs2] if inst.rs2 is not None else 0
    dyn.sval1, dyn.sval2 = a, b
    result: int | None = None
    next_pc = dyn.pc + 1

    if op is Op.ADD:
        result = to_u32(a + b)
    elif op is Op.SUB:
        result = to_u32(a - b)
    elif op is Op.AND:
        result = a & b
    elif op is Op.OR:
        result = a | b
    elif op is Op.XOR:
        result = a ^ b
    elif op is Op.NOR:
        result = to_u32(~(a | b))
    elif op is Op.SLL:
        result = to_u32(a << (b & 31))
    elif op is Op.SRL:
        result = a >> (b & 31)
    elif op is Op.SRA:
        result = to_u32(to_s32(a) >> (b & 31))
    elif op is Op.SLT:
        result = 1 if to_s32(a) < to_s32(b) else 0
    elif op is Op.SLTU:
        result = 1 if a < b else 0
    elif op is Op.MULT:
        result = to_u32(to_s32(a) * to_s32(b))
    elif op is Op.DIV:
        sa, sb = to_s32(a), to_s32(b)
        result = 0 if sb == 0 else to_u32(int(sa / sb))
    elif op is Op.REM:
        sa, sb = to_s32(a), to_s32(b)
        result = 0 if sb == 0 else to_u32(sa - int(sa / sb) * sb)
    elif op is Op.ADDI:
        result = to_u32(a + inst.imm)
    elif op is Op.ANDI:
        result = a & (inst.imm & 0xFFFF)
    elif op is Op.ORI:
        result = a | (inst.imm & 0xFFFF)
    elif op is Op.XORI:
        result = a ^ (inst.imm & 0xFFFF)
    elif op is Op.SLTI:
        result = 1 if to_s32(a) < inst.imm else 0
    elif op is Op.SLLI:
        result = to_u32(a << (inst.imm & 31))
    elif op is Op.SRLI:
        result = a >> (inst.imm & 31)
    elif op is Op.SRAI:
        result = to_u32(to_s32(a) >> (inst.imm & 31))
    elif op is Op.LUI:
        result = to_u32(inst.imm << 16)
    elif op is Op.LW:
        dyn.addr = to_u32(a + inst.imm)
        result = state.load_word(dyn.addr)
    elif op is Op.LB:
        dyn.addr = to_u32(a + inst.imm)
        result = to_u32(state.load_byte(dyn.addr, signed=True))
    elif op is Op.LBU:
        dyn.addr = to_u32(a + inst.imm)
        result = state.load_byte(dyn.addr, signed=False)
    elif op is Op.SW:
        dyn.addr = to_u32(a + inst.imm)
        dyn.store_value = b
        state.store_word(dyn.addr, b)
    elif op is Op.SB:
        dyn.addr = to_u32(a + inst.imm)
        dyn.store_value = b & 0xFF
        state.store_byte(dyn.addr, b)
    elif dyn.is_cond_branch:
        taken = branch_taken(op, a, b)
        dyn.taken = taken
        if taken:
            next_pc = inst.target  # type: ignore[assignment]
    elif op is Op.J:
        next_pc = inst.target  # type: ignore[assignment]
    elif op is Op.JAL:
        result = dyn.pc + 1
        next_pc = inst.target  # type: ignore[assignment]
    elif op is Op.JR:
        next_pc = a
    elif op is Op.JALR:
        result = dyn.pc + 1
        next_pc = a
    elif op is Op.NOP:
        pass
    elif op is Op.HALT:
        state.halted = True
        next_pc = dyn.pc
    else:  # pragma: no cover - all opcodes handled above
        raise ExecutionError(f"unimplemented opcode {op!r}")

    if result is not None and inst.rd is not None and inst.rd != 0:
        regfile[inst.rd] = result
    if inst.rd == 0:
        result = 0 if result is not None else None
    dyn.result = result
    dyn.next_pc = next_pc
    return dyn
