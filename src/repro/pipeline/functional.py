"""Functional (architectural) execution.

The timing engine is oracle-driven: a :class:`FunctionalCore` executes the
program in architectural order and produces one :class:`DynInst` record per
dynamic instruction (values, branch outcomes, effective addresses).  The
out-of-order timing model consumes this stream, attaching cycle timestamps
and driving the predictors and the DDT.

Instruction semantics live in a per-opcode handler table (``_DISPATCH``)
indexed by the raw opcode int — one indexed call per instruction instead
of the seed's ``if/elif`` opcode chain.  Every handler is re-entrant over
an abstract *state* (register file + memory accessors + ``halted`` flag):
:class:`FunctionalCore` is the architectural state; the speculation
subsystem (``repro.speculation.wrongpath``) drives the same handlers over
copy-on-write views to synthesize wrong-path instruction streams without
mutating architectural state (DESIGN.md §2.2).  :func:`execute_instruction`
remains the single-call entry point over the table.

Arithmetic is bit-for-bit identical to the seed implementation: the
``to_u32`` / ``to_s32`` wrappers are inlined as ``& 0xFFFFFFFF`` and
``((x & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000``, which agree with the
function forms for every Python int.
"""

from __future__ import annotations

from repro.isa import regs
from repro.isa.instructions import Instruction, Op, disassemble
from repro.isa.program import DATA_BASE, STACK_TOP, Program

_WM = 0xFFFFFFFF
_SIGN = 0x80000000

#: Shared instruction budget default for functional runs, engine runs and
#: trace recordings.  A trace recorded under this budget can replay any
#: engine run with the same (or smaller) budget bit-for-bit.
DEFAULT_MAX_INSTRUCTIONS = 10_000_000


class ExecutionError(RuntimeError):
    """Raised on architectural faults (bad address, unaligned access...)."""


class DynInst:
    """One dynamic instruction instance with its architectural effects."""

    __slots__ = (
        "seq", "pc", "inst", "op", "rd", "rs1", "rs2",
        "sval1", "sval2", "result", "taken", "next_pc",
        "addr", "store_value", "is_load", "is_store", "is_cond_branch",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.op = inst.opcode
        self.rd = inst.rd
        self.rs1 = inst.rs1
        self.rs2 = inst.rs2
        self.sval1 = 0
        self.sval2 = 0
        self.result: int | None = None
        self.taken: bool | None = None
        self.next_pc = pc + 1
        self.addr: int | None = None
        self.store_value: int | None = None
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.is_cond_branch = inst.is_cond_branch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynInst #{self.seq} pc={self.pc} {disassemble(self.inst)}>"


# -- per-opcode handlers --------------------------------------------------
#
# Handler contract: ``dyn`` is freshly initialized (``next_pc == pc + 1``,
# ``result``/``taken``/``addr``/``store_value`` None, svals 0).  Handlers
# read operands, record ``sval1``/``sval2``, apply the architectural
# effect through ``state`` and fill in the outcome fields.  The shared
# result tail replicates the seed exactly: a computed result is written to
# the register file unless ``rd`` is None or r0; an r0 write is an
# architectural discard (``result`` coerced to 0).


def _make_rr(compute):
    """Handler factory: reg-reg op, shared operand reads + writeback tail."""
    def handler(state, dyn):
        inst = dyn.inst
        regfile = state.registers
        a = regfile[inst.rs1]
        b = regfile[inst.rs2]
        dyn.sval1 = a
        dyn.sval2 = b
        r = compute(a, b)
        rd = inst.rd
        if rd:
            regfile[rd] = r
        elif rd == 0:
            r = 0
        dyn.result = r
        return dyn
    return handler


def _make_ri(compute):
    """Handler factory: reg-immediate op with the shared writeback tail."""
    def handler(state, dyn):
        inst = dyn.inst
        regfile = state.registers
        a = regfile[inst.rs1]
        dyn.sval1 = a
        r = compute(a, inst.imm)
        rd = inst.rd
        if rd:
            regfile[rd] = r
        elif rd == 0:
            r = 0
        dyn.result = r
        return dyn
    return handler


def _make_load(loader):
    """Handler factory: displacement load (address recorded, then tail)."""
    def handler(state, dyn):
        inst = dyn.inst
        regfile = state.registers
        a = regfile[inst.rs1]
        dyn.sval1 = a
        addr = (a + inst.imm) & _WM
        dyn.addr = addr
        r = loader(state, addr)
        rd = inst.rd
        if rd:
            regfile[rd] = r
        elif rd == 0:
            r = 0
        dyn.result = r
        return dyn
    return handler


def _make_branch(test):
    """Handler factory: compare-and-branch (no register writeback)."""
    def handler(state, dyn):
        inst = dyn.inst
        regfile = state.registers
        a = regfile[inst.rs1]
        b = regfile[inst.rs2]
        dyn.sval1 = a
        dyn.sval2 = b
        taken = test(a, b)
        dyn.taken = taken
        if taken:
            dyn.next_pc = inst.target
        return dyn
    return handler


def _s32(x):
    """Signed view of a 32-bit value (exact inline form of ``to_s32``)."""
    return ((x & _WM) ^ _SIGN) - _SIGN


def _div32(a, b):
    sa = _s32(a)
    sb = _s32(b)
    return 0 if sb == 0 else int(sa / sb) & _WM


def _rem32(a, b):
    sa = _s32(a)
    sb = _s32(b)
    return 0 if sb == 0 else (sa - int(sa / sb) * sb) & _WM


def _ex_lui(state, dyn):
    inst = dyn.inst
    r = (inst.imm << 16) & _WM
    rd = inst.rd
    if rd:
        state.registers[rd] = r
    elif rd == 0:
        r = 0
    dyn.result = r
    return dyn


def _ex_sw(state, dyn):
    inst = dyn.inst
    regfile = state.registers
    a = regfile[inst.rs1]
    b = regfile[inst.rs2]
    dyn.sval1 = a
    dyn.sval2 = b
    addr = (a + inst.imm) & _WM
    dyn.addr = addr
    dyn.store_value = b
    state.store_word(addr, b)
    return dyn


def _ex_sb(state, dyn):
    inst = dyn.inst
    regfile = state.registers
    a = regfile[inst.rs1]
    b = regfile[inst.rs2]
    dyn.sval1 = a
    dyn.sval2 = b
    addr = (a + inst.imm) & _WM
    dyn.addr = addr
    dyn.store_value = b & 0xFF
    state.store_byte(addr, b)
    return dyn


def _ex_j(state, dyn):
    dyn.next_pc = dyn.inst.target
    return dyn


def _ex_jal(state, dyn):
    inst = dyn.inst
    r = dyn.pc + 1
    dyn.next_pc = inst.target
    rd = inst.rd
    if rd:
        state.registers[rd] = r
    elif rd == 0:
        r = 0
    dyn.result = r
    return dyn


def _ex_jr(state, dyn):
    inst = dyn.inst
    a = state.registers[inst.rs1]
    dyn.sval1 = a
    dyn.next_pc = a
    return dyn


def _ex_jalr(state, dyn):
    inst = dyn.inst
    regfile = state.registers
    a = regfile[inst.rs1]
    dyn.sval1 = a
    r = dyn.pc + 1
    dyn.next_pc = a
    rd = inst.rd
    if rd:
        regfile[rd] = r
    elif rd == 0:
        r = 0
    dyn.result = r
    return dyn


def _ex_nop(state, dyn):
    return dyn


def _ex_halt(state, dyn):
    state.halted = True
    dyn.next_pc = dyn.pc
    return dyn


def _ex_unimplemented(state, dyn):  # pragma: no cover - all opcodes handled
    raise ExecutionError(f"unimplemented opcode {Op(dyn.op)!r}")


_HANDLERS = {
    Op.ADD: _make_rr(lambda a, b: (a + b) & _WM),
    Op.SUB: _make_rr(lambda a, b: (a - b) & _WM),
    Op.AND: _make_rr(lambda a, b: a & b),
    Op.OR: _make_rr(lambda a, b: a | b),
    Op.XOR: _make_rr(lambda a, b: a ^ b),
    Op.NOR: _make_rr(lambda a, b: ~(a | b) & _WM),
    Op.SLL: _make_rr(lambda a, b: (a << (b & 31)) & _WM),
    Op.SRL: _make_rr(lambda a, b: a >> (b & 31)),
    Op.SRA: _make_rr(lambda a, b: (_s32(a) >> (b & 31)) & _WM),
    Op.SLT: _make_rr(lambda a, b: 1 if _s32(a) < _s32(b) else 0),
    Op.SLTU: _make_rr(lambda a, b: 1 if a < b else 0),
    Op.MULT: _make_rr(lambda a, b: (_s32(a) * _s32(b)) & _WM),
    Op.DIV: _make_rr(_div32),
    Op.REM: _make_rr(_rem32),
    Op.ADDI: _make_ri(lambda a, imm: (a + imm) & _WM),
    Op.ANDI: _make_ri(lambda a, imm: a & (imm & 0xFFFF)),
    Op.ORI: _make_ri(lambda a, imm: a | (imm & 0xFFFF)),
    Op.XORI: _make_ri(lambda a, imm: a ^ (imm & 0xFFFF)),
    Op.SLTI: _make_ri(lambda a, imm: 1 if _s32(a) < imm else 0),
    Op.SLLI: _make_ri(lambda a, imm: (a << (imm & 31)) & _WM),
    Op.SRLI: _make_ri(lambda a, imm: a >> (imm & 31)),
    Op.SRAI: _make_ri(lambda a, imm: (_s32(a) >> (imm & 31)) & _WM),
    Op.LUI: _ex_lui,
    Op.LW: _make_load(lambda state, addr: state.load_word(addr)),
    Op.LB: _make_load(
        lambda state, addr: state.load_byte(addr, signed=True) & _WM),
    Op.LBU: _make_load(lambda state, addr: state.load_byte(addr, signed=False)),
    Op.SW: _ex_sw,
    Op.SB: _ex_sb,
    Op.BEQ: _make_branch(lambda a, b: (a & _WM) == (b & _WM)),
    Op.BNE: _make_branch(lambda a, b: (a & _WM) != (b & _WM)),
    Op.BLT: _make_branch(lambda a, b: _s32(a) < _s32(b)),
    Op.BGE: _make_branch(lambda a, b: _s32(a) >= _s32(b)),
    Op.BLE: _make_branch(lambda a, b: _s32(a) <= _s32(b)),
    Op.BGT: _make_branch(lambda a, b: _s32(a) > _s32(b)),
    Op.J: _ex_j,
    Op.JAL: _ex_jal,
    Op.JR: _ex_jr,
    Op.JALR: _ex_jalr,
    Op.NOP: _ex_nop,
    Op.HALT: _ex_halt,
}

#: Opcode-indexed dispatch table (list indexing beats dict lookup and the
#: seed's ~15-comparison ``if/elif`` chain on the per-instruction path).
_DISPATCH = [_ex_unimplemented] * (max(int(op) for op in Op) + 1)
for _op, _handler in _HANDLERS.items():
    _DISPATCH[int(_op)] = _handler
del _HANDLERS


def execute_instruction(state, dyn: DynInst) -> DynInst:
    """Execute ``dyn.inst`` against ``state``, filling in ``dyn``'s effects.

    ``state`` is any object exposing the architectural interface:
    ``registers`` (32-entry indexable), ``load_word`` / ``load_byte`` /
    ``store_word`` / ``store_byte``, and a writable ``halted`` flag.
    :class:`FunctionalCore` is the real architectural state; the wrong-path
    fetcher passes copy-on-write views so speculative execution leaves the
    architectural state untouched.  Register writes and memory stores go
    through ``state``; ``dyn.next_pc`` carries the control-flow outcome
    back to the caller (which owns the pc).
    """
    dyn.next_pc = dyn.pc + 1
    return _DISPATCH[dyn.op](state, dyn)


class FunctionalCore:
    """In-order architectural interpreter for assembled programs."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.memory = program.initial_memory()
        self.registers = [0] * 32
        self.registers[regs.sp] = STACK_TOP
        self.registers[regs.gp] = DATA_BASE
        self.pc = program.entry
        self.halted = False
        self.instruction_count = 0
        # Hot-path aliases over the pre-decoded per-PC table.
        self._decoded = program.decoded().insts

    # -- memory helpers ------------------------------------------------------

    def load_word(self, addr: int) -> int:
        self._check_addr(addr, 4, aligned=4)
        return int.from_bytes(self.memory[addr:addr + 4], "little")

    def store_word(self, addr: int, value: int) -> None:
        self._check_addr(addr, 4, aligned=4)
        self.memory[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def load_byte(self, addr: int, *, signed: bool) -> int:
        self._check_addr(addr, 1, aligned=1)
        byte = self.memory[addr]
        if signed and byte >= 0x80:
            return byte - 0x100
        return byte

    def store_byte(self, addr: int, value: int) -> None:
        self._check_addr(addr, 1, aligned=1)
        self.memory[addr] = value & 0xFF

    def _check_addr(self, addr: int, size: int, *, aligned: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise ExecutionError(
                f"pc={self.pc}: memory access out of range: {addr:#x}"
            )
        if aligned > 1 and addr % aligned:
            raise ExecutionError(
                f"pc={self.pc}: unaligned {size}-byte access at {addr:#x}"
            )

    # -- execution --------------------------------------------------------------

    def step(self) -> DynInst | None:
        """Execute one instruction; returns None once halted."""
        if self.halted:
            return None
        pc = self.pc
        decoded = self._decoded
        if not 0 <= pc < len(decoded):
            raise ExecutionError(f"pc out of range: {pc}")
        dyn = DynInst(self.instruction_count, pc, decoded[pc].inst)
        self.instruction_count += 1
        _DISPATCH[dyn.op](self, dyn)
        self.pc = dyn.next_pc
        return dyn

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS):
        """Yield dynamic instructions until HALT or the budget is reached."""
        while not self.halted and self.instruction_count < max_instructions:
            dyn = self.step()
            if dyn is None:
                break
            yield dyn

    def run_to_completion(
            self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> int:
        """Execute without yielding; returns the instruction count."""
        for _ in self.run(max_instructions):
            pass
        return self.instruction_count
