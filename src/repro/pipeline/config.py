"""Machine and predictor configuration (paper Tables 2 and 4).

``MachineConfig`` mirrors Table 2 of the paper; ``machine_for_depth``
builds the 20/40/60-stage machines with access latencies that scale with
pipeline length.  The exact latency digits in Table 2 were corrupted in the
text extraction; the values here follow the paper's stated rule (latencies
grow with pipeline depth, motivated by Agarwal et al., ISCA 2000) and are
recorded as a substitution in DESIGN.md.

``PredictorLatencies`` mirrors Table 4: a 4 KB single-cycle level-1
2Bc-gskew, a 32 KB level-2 hybrid at {2, 4, 6} cycles and a comparably
sized ARVI at {6, 12, 18} cycles for the three machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.instructions import NUM_LOGICAL_REGS

PIPELINE_DEPTHS = (20, 40, 60)

#: Valid ``MachineConfig.speculation`` values: ``redirect`` is the seed's
#: accounting model (no wrong-path instructions), ``wrongpath`` materializes
#: the wrong-path stream with checkpoint/rollback recovery (DESIGN.md §2.2).
SPECULATION_MODES = ("redirect", "wrongpath")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(f"{self.name}: size not divisible by way size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry (Table 2: 8 KB pages, 30-cycle miss)."""

    name: str
    entries: int
    assoc: int
    page_bytes: int = 8192
    miss_penalty: int = 30

    @property
    def num_sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class PredictorLatencies:
    """Paper Table 4: second-level predictor access times."""

    level1: int = 1
    level2_hybrid: int = 2
    level2_arvi: int = 6


@dataclass(frozen=True)
class MachineConfig:
    """Paper Table 2 plus the structures the DDT/ARVI hardware needs."""

    pipeline_depth: int = 20          # stages, fetch through execute
    fetch_width: int = 4
    commit_width: int = 4
    fetch_queue_entries: int = 4
    rob_entries: int = 256
    lsq_entries: int = 32
    int_alus: int = 4
    int_muldiv: int = 1
    fp_alus: int = 4
    fp_muldiv: int = 1
    dcache_ports: int = 2
    alu_latency: int = 1
    mult_latency: int = 3
    div_latency: int = 20
    icache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1I", 64 * 1024, 4, 32, 2))
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D", 64 * 1024, 4, 32, 2))
    l2cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", 512 * 1024, 4, 64, 12))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig("ITLB", 64, 4))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig("DTLB", 128, 4))
    memory_latency: int = 60
    predictor_latencies: PredictorLatencies = field(
        default_factory=PredictorLatencies)
    # Speculation model (DESIGN.md §2.2): "redirect" keeps the seed's
    # accounting (bit-for-bit unchanged results); "wrongpath" materializes
    # wrong-path fetch with checkpoint/rollback recovery.
    speculation: str = "redirect"
    # Safety cap on wrong-path instructions per episode, on top of the
    # fetch-bandwidth x resolve-delay window (ROB-sized by default).
    wrongpath_fetch_limit: int = 256

    def __post_init__(self) -> None:
        if self.speculation not in SPECULATION_MODES:
            raise ValueError(
                f"speculation must be one of {SPECULATION_MODES}, "
                f"got {self.speculation!r}")

    @property
    def num_phys_regs(self) -> int:
        """Early rename maps every ROB entry, so logical + ROB registers."""
        return NUM_LOGICAL_REGS + self.rob_entries

    @property
    def frontend_depth(self) -> int:
        """Cycles from fetch to earliest dispatch (depth minus execute)."""
        return max(2, self.pipeline_depth - 2)

    @property
    def rename_offset(self) -> int:
        """Cycles from fetch to rename; the paper renames early (at fetch)
        so that the DDT is updated in the first pipeline stages."""
        return 1


# Per-depth latency scaling: (L1 hit, L2 hit, memory, L2-hybrid predictor,
# ARVI predictor).  The ARVI latencies are stated exactly in the paper
# ("2, 4, and 6 cycles" for the BVIT RAM; ARVI total 6/12/18 with the
# staging of Figure 2).
_DEPTH_LATENCIES = {
    20: (2, 12, 60, 2, 6),
    40: (4, 16, 100, 4, 12),
    60: (6, 20, 140, 6, 18),
}


def machine_for_depth(depth: int, **overrides) -> MachineConfig:
    """Build the paper's machine for a 20/40/60-stage pipeline."""
    if depth not in _DEPTH_LATENCIES:
        raise ValueError(
            f"depth must be one of {sorted(_DEPTH_LATENCIES)}, got {depth}")
    l1, l2, mem, hyb, arvi = _DEPTH_LATENCIES[depth]
    config = MachineConfig(
        pipeline_depth=depth,
        icache=CacheConfig("L1I", 64 * 1024, 4, 32, l1),
        dcache=CacheConfig("L1D", 64 * 1024, 4, 32, l1),
        l2cache=CacheConfig("L2", 512 * 1024, 4, 64, l2),
        memory_latency=mem,
        predictor_latencies=PredictorLatencies(
            level1=1, level2_hybrid=hyb, level2_arvi=arvi),
    )
    if overrides:
        config = replace(config, **overrides)
    return config


def table2_rows(config: MachineConfig) -> list[tuple[str, str]]:
    """Render the machine as the rows of paper Table 2."""
    caches = (config.icache, config.dcache, config.l2cache)
    return [
        ("Fetch queue", f"{config.fetch_queue_entries} entries"),
        ("Fetch, decode width", f"{config.fetch_width} instructions"),
        ("ROB entries", str(config.rob_entries)),
        ("Load/Store queue entries", str(config.lsq_entries)),
        ("Integer units", f"{config.int_alus} ALUs, {config.int_muldiv} mult/div"),
        ("Floating point units", f"{config.fp_alus} ALUs, {config.fp_muldiv} mult/div"),
        ("Instruction TLB",
         f"{config.itlb.entries} ({config.itlb.num_sets}x{config.itlb.assoc}-way)"
         f" 8K pages, {config.itlb.miss_penalty} cycle miss"),
        ("Data TLB",
         f"{config.dtlb.entries} ({config.dtlb.num_sets}x{config.dtlb.assoc}-way)"
         f" 8K pages, {config.dtlb.miss_penalty} cycle miss"),
    ] + [
        (cache.name,
         f"{cache.size_bytes // 1024} KB, {cache.assoc}-way, "
         f"{cache.line_bytes}B line, {cache.hit_latency} cycles")
        for cache in caches
    ] + [
        ("Memory latency", f"{config.memory_latency} cycles initial"),
        ("Pipeline depth", f"{config.pipeline_depth} stages"),
        ("Speculation", config.speculation
         + (f" (wrong-path fetch limit {config.wrongpath_fetch_limit})"
            if config.speculation == "wrongpath" else "")),
    ]


def table4_rows() -> list[tuple[str, str, int, int, int]]:
    """Paper Table 4: (predictor, size, 20-, 40-, 60-stage latency)."""
    rows = []
    for depth in PIPELINE_DEPTHS:
        _, _, _, hyb, arvi = _DEPTH_LATENCIES[depth]
        rows.append((depth, 1, hyb, arvi))
    latencies = {d: _DEPTH_LATENCIES[d] for d in PIPELINE_DEPTHS}
    return [
        ("Level-1 hybrid", "4 KB", 1, 1, 1),
        ("Level-2 hybrid", "32 KB",
         latencies[20][3], latencies[40][3], latencies[60][3]),
        ("Level-2 ARVI", "32 KB",
         latencies[20][4], latencies[40][4], latencies[60][4]),
    ]
