"""Compiled replay kernel: lower a committed trace once, replay it fast.

PR 4 records the committed instruction stream once per workload and
replays it through the interpreted engine loop per timing configuration;
this module removes the remaining per-instruction interpretation cost.
A :class:`LoweredTrace` converts :class:`~repro.pipeline.trace.
CommittedTrace` columns into dense per-instruction arrays plus
precomputed metadata, **once per workload identity**, shared read-only
by every redirect timing point of a batch:

* a fused per-instruction *kernel class* (ALU / frontend-other / load /
  store / mult / div / conditional branch, with an I-cache line-change
  flag folded in),
* dependence distances from a one-shot DDT-style last-writer pass
  (``dep1``/``dep2`` name the producing *stream index* of each source
  register — exactly what renamed physical-register readiness resolves
  to in the engine, see DESIGN.md §10),
* store-forwarding sources per memory op (the latest prior store to the
  same word — the engine's ``pending_stores`` dict, precomputed),
* ROB/LSQ occupancy metadata (memory-op stream positions, so the
  occupancy heads are plain array lookups per config),
* prefix sums for the measured-window load/store statistics, the RAS
  accuracy stream, and per-predictor-kind branch decision streams (the
  two-level gskew interplay is timing-independent, so its outcome
  sequence is simulated once and shared across every config).

:func:`kernel_run` then evaluates one timing configuration as a lean
array pass over the lowered form: the same fetch/issue/commit arithmetic
as :meth:`~repro.pipeline.engine.PipelineEngine.run`, stage for stage,
minus everything that cannot affect a redirect-mode result.  For the
hybrid/none kinds that strips *all* rename/DDT/RSE/shadow maintenance
(their decisions precompute into shared streams); for the ARVI kinds a
fused pass (DESIGN.md §13) keeps exactly the state the BVIT lookup keys
read — the DDT retirement window, pending/shadow register values and
load-hoist times, which are timing-*dependent* per configuration — and
reuses precomputed level-1/confidence streams.  Results are
**bit-for-bit equal** to the interpreted replay and to live execution —
enforced by the equality suites (``tests/pipeline/test_kernel.py``,
``tests/pipeline/test_kernel_arvi.py``) and by the hard gates in
``python -m repro.bench``.

Fallback rules (DESIGN.md §10): anything the lowered form cannot
express raises :class:`KernelUnsupported` and the caller falls back to
the interpreted path — ``wrongpath`` speculation (needs live
architectural state) and non-standard predictor stacks.  A budget that
would step past a truncated recording raises
:class:`~repro.pipeline.trace.TraceError`, matching the interpreted
replay core.  The selection knob is ``REPRO_KERNEL``
(:func:`repro.experiments.tracing.kernel_mode`); which path actually
ran is observable via the ``kernel_source`` field threaded through
:func:`~repro.experiments.runner.execute_point`, and every fallback
increments the ``kernel_fallback_total`` counter with its reason.

numpy is optional: the lowering pass vectorizes with numpy when it is
importable (``REPRO_KERNEL_NUMPY=0`` forces the fallback), and otherwise
builds identical arrays with pure-Python loops — the per-config replay
loop itself uses plain lists either way (CPython scalar indexing beats
numpy scalar indexing on this access pattern), so results are identical
with and without numpy.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from collections import deque
from heapq import heappop, heappush

from repro.core.arvi import ARVIConfig, ValueMode
from repro.core.bvit import BVIT
from repro.core.ddt import FastDDT
from repro.core.shadow import ShadowMapTable, ShadowRegisterFile
from repro.isa import regs
from repro.isa.decoded import (
    FU_ALU as K_ALU,
    FU_DIV as K_DIV,
    FU_LOAD as K_LOAD,
    FU_MULT as K_MULT,
    FU_OTHER as K_OTHER,
    FU_STORE as K_STORE,
    KCLASS_BRANCH as K_BRANCH,
    RAS_PUSH,
)
from repro.isa.program import DATA_BASE, STACK_TOP, Program
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.config import MachineConfig
from repro.pipeline.functional import DEFAULT_MAX_INSTRUCTIONS
from repro.pipeline.rename import RenameMap
from repro.pipeline.stats import BranchClassStats, SimulationResult
from repro.pipeline.trace import CommittedTrace, TraceError
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.gskew import level1_gskew, level2_gskew
from repro.predictors.twolevel import LevelTwoKind

__all__ = [
    "KernelUnsupported",
    "LOWER_TICK",
    "LoweredTrace",
    "ensure_lowered",
    "is_lowered",
    "kernel_run",
    "lowering_backend",
]

#: Pseudo point index backends tick when a batch pays the one-time
#: lowering cost; the scheduler turns it into a ``phase="lower"``
#: ProgressEvent instead of a completed point (negative so it can never
#: collide with a real index — and it survives the queue's integer tick
#: wire format).
LOWER_TICK = -1

#: Folded into the per-(line-mask) fused code when the instruction's
#: fetch starts a new I-cache line (``code & 7`` recovers the kernel
#: class — FU_* 0-5 plus KCLASS_BRANCH, see DecodedProgram.static_columns).
_LINE_CHANGE = 8

_REDIRECT_LATENCY = 1  # keep in sync with pipeline.engine

_SUPPORTED_KINDS = (LevelTwoKind.HYBRID, LevelTwoKind.NONE,
                    LevelTwoKind.ARVI)

#: Level-2 kinds whose branch decisions are fully timing-independent and
#: therefore precompute into shared :class:`_BranchStreams` — the form
#: the flattened stream loop (and the trace specializer) replays.  ARVI
#: is supported by :func:`kernel_run` but runs its own fused pass: only
#: its level-1/confidence streams are timing-independent; the BVIT/RSE
#: side reads live DDT and register-timing state per configuration.
_STREAM_KINDS = (LevelTwoKind.HYBRID, LevelTwoKind.NONE)


class KernelUnsupported(RuntimeError):
    """The kernel cannot express this configuration; fall back to the
    interpreted replay path (never silently diverge)."""


def _numpy():
    """The numpy module, or None (absent, or ``REPRO_KERNEL_NUMPY=0``)."""
    if os.environ.get("REPRO_KERNEL_NUMPY", "1").strip().lower() in (
            "0", "false", "no", "off"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def lowering_backend() -> str:
    """Which lowering implementation a fresh pass would use."""
    return "numpy" if _numpy() is not None else "python"


class _BranchStreams:
    """Per-predictor-kind branch decision streams and stat prefix sums.

    The two-level hybrid's decisions depend only on the (pc, taken)
    branch sequence — never on cycle timing — so one pass over the
    recorded outcomes yields, for every branch *j* of the stream:
    whether the final prediction was wrong (``bad``, a redirect), and
    whether level 2 overrode level 1 (``override``, a fetch bubble on a
    correct final prediction).  The cumulative arrays turn the engine's
    measured-window branch statistics into prefix-sum differences.
    """

    __slots__ = ("bad", "override", "cum_final", "cum_l1", "cum_override",
                 "cum_helpful", "cum_harmful")

    def __init__(self, bpcs: list[int], btaken: list[bool],
                 kind: LevelTwoKind) -> None:
        hybrid = kind is LevelTwoKind.HYBRID
        level1 = level1_gskew()
        level2 = level2_gskew() if hybrid else None
        bad: list[bool] = []
        override: list[bool] = []
        cf = [0]
        cl1 = [0]
        cov = [0]
        chp = [0]
        chm = [0]
        for pc, taken in zip(bpcs, btaken):
            l1_pred = level1.predict(pc)
            if hybrid:
                l2_pred = level2.predict(pc)
                used = l2_pred != l1_pred
                final = l2_pred if used else l1_pred
            else:
                used = False
                final = l1_pred
            final_correct = final == taken
            l1_correct = l1_pred == taken
            bad.append(not final_correct)
            override.append(used)
            cf.append(cf[-1] + final_correct)
            cl1.append(cl1[-1] + l1_correct)
            cov.append(cov[-1] + used)
            chp.append(chp[-1] + (used and final_correct and not l1_correct))
            chm.append(chm[-1] + (used and l1_correct and not final_correct))
            level1.update(pc, taken)
            if hybrid:
                level2.update(pc, taken)
        self.bad = bad
        self.override = override
        self.cum_final = cf
        self.cum_l1 = cl1
        self.cum_override = cov
        self.cum_helpful = chp
        self.cum_harmful = chm


class _ARVIPreStreams:
    """Timing-independent per-branch ARVI inputs, shared across configs.

    For the ARVI configurations only the level-1 gskew prediction and
    the confidence verdict are timing-independent: both consume nothing
    but the committed (pc, taken) branch sequence, and each branch's
    predict immediately precedes its own train in program order (no
    other instruction touches either structure).  The BVIT/RSE side is
    *not* precomputable — its lookup keys read the live DDT retirement
    window, shadow values and load-hoist timing, which differ per
    machine configuration — so :func:`kernel_run` replays it live in
    the fused ARVI pass while reusing these streams.
    """

    __slots__ = ("l1_pred", "confident")

    def __init__(self, bpcs: list[int], btaken: list[bool]) -> None:
        level1 = level1_gskew()
        confidence = ConfidenceEstimator()
        l1_predict = level1.predict
        l1_update = level1.update
        is_confident = confidence.is_confident
        conf_update = confidence.update
        l1_pred: list[bool] = []
        confident: list[bool] = []
        for pc, taken in zip(bpcs, btaken):
            l1 = l1_predict(pc)
            l1_pred.append(l1)
            confident.append(is_confident(pc))
            l1_update(pc, taken)
            conf_update(pc, l1 == taken, taken)
        self.l1_pred = l1_pred
        self.confident = confident


class LoweredTrace:
    """Dense array form of one committed trace, shared across configs."""

    __slots__ = (
        "program", "trace", "length", "backend",
        "pcs", "kclass", "byte_pcs", "dep1", "dep2",
        "mem_pos", "mem_addr", "store_dep",
        "load_prefix", "store_prefix",
        "branch_pos", "branch_pcs", "branch_taken",
        "jr_pos", "jr_correct_cum", "_hasres",
        "_np", "_kclass_np", "_byte_np", "_codes", "_streams",
        "_values", "_arvi_pre", "_specialized",
    )

    # -- derived caches ------------------------------------------------------

    def codes_for(self, line_mask: int) -> list[int]:
        """Fused class+line-change codes for one I-cache line mask."""
        codes = self._codes.get(line_mask)
        if codes is not None:
            return codes
        np = self._np
        if np is not None:
            lines = self._byte_np & line_mask
            change = np.empty(self.length, dtype=bool)
            if self.length:
                change[0] = True  # last fetch line starts at -1
                change[1:] = lines[1:] != lines[:-1]
            codes = (self._kclass_np
                     | (change.astype(np.int64) << 3)).tolist()
        else:
            codes = list(self.kclass)
            last = -1
            byte_pcs = self.byte_pcs
            for i in range(self.length):
                line = byte_pcs[i] & line_mask
                if line != last:
                    last = line
                    codes[i] |= _LINE_CHANGE
        self._codes[line_mask] = codes
        return codes

    def streams_for(self, kind: LevelTwoKind) -> _BranchStreams:
        """Branch decision streams for one level-2 kind (cached)."""
        streams = self._streams.get(kind)
        if streams is None:
            if kind not in _STREAM_KINDS:
                raise KernelUnsupported(
                    f"replay of {self.program.name!r}: level-2 kind "
                    f"{kind.value!r} has no precomputable decision stream "
                    "(its decisions read live DDT/timing state)")
            streams = _BranchStreams(self.branch_pcs, self.branch_taken,
                                     kind)
            self._streams[kind] = streams
        return streams

    def values(self) -> list[int]:
        """Dense committed result values, one entry per instruction.

        ``values()[i]`` is the committed result of instruction *i* (the
        engine's ``dyn.result``) or 0 when the opcode produces none —
        the densification of the trace's sparse ``results`` column via
        the static ``has_result`` table.  Built lazily (only the ARVI
        pass reads values) and cached for every config of a batch.
        """
        vals = self._values
        if vals is not None:
            return vals
        results = self.trace.results
        hasres_tab = self._hasres
        n = self.length
        np = self._np
        if np is not None:
            if n:
                hasres = np.array(hasres_tab, dtype=bool)[self._byte_np >> 2]
            else:
                hasres = np.zeros(0, dtype=bool)
            count = int(hasres.sum())
            if count != len(results):
                raise TraceError(
                    f"trace of {self.trace.program_name!r} is internally "
                    "inconsistent (column lengths do not match the stream)")
            vals_np = np.zeros(n, dtype=np.int64)
            vals_np[hasres] = np.asarray(results)
            vals = vals_np.tolist()
        else:
            vals = [0] * n
            ri = 0
            try:
                for i, pc in enumerate(self.pcs):
                    if hasres_tab[pc]:
                        vals[i] = results[ri]
                        ri += 1
            except IndexError as exc:
                raise TraceError(
                    f"trace of {self.trace.program_name!r} is internally "
                    "inconsistent (column lengths do not match the stream)"
                ) from exc
            if ri != len(results):
                raise TraceError(
                    f"trace of {self.trace.program_name!r} is internally "
                    "inconsistent (column lengths do not match the stream)")
        self._values = vals
        return vals

    def arvi_prestreams(self) -> _ARVIPreStreams:
        """Shared level-1/confidence streams for the ARVI pass (cached)."""
        pre = self._arvi_pre
        if pre is None:
            pre = _ARVIPreStreams(self.branch_pcs, self.branch_taken)
            self._arvi_pre = pre
        return pre


def _lower(program: Program, trace: CommittedTrace) -> LoweredTrace:
    trace.validate_for(program)
    np = _numpy()
    cls_tab, src1_tab, src2_tab, wr_tab, ras_tab, hasres_tab = \
        program.decoded().static_columns()
    n = trace.length
    branches = trace.branch_count
    pcs_list = trace.pcs.tolist()

    lowered = LoweredTrace.__new__(LoweredTrace)
    lowered.program = program
    lowered.trace = trace
    lowered.length = n
    lowered.pcs = pcs_list
    lowered._hasres = hasres_tab
    lowered._codes = {}
    lowered._streams = {}
    lowered._values = None
    lowered._arvi_pre = None
    lowered._specialized = None

    if np is not None:
        lowered.backend = "numpy"
        pcs_np = np.array(pcs_list, dtype=np.int64)
        kclass_np = np.array(cls_tab, dtype=np.int64)[pcs_np] \
            if n else np.zeros(0, dtype=np.int64)
        byte_np = pcs_np * 4
        is_load = kclass_np == K_LOAD
        is_store = kclass_np == K_STORE
        lowered._np = np
        lowered._kclass_np = kclass_np
        lowered._byte_np = byte_np
        lowered.kclass = kclass_np.tolist()
        lowered.byte_pcs = byte_np.tolist()
        lowered.load_prefix = np.concatenate(
            ([0], np.cumsum(is_load))).tolist()
        lowered.store_prefix = np.concatenate(
            ([0], np.cumsum(is_store))).tolist()
        lowered.mem_pos = np.nonzero(is_load | is_store)[0].tolist()
        branch_idx = np.nonzero(kclass_np == K_BRANCH)[0]
        lowered.branch_pos = branch_idx.tolist()
        lowered.branch_pcs = pcs_np[branch_idx].tolist()
        if branches:
            bits = np.frombuffer(trace.taken_bits, dtype=np.uint8)
            lowered.branch_taken = np.unpackbits(
                bits, bitorder="little")[:branches].astype(bool).tolist()
        else:
            lowered.branch_taken = []
        ras_hits = np.array(ras_tab, dtype=np.int64)[pcs_np] \
            if n else np.zeros(0, dtype=np.int64)
        ras_events = np.nonzero(ras_hits)[0].tolist()
    else:
        lowered.backend = "python"
        lowered._np = None
        lowered._kclass_np = None
        lowered._byte_np = None
        kclass = [cls_tab[pc] for pc in pcs_list]
        lowered.kclass = kclass
        lowered.byte_pcs = [pc * 4 for pc in pcs_list]
        load_prefix = [0] * (n + 1)
        store_prefix = [0] * (n + 1)
        mem_pos: list[int] = []
        branch_pos: list[int] = []
        branch_pcs: list[int] = []
        loads = stores = 0
        for i, k in enumerate(kclass):
            if k == K_LOAD:
                loads += 1
                mem_pos.append(i)
            elif k == K_STORE:
                stores += 1
                mem_pos.append(i)
            elif k == K_BRANCH:
                branch_pos.append(i)
                branch_pcs.append(pcs_list[i])
            load_prefix[i + 1] = loads
            store_prefix[i + 1] = stores
        lowered.load_prefix = load_prefix
        lowered.store_prefix = store_prefix
        lowered.mem_pos = mem_pos
        lowered.branch_pos = branch_pos
        lowered.branch_pcs = branch_pcs
        taken_bits = trace.taken_bits
        lowered.branch_taken = [
            bool((taken_bits[j >> 3] >> (j & 7)) & 1)
            for j in range(branches)]
        ras_events = [i for i, pc in enumerate(pcs_list) if ras_tab[pc]]

    if (len(lowered.branch_pos) != branches
            or len(lowered.mem_pos) != len(trace.addrs)):
        raise TraceError(
            f"trace of {trace.program_name!r} is internally inconsistent "
            "(column lengths do not match the stream)")

    # One-shot DDT-style dependence pass: each source register resolves
    # to the stream index of its last prior writer (the instruction whose
    # physical destination register the engine's rename map would read).
    dep1 = [-1] * n
    dep2 = [-1] * n
    last_writer = [-1] * 32
    for i, pc in enumerate(pcs_list):
        src = src1_tab[pc]
        if src >= 0:
            dep1[i] = last_writer[src]
        src = src2_tab[pc]
        if src >= 0:
            dep2[i] = last_writer[src]
        dest = wr_tab[pc]
        if dest >= 0:
            last_writer[dest] = i
    lowered.dep1 = dep1
    lowered.dep2 = dep2

    # Store-forwarding sources: for each load, the stream index of the
    # latest prior store to the same word — the engine's never-cleared
    # ``pending_stores`` dict, resolved ahead of time.
    mem_addr = trace.addrs.tolist()
    lowered.mem_addr = mem_addr
    kclass = lowered.kclass
    store_dep = [-1] * len(mem_addr)
    last_store: dict[int, int] = {}
    for m, pos in enumerate(lowered.mem_pos):
        word = mem_addr[m] & ~3
        if kclass[pos] == K_LOAD:
            store_dep[m] = last_store.get(word, -1)
        else:
            last_store[word] = pos
    lowered.store_dep = store_dep

    # Return-address-stack accuracy stream (depth 16, circular overwrite
    # on overflow, underflow pops count as incorrect — predictors/ras.py
    # semantics).  The stack evolves forward only, so every prefix of
    # the stream is valid for budget-truncated replays.
    jr_pos: list[int] = []
    jr_correct_cum = [0]
    stack: list[int] = []
    final_next_pc = trace.final_next_pc
    for pos in ras_events:
        pc = pcs_list[pos]
        if ras_tab[pc] == RAS_PUSH:
            if len(stack) >= 16:
                stack.pop(0)
            stack.append(pc + 1)
        else:
            target = pcs_list[pos + 1] if pos + 1 < n else final_next_pc
            correct = bool(stack) and stack.pop() == target
            jr_pos.append(pos)
            jr_correct_cum.append(jr_correct_cum[-1] + correct)
    lowered.jr_pos = jr_pos
    lowered.jr_correct_cum = jr_correct_cum
    return lowered


def is_lowered(trace: CommittedTrace, program: Program | None = None) -> bool:
    """Whether ``trace`` already carries a (matching) lowered form."""
    cached = trace._lowered_cache
    if cached is None:
        return False
    return program is None or cached.program is program


def ensure_lowered(program: Program, trace: CommittedTrace) -> LoweredTrace:
    """Lower (and cache) ``trace`` for ``program``.

    Like :meth:`CommittedTrace.materialize`, the lowered form is built
    once per (trace, program) pair and shared read-only by every replay
    of the trace — a batch of redirect timing points pays the lowering
    cost exactly once per workload identity.
    """
    cached = trace._lowered_cache
    if cached is not None and cached.program is program:
        return cached
    lowered = _lower(program, trace)
    trace._lowered_cache = lowered
    return lowered


def kernel_run(program: Program, trace: CommittedTrace,
               config: MachineConfig,
               kind: LevelTwoKind = LevelTwoKind.HYBRID, *,
               warmup_instructions: int = 0,
               max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               value_mode: ValueMode = ValueMode.CURRENT,
               arvi_config: ARVIConfig | None = None,
               ) -> SimulationResult:
    """Replay one timing configuration over the lowered trace.

    Produces a :class:`SimulationResult` bit-for-bit equal to
    ``PipelineEngine(program, config, build_predictor(kind, config,
    arvi_config), value_mode=..., warmup_instructions=...,
    core=TraceReplayCore(program, trace)).run(max_instructions)`` for
    every supported configuration; raises :class:`KernelUnsupported`
    for anything else.  The memory hierarchy runs live, in the engine's
    exact access order — the shared L2 couples I-side and D-side state,
    and store-forwarding outcomes depend on per-config timing, so cache
    latencies cannot be precomputed.

    ``LevelTwoKind.ARVI`` (``value_mode`` / ``arvi_config`` select the
    paper's evaluation configurations) runs the fused ARVI pass: the
    shared level-1/confidence streams are precomputed once per trace,
    while the DDT/RSE/BVIT machinery replays live per configuration —
    its lookup keys depend on per-config retirement timing.
    """
    if config.speculation != "redirect":
        raise KernelUnsupported(
            f"replay of {trace.program_name!r}: the replay kernel models "
            "redirect speculation only; wrongpath synthesis reads live "
            "architectural state")
    if kind not in _SUPPORTED_KINDS:
        raise KernelUnsupported(
            f"replay of {trace.program_name!r}: the replay kernel cannot "
            f"express level-2 kind {kind.value!r}")
    lowered = ensure_lowered(program, trace)
    n = lowered.length
    if max_instructions > n and not trace.halted:
        # Mirror TraceReplayCore.step: a budget past a truncated
        # recording is an error, never a silently shorter run.
        raise TraceError(
            f"trace of {trace.program_name!r} exhausted at instruction "
            f"{n}: it was truncated at max_instructions="
            f"{trace.max_instructions}; use a live FunctionalCore or "
            "record a longer trace")
    n_run = n if n < max_instructions else max_instructions
    if n_run < 0:
        n_run = 0

    if kind is LevelTwoKind.ARVI:
        return _arvi_replay(program, lowered, config, value_mode,
                            arvi_config, warmup_instructions, n_run)

    streams = lowered.streams_for(kind)
    memory = MemoryHierarchy(config)

    # ---- hot locals (mirrors the engine's fused loop) ---------------------
    codes = lowered.codes_for(~(config.icache.line_bytes - 1))
    byte_pcs = lowered.byte_pcs
    dep1 = lowered.dep1
    dep2 = lowered.dep2
    mem_pos = lowered.mem_pos
    mem_addr = lowered.mem_addr
    store_dep = lowered.store_dep
    branch_bad = streams.bad
    branch_override = streams.override
    mem_ilat = memory.instruction_latency
    mem_dlat = memory.data_latency
    icache_hit_latency = config.icache.hit_latency
    frontend_depth = config.frontend_depth
    fetch_width = config.fetch_width
    commit_width = config.commit_width
    rob_capacity = config.rob_entries
    lsq_capacity = config.lsq_entries
    alu_latency = config.alu_latency
    mult_latency = config.mult_latency
    div_latency = config.div_latency
    if kind is LevelTwoKind.HYBRID:
        override_redirect = config.predictor_latencies.level2_hybrid + 1
    else:
        override_redirect = 1  # unreachable: NONE never overrides
    muldiv_scalar = config.int_muldiv == 1

    complete_arr = [0] * n_run
    commit_arr = [0] * n_run
    alu_free = [0] * config.int_alus     # zeros are already a valid heap
    dcache_free = [0] * config.dcache_ports
    muldiv_free = 0
    muldiv_heap = [0] * config.int_muldiv
    fetch_barrier = 0
    fetch_cycle = fetch_used = 0
    commit_cycle = commit_used = 0
    last_commit = 0
    mem_i = 0
    branch_i = 0

    for i in range(n_run):
        code = codes[i]
        k = code & 7

        # ---- fetch (barrier -> ROB -> LSQ -> I-cache -> bandwidth) --------
        earliest = fetch_barrier
        if i >= rob_capacity:
            free_at = commit_arr[i - rob_capacity] + 1
            if free_at > earliest:
                earliest = free_at
        if k == K_LOAD or k == K_STORE:
            if mem_i >= lsq_capacity:
                free_at = commit_arr[mem_pos[mem_i - lsq_capacity]] + 1
                if free_at > earliest:
                    earliest = free_at
        if code & _LINE_CHANGE:
            extra = mem_ilat(byte_pcs[i]) - icache_hit_latency
            if extra > 0:
                earliest += extra
        if earliest > fetch_cycle:
            fetch_cycle = earliest
            fetch_used = 0
        if fetch_used >= fetch_width:
            fetch_cycle += 1
            fetch_used = 0
        fetch_used += 1
        fetch = fetch_cycle

        # ---- issue / execute ---------------------------------------------
        ready = fetch + frontend_depth
        dep = dep1[i]
        if dep >= 0:
            when = complete_arr[dep]
            if when > ready:
                ready = when
        dep = dep2[i]
        if dep >= 0:
            when = complete_arr[dep]
            if when > ready:
                ready = when
        if k == K_ALU or k == K_BRANCH:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + alu_latency
        elif k == K_LOAD:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            agen1 = issue + 1
            server_free = heappop(dcache_free)
            access = agen1 if agen1 >= server_free else server_free
            heappush(dcache_free, access + 1)
            source = store_dep[mem_i]
            if source >= 0 and commit_arr[source] > access:
                data_ready = complete_arr[source]
                complete = (access if access >= data_ready
                            else data_ready) + 1
            else:
                complete = access + mem_dlat(mem_addr[mem_i])
            mem_i += 1
        elif k == K_STORE:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + 1
            mem_i += 1
        elif k == K_OTHER:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + 1
        elif k == K_MULT:
            if muldiv_scalar:
                issue = ready if ready >= muldiv_free else muldiv_free
                muldiv_free = issue + 1
            else:
                server_free = heappop(muldiv_heap)
                issue = ready if ready >= server_free else server_free
                heappush(muldiv_heap, issue + 1)
            complete = issue + mult_latency
        else:  # K_DIV (unpipelined)
            if muldiv_scalar:
                issue = ready if ready >= muldiv_free else muldiv_free
                muldiv_free = issue + div_latency
            else:
                server_free = heappop(muldiv_heap)
                issue = ready if ready >= server_free else server_free
                heappush(muldiv_heap, issue + div_latency)
            complete = issue + div_latency

        # ---- commit -------------------------------------------------------
        commit_req = complete + 1
        if commit_req < last_commit:
            commit_req = last_commit
        if commit_req > commit_cycle:
            commit_cycle = commit_req
            commit_used = 0
        if commit_used >= commit_width:
            commit_cycle += 1
            commit_used = 0
        commit_used += 1
        last_commit = commit_cycle
        commit_arr[i] = last_commit
        complete_arr[i] = complete

        # ---- control flow resolution -------------------------------------
        if k == K_BRANCH:
            if branch_bad[branch_i]:
                barrier = complete + _REDIRECT_LATENCY
                if barrier > fetch_barrier:
                    fetch_barrier = barrier
            elif branch_override[branch_i]:
                barrier = fetch + override_redirect
                if barrier > fetch_barrier:
                    fetch_barrier = barrier
            branch_i += 1

    return stream_result(lowered, kind, config, warmup_instructions,
                         n_run, last_commit, commit_arr, memory)


def stream_result(lowered: LoweredTrace, kind: LevelTwoKind,
                  config: MachineConfig, warmup: int, n_run: int,
                  last_commit: int, commit_arr: list[int],
                  memory: MemoryHierarchy) -> SimulationResult:
    """Statistics epilogue shared by the stream loop and the specializer.

    Everything after the timing loop is a pure function of the lowered
    trace, the branch streams and ``(last_commit, commit_arr)`` — the
    specialized replay (``pipeline.specialize``) produces exactly those
    two values, so routing both paths through this one epilogue makes
    their results equal by construction.
    """
    streams = lowered.streams_for(kind)
    result = SimulationResult(
        benchmark=lowered.program.name,
        configuration=f"2-level {kind.value}",
        pipeline_depth=config.pipeline_depth,
        warmup_instructions=warmup,
        speculation=config.speculation,
    )
    measured_lo = warmup if warmup < n_run else n_run
    result.loads = (lowered.load_prefix[n_run]
                    - lowered.load_prefix[measured_lo])
    result.stores = (lowered.store_prefix[n_run]
                     - lowered.store_prefix[measured_lo])

    branch_lo = bisect_left(lowered.branch_pos, measured_lo)
    branch_hi = bisect_left(lowered.branch_pos, n_run)
    result.cond_branches = branch_hi - branch_lo
    result.final_correct = (streams.cum_final[branch_hi]
                            - streams.cum_final[branch_lo])
    result.l1_correct = (streams.cum_l1[branch_hi]
                         - streams.cum_l1[branch_lo])
    overrides = (streams.cum_override[branch_hi]
                 - streams.cum_override[branch_lo])
    result.overrides = overrides
    result.l2_used = overrides  # hybrid uses L2 exactly when it overrides
    result.overrides_helpful = (streams.cum_helpful[branch_hi]
                                - streams.cum_helpful[branch_lo])
    result.overrides_harmful = (streams.cum_harmful[branch_hi]
                                - streams.cum_harmful[branch_lo])

    result.total_instructions = n_run
    result.total_cycles = last_commit
    measured_start_cycle = commit_arr[warmup] if warmup < n_run else 0
    result.instructions = max(n_run - warmup, 0)
    result.cycles = max(last_commit - measured_start_cycle, 0)
    result.memory = memory.stats()

    pops = bisect_left(lowered.jr_pos, n_run)
    correct_pops = lowered.jr_correct_cum[pops]
    result.ras_accuracy = correct_pops / pops if pops else 1.0
    return result


def _arvi_replay(program: Program, lowered: LoweredTrace,
                 config: MachineConfig, value_mode: ValueMode,
                 arvi_config: ARVIConfig | None, warmup: int,
                 n_run: int) -> SimulationResult:
    """The fused ARVI pass: engine semantics, flat-loop mechanics.

    Mirrors :meth:`PipelineEngine.run` stage for stage for the ARVI
    configurations.  The timing arithmetic (fetch / issue / commit /
    redirect) is the stream kernel's; on top of it the pass maintains
    the real rename / DDT / chain-info / shadow structures and drains a
    retire queue at each instruction's rename cycle, because the ARVI
    lookup keys read exactly that state: which chain instructions are
    still in flight, which leaf registers are pending, their shadow (or
    exposed) values, and the chain-depth span.  The level-1 prediction
    and the confidence verdict are timing-independent and come from the
    shared :class:`_ARVIPreStreams`; the BVIT runs live (fresh table
    per config, as the engine builds a fresh predictor).

    Deliberate deviation from ISSUE 9's premise: the *full* ARVI
    decision stream is **not** timing-independent per latency class —
    availability and chain membership depend on per-config commit
    timing — so it cannot be lowered into shared prefix sums the way
    the gskew streams were.  Equality with the interpreted path is what
    the tests and the bench gate assert instead.
    """
    _cls, src1_tab, src2_tab, wr_tab, _ras, _hr = \
        program.decoded().static_columns()
    pre = lowered.arvi_prestreams()
    acfg = arvi_config or ARVIConfig()
    memory = MemoryHierarchy(config)
    n_pregs = config.num_phys_regs

    # Real structures, aliased like the engine's fused loop.
    rename = RenameMap(n_pregs)
    rename_map = rename._map
    rename_free = rename._free
    rename_owner = rename._owner
    free_popleft = rename_free.popleft
    free_append = rename_free.append
    ddt = FastDDT(n_pregs, config.rob_entries)
    ddt_allocate = ddt.allocate
    ddt_commit = ddt.commit_oldest
    chains_info: dict[int, tuple[int | None, tuple[int, ...], bool]] = {}
    chains_pop = chains_info.pop
    bvit = BVIT(acfg.sets, acfg.ways)
    bvit_lookup = bvit.lookup
    bvit_update = bvit.update
    shadow_values = ShadowRegisterFile(n_pregs)
    shadow_map = ShadowMapTable(n_pregs)
    shadow_vals = shadow_values._values
    shadow_ids = shadow_map._ids
    value_mask = shadow_values._mask
    shadow_id_mask = shadow_map._mask

    registers = [0] * 32
    registers[regs.sp] = STACK_TOP
    registers[regs.gp] = DATA_BASE
    preg_value = [0] * n_pregs
    for logical in range(rename.num_logical):
        preg = rename_map[logical]
        shadow_ids[preg] = logical & shadow_id_mask
        shadow_vals[preg] = registers[logical] & value_mask
        preg_value[preg] = registers[logical]
    preg_pending = [False] * n_pregs
    preg_is_load = [False] * n_pregs
    preg_hoist = [0] * n_pregs
    retire: deque[tuple] = deque()
    retire_append = retire.append
    retire_popleft = retire.popleft

    # ---- hot locals (the stream kernel's, plus the ARVI state) ------------
    pcs = lowered.pcs
    codes = lowered.codes_for(~(config.icache.line_bytes - 1))
    byte_pcs = lowered.byte_pcs
    dep1 = lowered.dep1
    dep2 = lowered.dep2
    mem_pos = lowered.mem_pos
    mem_addr = lowered.mem_addr
    store_dep = lowered.store_dep
    values = lowered.values()
    branch_taken = lowered.branch_taken
    l1_stream = pre.l1_pred
    conf_stream = pre.confident
    mem_ilat = memory.instruction_latency
    mem_dlat = memory.data_latency
    icache_hit_latency = config.icache.hit_latency
    frontend_depth = config.frontend_depth
    rename_offset = config.rename_offset
    fetch_width = config.fetch_width
    commit_width = config.commit_width
    rob_capacity = config.rob_entries
    lsq_capacity = config.lsq_entries
    alu_latency = config.alu_latency
    mult_latency = config.mult_latency
    div_latency = config.div_latency
    override_redirect = config.predictor_latencies.level2_arvi + 1
    muldiv_scalar = config.int_muldiv == 1
    index_mask = (1 << acfg.index_bits) - 1
    id_tag_mask = (1 << acfg.id_tag_bits) - 1
    depth_limit = (1 << acfg.depth_bits) - 1
    use_id_tag = acfg.use_id_tag
    use_depth_tag = acfg.use_depth_tag
    allocate_soft = not acfg.allocate_only_hard
    is_perfect = value_mode is ValueMode.PERFECT
    is_load_back = value_mode is ValueMode.LOAD_BACK

    complete_arr = [0] * n_run
    commit_arr = [0] * n_run
    alu_free = [0] * config.int_alus
    dcache_free = [0] * config.dcache_ports
    muldiv_free = 0
    muldiv_heap = [0] * config.int_muldiv
    fetch_barrier = 0
    fetch_cycle = fetch_used = 0
    commit_cycle = commit_used = 0
    last_commit = 0
    mem_i = 0
    branch_i = 0

    cond_branches = final_correct_n = l1_correct_n = 0
    overrides_n = helpful_n = harmful_n = l2_used_n = 0
    calc_b = calc_c = load_b = load_c = 0

    for i in range(n_run):
        code = codes[i]
        k = code & 7

        # ---- fetch (barrier -> ROB -> LSQ -> I-cache -> bandwidth) --------
        earliest = fetch_barrier
        if i >= rob_capacity:
            free_at = commit_arr[i - rob_capacity] + 1
            if free_at > earliest:
                earliest = free_at
        if k == K_LOAD or k == K_STORE:
            if mem_i >= lsq_capacity:
                free_at = commit_arr[mem_pos[mem_i - lsq_capacity]] + 1
                if free_at > earliest:
                    earliest = free_at
        if code & _LINE_CHANGE:
            extra = mem_ilat(byte_pcs[i]) - icache_hit_latency
            if extra > 0:
                earliest += extra
        if earliest > fetch_cycle:
            fetch_cycle = earliest
            fetch_used = 0
        if fetch_used >= fetch_width:
            fetch_cycle += 1
            fetch_used = 0
        fetch_used += 1
        fetch = fetch_cycle

        # ---- rename (early, one cycle after fetch) ------------------------
        rename_cycle = fetch + rename_offset
        if retire and retire[0][3] <= rename_cycle:
            while retire and retire[0][3] <= rename_cycle:
                token, dest, value, _c, displaced = retire_popleft()
                ddt_commit()
                chains_pop(token, None)
                if dest is not None:
                    shadow_vals[dest] = value & value_mask
                    preg_pending[dest] = False
                if displaced is not None:
                    free_append(displaced)

        pc = pcs[i]
        s1 = src1_tab[pc]
        if s1 >= 0:
            s2 = src2_tab[pc]
            if s2 >= 0:
                src_pregs = (rename_map[s1], rename_map[s2])
            else:
                src_pregs = (rename_map[s1],)
        else:
            src_pregs = ()

        # ---- ARVI decision (reads the DDT *before* the branch inserts) ----
        is_branch = k == K_BRANCH
        if is_branch:
            taken = branch_taken[branch_i]
            l1_pred = l1_stream[branch_i]
            confident = conf_stream[branch_i]
            ddt_rows = ddt.rows  # rebound by renormalization; no hoisting
            cmask = 0
            for preg in src_pregs:
                cmask |= ddt_rows[preg]
            cmask &= ddt.valid
            base = ddt._base
            if cmask:
                oldest = base + (cmask & -cmask).bit_length() - 1
            else:
                oldest = None
            # RSE extraction (ChainInfoTable.extract, inlined over the
            # chain bitmask: loads terminate chains and mark nothing).
            rse_sources = set(src_pregs)
            rse_targets = None
            m = cmask
            while m:
                low = m & -m
                m ^= low
                dest, srcs, is_ld = chains_info[
                    base + low.bit_length() - 1]
                if not is_ld:
                    rse_sources.update(srcs)
                    if dest is not None:
                        if rse_targets is None:
                            rse_targets = {dest}
                        else:
                            rse_targets.add(dest)
            regset = (rse_sources if rse_targets is None
                      else rse_sources - rse_targets)
            # Key formation (ARVIPredictor.keys, inlined: XOR fold, id
            # sum and any() are commutative, so no sorted() pass).
            index = pc & index_mask
            id_sum = 0
            is_load_branch = False
            for preg in regset:
                if not preg_pending[preg]:
                    index ^= shadow_vals[preg] & index_mask
                elif is_perfect or (is_load_back and preg_is_load[preg]
                                    and preg_hoist[preg] <= fetch):
                    index ^= preg_value[preg] & value_mask & index_mask
                else:
                    is_load_branch = True
                id_sum += shadow_ids[preg] & id_tag_mask
            id_tag = id_sum & id_tag_mask if use_id_tag else 0
            if use_depth_tag and oldest is not None:
                span = ddt._next_token - oldest
                depth_tag = span if span < depth_limit else depth_limit
            else:
                depth_tag = 0
            arvi_taken = bvit_lookup(index, id_tag, depth_tag)
            use_arvi = arvi_taken is not None and not confident
            final = arvi_taken if use_arvi else l1_pred

        # ---- destination rename + DDT insert ------------------------------
        rd = wr_tab[pc]
        if rd >= 0:
            if not rename_free:
                rename.rename_dest(rd)  # raises RenameError (engine parity)
            dest_preg = free_popleft()
            displaced = rename_map[rd]
            rename_map[rd] = dest_preg
            rename_owner[dest_preg] = rd
            shadow_ids[dest_preg] = rd & shadow_id_mask
        else:
            dest_preg = None
            displaced = None
        token = ddt_allocate(dest_preg, src_pregs)
        chains_info[token] = (dest_preg, src_pregs, k == K_LOAD)

        # ---- issue / execute ---------------------------------------------
        operands = 0
        dep = dep1[i]
        if dep >= 0:
            operands = complete_arr[dep]
        dep = dep2[i]
        if dep >= 0:
            when = complete_arr[dep]
            if when > operands:
                operands = when
        ready = fetch + frontend_depth
        if operands > ready:
            ready = operands
        hoist_val = 0
        if k == K_ALU or k == K_BRANCH:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + alu_latency
        elif k == K_LOAD:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            agen1 = issue + 1
            server_free = heappop(dcache_free)
            access = agen1 if agen1 >= server_free else server_free
            heappush(dcache_free, access + 1)
            source = store_dep[mem_i]
            if source >= 0 and commit_arr[source] > access:
                data_ready = complete_arr[source]
                complete = (access if access >= data_ready
                            else data_ready) + 1
            else:
                complete = access + mem_dlat(mem_addr[mem_i])
            # Hoisted availability (engine _hoist_available): operand
            # readiness, gated by the forwarding store's data, plus the
            # load's actual latency.  Read only under "load back".
            hoist_start = operands
            if source >= 0:
                data_ready = complete_arr[source]
                if data_ready > hoist_start:
                    hoist_start = data_ready
            hoist_val = hoist_start + (complete - issue)
            mem_i += 1
        elif k == K_STORE:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + 1
            mem_i += 1
        elif k == K_OTHER:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + 1
        elif k == K_MULT:
            if muldiv_scalar:
                issue = ready if ready >= muldiv_free else muldiv_free
                muldiv_free = issue + 1
            else:
                server_free = heappop(muldiv_heap)
                issue = ready if ready >= server_free else server_free
                heappush(muldiv_heap, issue + 1)
            complete = issue + mult_latency
        else:  # K_DIV (unpipelined)
            if muldiv_scalar:
                issue = ready if ready >= muldiv_free else muldiv_free
                muldiv_free = issue + div_latency
            else:
                server_free = heappop(muldiv_heap)
                issue = ready if ready >= server_free else server_free
                heappush(muldiv_heap, issue + div_latency)
            complete = issue + div_latency

        # ---- commit -------------------------------------------------------
        commit_req = complete + 1
        if commit_req < last_commit:
            commit_req = last_commit
        if commit_req > commit_cycle:
            commit_cycle = commit_req
            commit_used = 0
        if commit_used >= commit_width:
            commit_cycle += 1
            commit_used = 0
        commit_used += 1
        last_commit = commit_cycle
        commit_arr[i] = last_commit
        complete_arr[i] = complete

        # ---- writeback bookkeeping ----------------------------------------
        if dest_preg is not None:
            value = values[i]
            preg_value[dest_preg] = value
            preg_pending[dest_preg] = True
            is_ld = k == K_LOAD
            preg_is_load[dest_preg] = is_ld
            if is_ld:
                preg_hoist[dest_preg] = hoist_val
        else:
            value = 0
        retire_append((token, dest_preg, value, last_commit, displaced))

        # ---- control flow resolution + training ---------------------------
        if is_branch:
            final_correct = final == taken
            override = use_arvi and final != l1_pred
            if not final_correct:
                barrier = complete + _REDIRECT_LATENCY
                if barrier > fetch_barrier:
                    fetch_barrier = barrier
            elif override:
                barrier = fetch + override_redirect
                if barrier > fetch_barrier:
                    fetch_barrier = barrier
            bvit_update(index, id_tag, depth_tag, taken,
                        allocate=not confident or allocate_soft)
            if i >= warmup:
                cond_branches += 1
                l1_correct = l1_pred == taken
                if final_correct:
                    final_correct_n += 1
                if l1_correct:
                    l1_correct_n += 1
                if override:
                    overrides_n += 1
                    if final_correct and not l1_correct:
                        helpful_n += 1
                    elif l1_correct and not final_correct:
                        harmful_n += 1
                if use_arvi:
                    l2_used_n += 1
                if is_load_branch:
                    load_b += 1
                    if final_correct:
                        load_c += 1
                else:
                    calc_b += 1
                    if final_correct:
                        calc_c += 1
            branch_i += 1

    # ---- statistics -------------------------------------------------------
    result = SimulationResult(
        benchmark=program.name,
        configuration=f"arvi {value_mode.value}",
        pipeline_depth=config.pipeline_depth,
        warmup_instructions=warmup,
        speculation=config.speculation,
    )
    measured_lo = warmup if warmup < n_run else n_run
    result.loads = (lowered.load_prefix[n_run]
                    - lowered.load_prefix[measured_lo])
    result.stores = (lowered.store_prefix[n_run]
                     - lowered.store_prefix[measured_lo])
    result.cond_branches = cond_branches
    result.final_correct = final_correct_n
    result.l1_correct = l1_correct_n
    result.overrides = overrides_n
    result.overrides_helpful = helpful_n
    result.overrides_harmful = harmful_n
    result.l2_used = l2_used_n
    result.calculated = BranchClassStats(branches=calc_b, correct=calc_c)
    result.load = BranchClassStats(branches=load_b, correct=load_c)
    result.arvi_lookups = bvit.stats.lookups
    result.arvi_bvit_hits = bvit.stats.hits

    result.total_instructions = n_run
    result.total_cycles = last_commit
    measured_start_cycle = commit_arr[warmup] if warmup < n_run else 0
    result.instructions = max(n_run - warmup, 0)
    result.cycles = max(last_commit - measured_start_cycle, 0)
    result.memory = memory.stats()

    pops = bisect_left(lowered.jr_pos, n_run)
    correct_pops = lowered.jr_correct_cum[pops]
    result.ras_accuracy = correct_pops / pops if pops else 1.0
    return result
