"""Compiled replay kernel: lower a committed trace once, replay it fast.

PR 4 records the committed instruction stream once per workload and
replays it through the interpreted engine loop per timing configuration;
this module removes the remaining per-instruction interpretation cost.
A :class:`LoweredTrace` converts :class:`~repro.pipeline.trace.
CommittedTrace` columns into dense per-instruction arrays plus
precomputed metadata, **once per workload identity**, shared read-only
by every redirect timing point of a batch:

* a fused per-instruction *kernel class* (ALU / frontend-other / load /
  store / mult / div / conditional branch, with an I-cache line-change
  flag folded in),
* dependence distances from a one-shot DDT-style last-writer pass
  (``dep1``/``dep2`` name the producing *stream index* of each source
  register — exactly what renamed physical-register readiness resolves
  to in the engine, see DESIGN.md §10),
* store-forwarding sources per memory op (the latest prior store to the
  same word — the engine's ``pending_stores`` dict, precomputed),
* ROB/LSQ occupancy metadata (memory-op stream positions, so the
  occupancy heads are plain array lookups per config),
* prefix sums for the measured-window load/store statistics, the RAS
  accuracy stream, and per-predictor-kind branch decision streams (the
  two-level gskew interplay is timing-independent, so its outcome
  sequence is simulated once and shared across every config).

:func:`kernel_run` then evaluates one timing configuration as a lean
array pass over the lowered form: the same fetch/issue/commit arithmetic
as :meth:`~repro.pipeline.engine.PipelineEngine.run`, stage for stage,
minus everything that cannot affect a redirect-mode hybrid/none result
(rename bookkeeping, DDT/RSE/shadow maintenance, per-branch predictor
dispatch, DynInst materialization).  Results are **bit-for-bit equal**
to the interpreted replay and to live execution — enforced by the
equality suite (``tests/pipeline/test_kernel.py``) and by the hard
gates in ``python -m repro.bench``.

Fallback rules (DESIGN.md §10): anything the lowered form cannot
express raises :class:`KernelUnsupported` and the caller falls back to
the interpreted path — ARVI level 2 (its decisions read live DDT/timing
state), ``wrongpath`` speculation (needs live architectural state), and
non-standard predictor stacks.  A budget that would step past a
truncated recording raises :class:`~repro.pipeline.trace.TraceError`,
matching the interpreted replay core.  The selection knob is
``REPRO_KERNEL`` (:func:`repro.experiments.tracing.kernel_mode`); which
path actually ran is observable via the ``kernel_source`` field threaded
through :func:`~repro.experiments.runner.execute_point`.

numpy is optional: the lowering pass vectorizes with numpy when it is
importable (``REPRO_KERNEL_NUMPY=0`` forces the fallback), and otherwise
builds identical arrays with pure-Python loops — the per-config replay
loop itself uses plain lists either way (CPython scalar indexing beats
numpy scalar indexing on this access pattern), so results are identical
with and without numpy.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from heapq import heappop, heappush

from repro.isa.decoded import (
    FU_ALU as K_ALU,
    FU_DIV as K_DIV,
    FU_LOAD as K_LOAD,
    FU_MULT as K_MULT,
    FU_OTHER as K_OTHER,
    FU_STORE as K_STORE,
    KCLASS_BRANCH as K_BRANCH,
    RAS_PUSH,
)
from repro.isa.program import Program
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.config import MachineConfig
from repro.pipeline.functional import DEFAULT_MAX_INSTRUCTIONS
from repro.pipeline.stats import SimulationResult
from repro.pipeline.trace import CommittedTrace, TraceError
from repro.predictors.gskew import level1_gskew, level2_gskew
from repro.predictors.twolevel import LevelTwoKind

__all__ = [
    "KernelUnsupported",
    "LOWER_TICK",
    "LoweredTrace",
    "ensure_lowered",
    "is_lowered",
    "kernel_run",
    "lowering_backend",
]

#: Pseudo point index backends tick when a batch pays the one-time
#: lowering cost; the scheduler turns it into a ``phase="lower"``
#: ProgressEvent instead of a completed point (negative so it can never
#: collide with a real index — and it survives the queue's integer tick
#: wire format).
LOWER_TICK = -1

#: Folded into the per-(line-mask) fused code when the instruction's
#: fetch starts a new I-cache line (``code & 7`` recovers the kernel
#: class — FU_* 0-5 plus KCLASS_BRANCH, see DecodedProgram.static_columns).
_LINE_CHANGE = 8

_REDIRECT_LATENCY = 1  # keep in sync with pipeline.engine

_SUPPORTED_KINDS = (LevelTwoKind.HYBRID, LevelTwoKind.NONE)


class KernelUnsupported(RuntimeError):
    """The kernel cannot express this configuration; fall back to the
    interpreted replay path (never silently diverge)."""


def _numpy():
    """The numpy module, or None (absent, or ``REPRO_KERNEL_NUMPY=0``)."""
    if os.environ.get("REPRO_KERNEL_NUMPY", "1").strip().lower() in (
            "0", "false", "no", "off"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def lowering_backend() -> str:
    """Which lowering implementation a fresh pass would use."""
    return "numpy" if _numpy() is not None else "python"


class _BranchStreams:
    """Per-predictor-kind branch decision streams and stat prefix sums.

    The two-level hybrid's decisions depend only on the (pc, taken)
    branch sequence — never on cycle timing — so one pass over the
    recorded outcomes yields, for every branch *j* of the stream:
    whether the final prediction was wrong (``bad``, a redirect), and
    whether level 2 overrode level 1 (``override``, a fetch bubble on a
    correct final prediction).  The cumulative arrays turn the engine's
    measured-window branch statistics into prefix-sum differences.
    """

    __slots__ = ("bad", "override", "cum_final", "cum_l1", "cum_override",
                 "cum_helpful", "cum_harmful")

    def __init__(self, bpcs: list[int], btaken: list[bool],
                 kind: LevelTwoKind) -> None:
        hybrid = kind is LevelTwoKind.HYBRID
        level1 = level1_gskew()
        level2 = level2_gskew() if hybrid else None
        bad: list[bool] = []
        override: list[bool] = []
        cf = [0]
        cl1 = [0]
        cov = [0]
        chp = [0]
        chm = [0]
        for pc, taken in zip(bpcs, btaken):
            l1_pred = level1.predict(pc)
            if hybrid:
                l2_pred = level2.predict(pc)
                used = l2_pred != l1_pred
                final = l2_pred if used else l1_pred
            else:
                used = False
                final = l1_pred
            final_correct = final == taken
            l1_correct = l1_pred == taken
            bad.append(not final_correct)
            override.append(used)
            cf.append(cf[-1] + final_correct)
            cl1.append(cl1[-1] + l1_correct)
            cov.append(cov[-1] + used)
            chp.append(chp[-1] + (used and final_correct and not l1_correct))
            chm.append(chm[-1] + (used and l1_correct and not final_correct))
            level1.update(pc, taken)
            if hybrid:
                level2.update(pc, taken)
        self.bad = bad
        self.override = override
        self.cum_final = cf
        self.cum_l1 = cl1
        self.cum_override = cov
        self.cum_helpful = chp
        self.cum_harmful = chm


class LoweredTrace:
    """Dense array form of one committed trace, shared across configs."""

    __slots__ = (
        "program", "trace", "length", "backend",
        "kclass", "byte_pcs", "dep1", "dep2",
        "mem_pos", "mem_addr", "store_dep",
        "load_prefix", "store_prefix",
        "branch_pos", "branch_pcs", "branch_taken",
        "jr_pos", "jr_correct_cum",
        "_np", "_kclass_np", "_byte_np", "_codes", "_streams",
    )

    # -- derived caches ------------------------------------------------------

    def codes_for(self, line_mask: int) -> list[int]:
        """Fused class+line-change codes for one I-cache line mask."""
        codes = self._codes.get(line_mask)
        if codes is not None:
            return codes
        np = self._np
        if np is not None:
            lines = self._byte_np & line_mask
            change = np.empty(self.length, dtype=bool)
            if self.length:
                change[0] = True  # last fetch line starts at -1
                change[1:] = lines[1:] != lines[:-1]
            codes = (self._kclass_np
                     | (change.astype(np.int64) << 3)).tolist()
        else:
            codes = list(self.kclass)
            last = -1
            byte_pcs = self.byte_pcs
            for i in range(self.length):
                line = byte_pcs[i] & line_mask
                if line != last:
                    last = line
                    codes[i] |= _LINE_CHANGE
        self._codes[line_mask] = codes
        return codes

    def streams_for(self, kind: LevelTwoKind) -> _BranchStreams:
        """Branch decision streams for one level-2 kind (cached)."""
        streams = self._streams.get(kind)
        if streams is None:
            if kind not in _SUPPORTED_KINDS:
                raise KernelUnsupported(
                    f"the replay kernel cannot express level-2 kind "
                    f"{kind.value!r}: its decisions read live DDT/timing "
                    "state; use the interpreted path")
            streams = _BranchStreams(self.branch_pcs, self.branch_taken,
                                     kind)
            self._streams[kind] = streams
        return streams


def _lower(program: Program, trace: CommittedTrace) -> LoweredTrace:
    trace.validate_for(program)
    np = _numpy()
    cls_tab, src1_tab, src2_tab, wr_tab, ras_tab = \
        program.decoded().static_columns()
    n = trace.length
    branches = trace.branch_count
    pcs_list = trace.pcs.tolist()

    lowered = LoweredTrace.__new__(LoweredTrace)
    lowered.program = program
    lowered.trace = trace
    lowered.length = n
    lowered._codes = {}
    lowered._streams = {}

    if np is not None:
        lowered.backend = "numpy"
        pcs_np = np.array(pcs_list, dtype=np.int64)
        kclass_np = np.array(cls_tab, dtype=np.int64)[pcs_np] \
            if n else np.zeros(0, dtype=np.int64)
        byte_np = pcs_np * 4
        is_load = kclass_np == K_LOAD
        is_store = kclass_np == K_STORE
        lowered._np = np
        lowered._kclass_np = kclass_np
        lowered._byte_np = byte_np
        lowered.kclass = kclass_np.tolist()
        lowered.byte_pcs = byte_np.tolist()
        lowered.load_prefix = np.concatenate(
            ([0], np.cumsum(is_load))).tolist()
        lowered.store_prefix = np.concatenate(
            ([0], np.cumsum(is_store))).tolist()
        lowered.mem_pos = np.nonzero(is_load | is_store)[0].tolist()
        branch_idx = np.nonzero(kclass_np == K_BRANCH)[0]
        lowered.branch_pos = branch_idx.tolist()
        lowered.branch_pcs = pcs_np[branch_idx].tolist()
        if branches:
            bits = np.frombuffer(trace.taken_bits, dtype=np.uint8)
            lowered.branch_taken = np.unpackbits(
                bits, bitorder="little")[:branches].astype(bool).tolist()
        else:
            lowered.branch_taken = []
        ras_hits = np.array(ras_tab, dtype=np.int64)[pcs_np] \
            if n else np.zeros(0, dtype=np.int64)
        ras_events = np.nonzero(ras_hits)[0].tolist()
    else:
        lowered.backend = "python"
        lowered._np = None
        lowered._kclass_np = None
        lowered._byte_np = None
        kclass = [cls_tab[pc] for pc in pcs_list]
        lowered.kclass = kclass
        lowered.byte_pcs = [pc * 4 for pc in pcs_list]
        load_prefix = [0] * (n + 1)
        store_prefix = [0] * (n + 1)
        mem_pos: list[int] = []
        branch_pos: list[int] = []
        branch_pcs: list[int] = []
        loads = stores = 0
        for i, k in enumerate(kclass):
            if k == K_LOAD:
                loads += 1
                mem_pos.append(i)
            elif k == K_STORE:
                stores += 1
                mem_pos.append(i)
            elif k == K_BRANCH:
                branch_pos.append(i)
                branch_pcs.append(pcs_list[i])
            load_prefix[i + 1] = loads
            store_prefix[i + 1] = stores
        lowered.load_prefix = load_prefix
        lowered.store_prefix = store_prefix
        lowered.mem_pos = mem_pos
        lowered.branch_pos = branch_pos
        lowered.branch_pcs = branch_pcs
        taken_bits = trace.taken_bits
        lowered.branch_taken = [
            bool((taken_bits[j >> 3] >> (j & 7)) & 1)
            for j in range(branches)]
        ras_events = [i for i, pc in enumerate(pcs_list) if ras_tab[pc]]

    if (len(lowered.branch_pos) != branches
            or len(lowered.mem_pos) != len(trace.addrs)):
        raise TraceError(
            f"trace of {trace.program_name!r} is internally inconsistent "
            "(column lengths do not match the stream)")

    # One-shot DDT-style dependence pass: each source register resolves
    # to the stream index of its last prior writer (the instruction whose
    # physical destination register the engine's rename map would read).
    dep1 = [-1] * n
    dep2 = [-1] * n
    last_writer = [-1] * 32
    for i, pc in enumerate(pcs_list):
        src = src1_tab[pc]
        if src >= 0:
            dep1[i] = last_writer[src]
        src = src2_tab[pc]
        if src >= 0:
            dep2[i] = last_writer[src]
        dest = wr_tab[pc]
        if dest >= 0:
            last_writer[dest] = i
    lowered.dep1 = dep1
    lowered.dep2 = dep2

    # Store-forwarding sources: for each load, the stream index of the
    # latest prior store to the same word — the engine's never-cleared
    # ``pending_stores`` dict, resolved ahead of time.
    mem_addr = trace.addrs.tolist()
    lowered.mem_addr = mem_addr
    kclass = lowered.kclass
    store_dep = [-1] * len(mem_addr)
    last_store: dict[int, int] = {}
    for m, pos in enumerate(lowered.mem_pos):
        word = mem_addr[m] & ~3
        if kclass[pos] == K_LOAD:
            store_dep[m] = last_store.get(word, -1)
        else:
            last_store[word] = pos
    lowered.store_dep = store_dep

    # Return-address-stack accuracy stream (depth 16, circular overwrite
    # on overflow, underflow pops count as incorrect — predictors/ras.py
    # semantics).  The stack evolves forward only, so every prefix of
    # the stream is valid for budget-truncated replays.
    jr_pos: list[int] = []
    jr_correct_cum = [0]
    stack: list[int] = []
    final_next_pc = trace.final_next_pc
    for pos in ras_events:
        pc = pcs_list[pos]
        if ras_tab[pc] == RAS_PUSH:
            if len(stack) >= 16:
                stack.pop(0)
            stack.append(pc + 1)
        else:
            target = pcs_list[pos + 1] if pos + 1 < n else final_next_pc
            correct = bool(stack) and stack.pop() == target
            jr_pos.append(pos)
            jr_correct_cum.append(jr_correct_cum[-1] + correct)
    lowered.jr_pos = jr_pos
    lowered.jr_correct_cum = jr_correct_cum
    return lowered


def is_lowered(trace: CommittedTrace, program: Program | None = None) -> bool:
    """Whether ``trace`` already carries a (matching) lowered form."""
    cached = trace._lowered_cache
    if cached is None:
        return False
    return program is None or cached.program is program


def ensure_lowered(program: Program, trace: CommittedTrace) -> LoweredTrace:
    """Lower (and cache) ``trace`` for ``program``.

    Like :meth:`CommittedTrace.materialize`, the lowered form is built
    once per (trace, program) pair and shared read-only by every replay
    of the trace — a batch of redirect timing points pays the lowering
    cost exactly once per workload identity.
    """
    cached = trace._lowered_cache
    if cached is not None and cached.program is program:
        return cached
    lowered = _lower(program, trace)
    trace._lowered_cache = lowered
    return lowered


def kernel_run(program: Program, trace: CommittedTrace,
               config: MachineConfig,
               kind: LevelTwoKind = LevelTwoKind.HYBRID, *,
               warmup_instructions: int = 0,
               max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               ) -> SimulationResult:
    """Replay one timing configuration over the lowered trace.

    Produces a :class:`SimulationResult` bit-for-bit equal to
    ``PipelineEngine(program, config, build_predictor(kind, config),
    warmup_instructions=..., core=TraceReplayCore(program,
    trace)).run(max_instructions)`` for every supported configuration;
    raises :class:`KernelUnsupported` for anything else.  The memory
    hierarchy runs live, in the engine's exact access order — the
    shared L2 couples I-side and D-side state, and store-forwarding
    outcomes depend on per-config timing, so cache latencies cannot be
    precomputed.
    """
    if config.speculation != "redirect":
        raise KernelUnsupported(
            "the replay kernel models redirect speculation only; "
            "wrongpath synthesis reads live architectural state")
    if kind not in _SUPPORTED_KINDS:
        raise KernelUnsupported(
            f"the replay kernel cannot express level-2 kind "
            f"{kind.value!r}: its decisions read live DDT/timing state")
    lowered = ensure_lowered(program, trace)
    streams = lowered.streams_for(kind)
    n = lowered.length
    if max_instructions > n and not trace.halted:
        # Mirror TraceReplayCore.step: a budget past a truncated
        # recording is an error, never a silently shorter run.
        raise TraceError(
            f"trace of {trace.program_name!r} exhausted at instruction "
            f"{n}: it was truncated at max_instructions="
            f"{trace.max_instructions}; use a live FunctionalCore or "
            "record a longer trace")
    n_run = n if n < max_instructions else max_instructions
    if n_run < 0:
        n_run = 0

    memory = MemoryHierarchy(config)

    # ---- hot locals (mirrors the engine's fused loop) ---------------------
    codes = lowered.codes_for(~(config.icache.line_bytes - 1))
    byte_pcs = lowered.byte_pcs
    dep1 = lowered.dep1
    dep2 = lowered.dep2
    mem_pos = lowered.mem_pos
    mem_addr = lowered.mem_addr
    store_dep = lowered.store_dep
    branch_bad = streams.bad
    branch_override = streams.override
    mem_ilat = memory.instruction_latency
    mem_dlat = memory.data_latency
    icache_hit_latency = config.icache.hit_latency
    frontend_depth = config.frontend_depth
    fetch_width = config.fetch_width
    commit_width = config.commit_width
    rob_capacity = config.rob_entries
    lsq_capacity = config.lsq_entries
    alu_latency = config.alu_latency
    mult_latency = config.mult_latency
    div_latency = config.div_latency
    if kind is LevelTwoKind.HYBRID:
        override_redirect = config.predictor_latencies.level2_hybrid + 1
    else:
        override_redirect = 1  # unreachable: NONE never overrides
    muldiv_scalar = config.int_muldiv == 1

    complete_arr = [0] * n_run
    commit_arr = [0] * n_run
    alu_free = [0] * config.int_alus     # zeros are already a valid heap
    dcache_free = [0] * config.dcache_ports
    muldiv_free = 0
    muldiv_heap = [0] * config.int_muldiv
    fetch_barrier = 0
    fetch_cycle = fetch_used = 0
    commit_cycle = commit_used = 0
    last_commit = 0
    mem_i = 0
    branch_i = 0

    for i in range(n_run):
        code = codes[i]
        k = code & 7

        # ---- fetch (barrier -> ROB -> LSQ -> I-cache -> bandwidth) --------
        earliest = fetch_barrier
        if i >= rob_capacity:
            free_at = commit_arr[i - rob_capacity] + 1
            if free_at > earliest:
                earliest = free_at
        if k == K_LOAD or k == K_STORE:
            if mem_i >= lsq_capacity:
                free_at = commit_arr[mem_pos[mem_i - lsq_capacity]] + 1
                if free_at > earliest:
                    earliest = free_at
        if code & _LINE_CHANGE:
            extra = mem_ilat(byte_pcs[i]) - icache_hit_latency
            if extra > 0:
                earliest += extra
        if earliest > fetch_cycle:
            fetch_cycle = earliest
            fetch_used = 0
        if fetch_used >= fetch_width:
            fetch_cycle += 1
            fetch_used = 0
        fetch_used += 1
        fetch = fetch_cycle

        # ---- issue / execute ---------------------------------------------
        ready = fetch + frontend_depth
        dep = dep1[i]
        if dep >= 0:
            when = complete_arr[dep]
            if when > ready:
                ready = when
        dep = dep2[i]
        if dep >= 0:
            when = complete_arr[dep]
            if when > ready:
                ready = when
        if k == K_ALU or k == K_BRANCH:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + alu_latency
        elif k == K_LOAD:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            agen1 = issue + 1
            server_free = heappop(dcache_free)
            access = agen1 if agen1 >= server_free else server_free
            heappush(dcache_free, access + 1)
            source = store_dep[mem_i]
            if source >= 0 and commit_arr[source] > access:
                data_ready = complete_arr[source]
                complete = (access if access >= data_ready
                            else data_ready) + 1
            else:
                complete = access + mem_dlat(mem_addr[mem_i])
            mem_i += 1
        elif k == K_STORE:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + 1
            mem_i += 1
        elif k == K_OTHER:
            server_free = heappop(alu_free)
            issue = ready if ready >= server_free else server_free
            heappush(alu_free, issue + 1)
            complete = issue + 1
        elif k == K_MULT:
            if muldiv_scalar:
                issue = ready if ready >= muldiv_free else muldiv_free
                muldiv_free = issue + 1
            else:
                server_free = heappop(muldiv_heap)
                issue = ready if ready >= server_free else server_free
                heappush(muldiv_heap, issue + 1)
            complete = issue + mult_latency
        else:  # K_DIV (unpipelined)
            if muldiv_scalar:
                issue = ready if ready >= muldiv_free else muldiv_free
                muldiv_free = issue + div_latency
            else:
                server_free = heappop(muldiv_heap)
                issue = ready if ready >= server_free else server_free
                heappush(muldiv_heap, issue + div_latency)
            complete = issue + div_latency

        # ---- commit -------------------------------------------------------
        commit_req = complete + 1
        if commit_req < last_commit:
            commit_req = last_commit
        if commit_req > commit_cycle:
            commit_cycle = commit_req
            commit_used = 0
        if commit_used >= commit_width:
            commit_cycle += 1
            commit_used = 0
        commit_used += 1
        last_commit = commit_cycle
        commit_arr[i] = last_commit
        complete_arr[i] = complete

        # ---- control flow resolution -------------------------------------
        if k == K_BRANCH:
            if branch_bad[branch_i]:
                barrier = complete + _REDIRECT_LATENCY
                if barrier > fetch_barrier:
                    fetch_barrier = barrier
            elif branch_override[branch_i]:
                barrier = fetch + override_redirect
                if barrier > fetch_barrier:
                    fetch_barrier = barrier
            branch_i += 1

    # ---- statistics (measured window via prefix sums) ---------------------
    warmup = warmup_instructions
    result = SimulationResult(
        benchmark=program.name,
        configuration=f"2-level {kind.value}",
        pipeline_depth=config.pipeline_depth,
        warmup_instructions=warmup,
        speculation=config.speculation,
    )
    measured_lo = warmup if warmup < n_run else n_run
    result.loads = (lowered.load_prefix[n_run]
                    - lowered.load_prefix[measured_lo])
    result.stores = (lowered.store_prefix[n_run]
                     - lowered.store_prefix[measured_lo])

    branch_lo = bisect_left(lowered.branch_pos, measured_lo)
    branch_hi = bisect_left(lowered.branch_pos, n_run)
    result.cond_branches = branch_hi - branch_lo
    result.final_correct = (streams.cum_final[branch_hi]
                            - streams.cum_final[branch_lo])
    result.l1_correct = (streams.cum_l1[branch_hi]
                         - streams.cum_l1[branch_lo])
    overrides = (streams.cum_override[branch_hi]
                 - streams.cum_override[branch_lo])
    result.overrides = overrides
    result.l2_used = overrides  # hybrid uses L2 exactly when it overrides
    result.overrides_helpful = (streams.cum_helpful[branch_hi]
                                - streams.cum_helpful[branch_lo])
    result.overrides_harmful = (streams.cum_harmful[branch_hi]
                                - streams.cum_harmful[branch_lo])

    result.total_instructions = n_run
    result.total_cycles = last_commit
    measured_start_cycle = commit_arr[warmup] if warmup < n_run else 0
    result.instructions = max(n_run - warmup, 0)
    result.cycles = max(last_commit - measured_start_cycle, 0)
    result.memory = memory.stats()

    pops = bisect_left(lowered.jr_pos, n_run)
    correct_pops = lowered.jr_correct_cum[pops]
    result.ras_accuracy = correct_pops / pops if pops else 1.0
    return result
